#include "verify/equiv_check.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/bitsim.hpp"
#include "aig/cec.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "rtl/verilog.hpp"
#include "synth/extract.hpp"
#include "verify/lowering.hpp"
#include "vsim/parser.hpp"

namespace tauhls::verify {

namespace {

using aig::Aig;
using aig::kLitFalse;
using aig::kLitTrue;
using aig::Lit;

// The four representation lowerings are shared with the X-propagation and
// don't-care-soundness passes (verify/lowering.hpp).
using lowering::ControllerContext;
using lowering::coverFunctions;
using lowering::describeCounterexample;
using lowering::FnMap;
using lowering::netlistFunctions;
using lowering::rtlFunctions;
using lowering::specFunctions;
using lowering::SymbolicEval;

void addSatCost(RuleCost& cost, const aig::SatStats& s) {
  cost.decisions += s.decisions;
  cost.propagations += s.propagations;
  cost.conflicts += s.conflicts;
  cost.learned += s.learned;
  cost.restarts += s.restarts;
}

/// Per-controller proof engine.  The Incremental path front-ends every query
/// with bit-parallel simulation (a simulated mismatch *is* the
/// counterexample, no CNF ever exists for it), memoizes proven-equal
/// literals in a union-find, and sends the survivors to one shared
/// incremental SAT solver whose encoded cones and learned clauses persist
/// across the controller's whole query stream.  Every model the solver finds
/// is fed back to the simulator as a guided pattern word
/// (counterexample-directed refinement).  The Naive path is the reference:
/// a fresh solver per pair via aig::proveEquivalent.  Both return identical
/// verdicts; only the work counters and counterexample patterns differ.
struct Prover {
  ControllerContext& ctx;
  const EquivOptions& options;
  std::optional<aig::IncrementalCec> inc;
  std::optional<aig::BitSimulator> sim;
  std::map<Lit, Lit> parent;  ///< union-find over proven-equal literals

  Prover(ControllerContext& c, const EquivOptions& o) : ctx(c), options(o) {
    if (options.engine == EquivEngine::Incremental) {
      inc.emplace(ctx.g);
      sim.emplace(ctx.g);
      sim->addRandomWords(static_cast<std::size_t>(std::max(1, o.simWords)));
    }
  }

  Lit find(Lit l) {
    const auto it = parent.find(l);
    if (it == parent.end() || it->second == l) return l;
    return it->second = find(it->second);
  }
  void unite(Lit a, Lit b) { parent[find(a)] = find(b); }

  aig::CecResult prove(Lit ref, Lit cand, RuleCost& cost) {
    if (!inc) {
      const aig::CecResult r = aig::proveEquivalent(
          ctx.g, ref, cand, ctx.valid, options.maxConflicts);
      ++cost.queries;
      addSatCost(cost, r.stats);
      return r;
    }
    aig::CecResult r;
    if (ref == cand || find(ref) == find(cand)) {
      r.status = aig::SatResult::Unsat;
      ++cost.simDischarged;
      return r;
    }
    const Lit miter = ctx.g.andLit(ctx.valid, ctx.g.xorLit(ref, cand));
    if (miter == kLitFalse) {
      r.status = aig::SatResult::Unsat;
      unite(ref, cand);
      ++cost.simDischarged;
      return r;
    }
    if (const auto mm = sim->findMismatch(ref, cand, ctx.valid)) {
      r.status = aig::SatResult::Sat;
      for (const std::size_t in : ctx.g.support(miter)) {
        r.counterexample.emplace_back(ctx.g.inputNames()[in],
                                      sim->inputBit(in, mm->word, mm->bit));
      }
      ++cost.simDischarged;
      return r;
    }
    r = inc->prove(ref, cand, ctx.valid, options.maxConflicts);
    ++cost.queries;
    addSatCost(cost, r.stats);
    if (r.status == aig::SatResult::Unsat) {
      unite(ref, cand);
    } else if (r.status == aig::SatResult::Sat) {
      // Refinement: pin the model in a guided word so every other pair this
      // assignment distinguishes is discharged by simulation from now on.
      std::vector<std::pair<std::size_t, bool>> pattern;
      for (const auto& [name, value] : r.counterexample) {
        const Lit in = ctx.g.findInput(name);
        if (in != kLitFalse) {
          pattern.emplace_back(ctx.g.inputIndexOf(aig::nodeOf(in)), value);
        }
      }
      sim->addPatternWord(pattern);
    }
    return r;
  }
};

/// Compare two function families pairwise under the valid-state constraint;
/// returns the number of proven mismatches.
int compareFns(Prover& prover, const FnMap& reference, const FnMap& candidate,
               const std::string& code, const std::string& stagePair,
               const std::string& artifact, Report& report,
               EquivStats& stats) {
  ControllerContext& ctx = prover.ctx;
  std::map<std::string, Lit> candidateOf(candidate.begin(), candidate.end());
  int mismatches = 0;
  for (const auto& [name, refLit] : reference) {
    const auto it = candidateOf.find(name);
    if (it == candidateOf.end()) {
      report.add(code, artifact, name,
                 stagePair + ": function missing from the checked "
                 "representation");
      ++mismatches;
      continue;
    }
    const aig::CecResult r =
        prover.prove(refLit, it->second, stats.ruleCost[code]);
    ++stats.functionsCompared;
    stats.satConflicts += r.stats.conflicts;
    if (r.status == aig::SatResult::Unsat) continue;
    if (r.status == aig::SatResult::Sat) {
      report.add(code, artifact, name,
                 stagePair + " differ at " + describeCounterexample(ctx, r));
      ++mismatches;
    } else {
      report.add("EQV005", artifact, name,
                 stagePair + ": conflict budget (" +
                     std::to_string(prover.options.maxConflicts) +
                     ") exhausted");
    }
  }
  return mismatches;
}

std::string fsmArtifact(const fsm::Fsm& f) { return "fsm " + f.name(); }

}  // namespace

EquivStats checkControllerChain(const fsm::Fsm& fsm, Report& report,
                                const EquivOptions& options) {
  EquivStats stats;
  stats.controllers = 1;
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  const std::string artifact = fsmArtifact(fsm);

  const FnMap spec = specFunctions(ctx);
  const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
  const FnMap cover = coverFunctions(ctx, syn);
  int bad = compareFns(prover, spec, cover, "EQV001",
                       "FSM spec vs minimized cover", artifact, report, stats);

  const netlist::ControllerNetlist cn =
      netlist::buildControllerNetlist(fsm, options.style, syn);
  const FnMap nl = netlistFunctions(ctx, cn.net);
  bad += compareFns(prover, cover, nl, "EQV002",
                    "minimized cover vs gate netlist", artifact, report,
                    stats);

  // The RTL stage exists only under binary encoding: emitFsm always encodes
  // binary, so a one-hot context has no RTL counterpart to compare against.
  if (options.style == synth::EncodingStyle::Binary) {
    FnMap rtl;
    bool rtlOk = true;
    try {
      const vsim::Design design =
          vsim::parseDesign(rtl::emitFsm(fsm, fsm.name()));
      const vsim::Module* m = design.findModule(fsm.name());
      TAUHLS_CHECK(m != nullptr, "emitted module not found after reparse");
      rtl = rtlFunctions(ctx, *m);
    } catch (const Error& e) {
      report.add("EQV003", artifact, "",
                 std::string("emitted Verilog failed symbolic reparse: ") +
                     e.what());
      rtlOk = false;
      ++bad;
    }
    if (rtlOk) {
      bad += compareFns(prover, nl, rtl, "EQV003",
                        "gate netlist vs reparsed RTL", artifact, report,
                        stats);
    }
  }

  if (bad == 0) {
    report.add("EQV006", artifact, "",
               "proven equivalent end to end (spec = cover = netlist = RTL, " +
                   std::to_string(stats.functionsCompared) + " functions)");
  }
  return stats;
}

void checkControllerNetlist(const fsm::Fsm& fsm,
                            const netlist::ControllerNetlist& cn,
                            Report& report, const EquivOptions& options) {
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  EquivStats stats;
  const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
  const FnMap cover = coverFunctions(ctx, syn);
  const FnMap nl = netlistFunctions(ctx, cn.net);
  compareFns(prover, cover, nl, "EQV002", "minimized cover vs gate netlist",
             fsmArtifact(fsm), report, stats);
}

void checkControllerRtl(const fsm::Fsm& fsm, const std::string& source,
                        const std::string& moduleName, Report& report,
                        const EquivOptions& options) {
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  EquivStats stats;
  const FnMap spec = specFunctions(ctx);
  try {
    const vsim::Design design = vsim::parseDesign(source);
    const vsim::Module* m = design.findModule(moduleName);
    TAUHLS_CHECK(m != nullptr, "module '" + moduleName + "' not in source");
    const FnMap rtl = rtlFunctions(ctx, *m);
    compareFns(prover, spec, rtl, "EQV003", "FSM spec vs reparsed RTL",
               fsmArtifact(fsm), report, stats);
  } catch (const Error& e) {
    report.add("EQV003", fsmArtifact(fsm), "",
               std::string("emitted Verilog failed symbolic reparse: ") +
                   e.what());
  }
}

void checkCompletionLatch(const std::string& packageSource, Report& report,
                          EquivStats* stats) {
  const std::string artifact = "rtl tauhls_completion_latch";
  try {
    const vsim::Design design = vsim::parseDesign(packageSource);
    const vsim::Module* m = design.findModule("tauhls_completion_latch");
    TAUHLS_CHECK(m != nullptr, "completion-latch module missing from package");

    Aig g;
    const Lit held = g.addInput("held");
    const Lit pulse = g.addInput("pulse");
    const Lit rst = g.addInput("rst");
    const Lit restart = g.addInput("restart");
    SymbolicEval eval(g, *m);
    SymbolicEval::Env env = {{"held", {held}},
                             {"pulse", {pulse}},
                             {"rst", {rst}},
                             {"restart", {restart}}};
    eval.runCombinational(env);

    const auto level = env.find("level");
    TAUHLS_CHECK(level != env.end(), "latch never drives 'level'");
    const aig::CecResult levelCec = aig::proveEquivalent(
        g, eval.nonzero(level->second), g.orLit(held, pulse));
    if (stats != nullptr) {
      ++stats->ruleCost["EQV004"].queries;
      addSatCost(stats->ruleCost["EQV004"], levelCec.stats);
    }
    if (!levelCec.equivalent()) {
      report.add("EQV004", artifact, "level",
                 "level function is not held | pulse");
    }

    SymbolicEval::Env seq = env;
    eval.runSequential(seq);
    const auto heldNext = seq.find("held");
    TAUHLS_CHECK(heldNext != seq.end(), "latch never updates 'held'");
    const Lit specNext = g.andLit(
        aig::negate(g.orLit(rst, restart)), g.orLit(pulse, held));
    const aig::CecResult heldCec = aig::proveEquivalent(
        g, eval.nonzero(heldNext->second), specNext);
    if (stats != nullptr) {
      ++stats->ruleCost["EQV004"].queries;
      addSatCost(stats->ruleCost["EQV004"], heldCec.stats);
    }
    if (!heldCec.equivalent()) {
      report.add("EQV004", artifact, "held",
                 "held update is not !rst & !restart & (pulse | held)");
    }
  } catch (const Error& e) {
    report.add("EQV004", artifact, "",
               std::string("latch check failed: ") + e.what());
  }
}

Report checkEquivalence(const fsm::DistributedControlUnit& dcu,
                        const EquivOptions& options, EquivStats* stats) {
  // Portfolio: every controller chain is independent (its own context, its
  // own solver), so they run concurrently; merging in controller order keeps
  // the report and stats identical for every thread count.
  const std::size_t n = dcu.controllers.size();
  std::vector<Report> reports(n);
  std::vector<EquivStats> perController(n);
  common::parallelFor(n, [&](std::size_t i) {
    perController[i] =
        checkControllerChain(dcu.controllers[i].fsm, reports[i], options);
  });
  Report report;
  EquivStats total;
  for (std::size_t i = 0; i < n; ++i) {
    report.merge(reports[i]);
    total += perController[i];
  }
  checkCompletionLatch(rtl::emitPackage(dcu, "tauhls_equiv_probe"), report,
                       &total);
  if (stats != nullptr) *stats = total;
  return report;
}

struct EquivWorkload::Impl {
  struct Job {
    std::unique_ptr<ControllerContext> ctx;
    /// (rule code, reference, candidate), in compareFns order.
    std::vector<std::tuple<std::string, Lit, Lit>> queries;
  };
  std::vector<Job> jobs;
  int pairs = 0;
};

EquivWorkload::EquivWorkload(const fsm::DistributedControlUnit& dcu,
                             const EquivOptions& options)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& controller : dcu.controllers) {
    const fsm::Fsm& fsm = controller.fsm;
    Impl::Job job;
    job.ctx = std::make_unique<ControllerContext>(fsm, options.style);
    ControllerContext& ctx = *job.ctx;

    const FnMap spec = specFunctions(ctx);
    const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
    const FnMap cover = coverFunctions(ctx, syn);
    const netlist::ControllerNetlist cn =
        netlist::buildControllerNetlist(fsm, options.style, syn);
    const FnMap nl = netlistFunctions(ctx, cn.net);

    const auto pairUp = [&job](const FnMap& reference, const FnMap& candidate,
                               const char* code) {
      const std::map<std::string, Lit> candidateOf(candidate.begin(),
                                                   candidate.end());
      for (const auto& [name, refLit] : reference) {
        const auto it = candidateOf.find(name);
        if (it != candidateOf.end()) {
          job.queries.emplace_back(code, refLit, it->second);
        }
      }
    };
    pairUp(spec, cover, "EQV001");
    pairUp(cover, nl, "EQV002");
    if (options.style == synth::EncodingStyle::Binary) {
      // A reparse failure is checkEquivalence's diagnostic to raise; the
      // kernel workload simply has no EQV003 pairs for that controller.
      try {
        const vsim::Design design =
            vsim::parseDesign(rtl::emitFsm(fsm, fsm.name()));
        if (const vsim::Module* m = design.findModule(fsm.name())) {
          pairUp(nl, rtlFunctions(ctx, *m), "EQV003");
        }
      } catch (const Error&) {
      }
    }
    impl_->pairs += static_cast<int>(job.queries.size());
    impl_->jobs.push_back(std::move(job));
  }
}

EquivWorkload::~EquivWorkload() = default;

int EquivWorkload::pairs() const { return impl_->pairs; }

EquivWorkload::Verdicts EquivWorkload::prove(const EquivOptions& options,
                                             EquivStats* stats) {
  Verdicts verdicts;
  EquivStats total;
  for (Impl::Job& job : impl_->jobs) {
    EquivStats s;
    s.controllers = 1;
    Prover prover(*job.ctx, options);
    for (const auto& [code, ref, cand] : job.queries) {
      const aig::CecResult r = prover.prove(ref, cand, s.ruleCost[code]);
      ++s.functionsCompared;
      s.satConflicts += r.stats.conflicts;
      switch (r.status) {
        case aig::SatResult::Unsat:
          ++verdicts.proven;
          break;
        case aig::SatResult::Sat:
          ++verdicts.refuted;
          break;
        default:
          ++verdicts.unknown;
          break;
      }
    }
    total += s;
  }
  if (stats != nullptr) *stats = total;
  return verdicts;
}

}  // namespace tauhls::verify
