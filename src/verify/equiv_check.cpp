#include "verify/equiv_check.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/bitsim.hpp"
#include "aig/cec.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "rtl/verilog.hpp"
#include "synth/extract.hpp"
#include "vsim/parser.hpp"

namespace tauhls::verify {

namespace {

using aig::Aig;
using aig::kLitFalse;
using aig::kLitTrue;
using aig::Lit;

/// Ordered function family of one representation: ns0..ns{n-1} first, then
/// the FSM's declared outputs.
using FnMap = std::vector<std::pair<std::string, Lit>>;

/// Shared AIG context of one controller: inputs are the encoded state bits
/// (state0.. state{n-1}) followed by the FSM's declared input signals.
struct ControllerContext {
  Aig g;
  const fsm::Fsm* fsm = nullptr;
  synth::Encoding enc;
  std::vector<Lit> stateBits;
  std::map<std::string, Lit> inputOf;
  Lit valid = kLitFalse;  ///< OR of all encoded-state matches

  ControllerContext(const fsm::Fsm& f, synth::EncodingStyle style)
      : fsm(&f), enc(synth::encodeStates(f, style)) {
    for (int b = 0; b < enc.bits; ++b) {
      stateBits.push_back(g.addInput("state" + std::to_string(b)));
    }
    for (const std::string& in : f.inputs()) {
      inputOf.emplace(in, g.addInput(in));
    }
    for (std::size_t s = 0; s < f.numStates(); ++s) {
      valid = g.orLit(valid, stateMatch(static_cast<int>(s)));
    }
  }

  Lit stateMatch(int s) {
    Lit acc = kLitTrue;
    for (int b = 0; b < enc.bits; ++b) {
      const bool bit = (enc.codeOf[static_cast<std::size_t>(s)] >> b) & 1u;
      acc = g.andLit(acc, bit ? stateBits[static_cast<std::size_t>(b)]
                              : aig::negate(stateBits[static_cast<std::size_t>(b)]));
    }
    return acc;
  }

  Lit guardLit(const fsm::Guard& guard) {
    Lit acc = kLitFalse;
    for (const fsm::GuardTerm& term : guard.terms()) {
      Lit t = kLitTrue;
      for (const auto& [sig, positive] : term.literals) {
        const Lit in = inputOf.at(sig);
        t = g.andLit(t, positive ? in : aig::negate(in));
      }
      acc = g.orLit(acc, t);
    }
    return acc;
  }

  std::vector<std::string> functionNames() const {
    std::vector<std::string> names;
    for (int b = 0; b < enc.bits; ++b) names.push_back("ns" + std::to_string(b));
    for (const std::string& o : fsm->outputs()) names.push_back(o);
    return names;
  }
};

// --- representation 1: the FSM specification -------------------------------

FnMap specFunctions(ControllerContext& ctx) {
  const fsm::Fsm& f = *ctx.fsm;
  std::vector<Lit> ns(static_cast<std::size_t>(ctx.enc.bits), kLitFalse);
  std::map<std::string, Lit> out;
  for (const std::string& o : f.outputs()) out[o] = kLitFalse;
  for (const fsm::Transition& t : f.transitions()) {
    const Lit fire = ctx.g.andLit(ctx.stateMatch(t.from), ctx.guardLit(t.guard));
    const std::uint32_t code = ctx.enc.codeOf[static_cast<std::size_t>(t.to)];
    for (int b = 0; b < ctx.enc.bits; ++b) {
      if ((code >> b) & 1u) {
        ns[static_cast<std::size_t>(b)] =
            ctx.g.orLit(ns[static_cast<std::size_t>(b)], fire);
      }
    }
    for (const std::string& o : t.outputs) out[o] = ctx.g.orLit(out[o], fire);
  }
  FnMap fns;
  for (int b = 0; b < ctx.enc.bits; ++b) {
    fns.emplace_back("ns" + std::to_string(b), ns[static_cast<std::size_t>(b)]);
  }
  for (const std::string& o : f.outputs()) fns.emplace_back(o, out.at(o));
  return fns;
}

// --- representation 2: the minimized two-level covers ----------------------

Lit coverLit(ControllerContext& ctx, const logic::Cover& cover) {
  // Cover variable order (synth/extract.hpp): state bits LSB first, then
  // the declared input signals.
  Lit acc = kLitFalse;
  for (const logic::Cube& cube : cover.cubes()) {
    Lit term = kLitTrue;
    for (int v = 0; v < cover.numVars(); ++v) {
      if (!cube.hasLiteral(v)) continue;
      Lit var;
      if (v < ctx.enc.bits) {
        var = ctx.stateBits[static_cast<std::size_t>(v)];
      } else {
        var = ctx.inputOf.at(
            ctx.fsm->inputs()[static_cast<std::size_t>(v - ctx.enc.bits)]);
      }
      term = ctx.g.andLit(term, cube.literalPositive(v) ? var : aig::negate(var));
    }
    acc = ctx.g.orLit(acc, term);
  }
  return acc;
}

FnMap coverFunctions(ControllerContext& ctx, const synth::SynthesizedFsm& syn) {
  FnMap fns;
  for (std::size_t b = 0; b < syn.nextStateLogic.size(); ++b) {
    fns.emplace_back("ns" + std::to_string(b),
                     coverLit(ctx, syn.nextStateLogic[b]));
  }
  for (std::size_t o = 0; o < syn.outputLogic.size(); ++o) {
    fns.emplace_back(ctx.fsm->outputs()[o], coverLit(ctx, syn.outputLogic[o]));
  }
  return fns;
}

// --- representation 3: the gate netlist ------------------------------------

FnMap netlistFunctions(ControllerContext& ctx, const netlist::Netlist& net) {
  std::vector<Lit> value(net.numGates(), kLitFalse);
  for (netlist::NetId i = 0; i < net.numGates(); ++i) {
    const netlist::Gate& gate = net.gate(i);
    switch (gate.kind) {
      case netlist::GateKind::Input: {
        Lit in = ctx.g.findInput(gate.name);
        // An input the spec does not know becomes a fresh free variable, so
        // any dependence on it surfaces as a counterexample.
        if (in == kLitFalse) in = ctx.g.addInput(gate.name);
        value[i] = in;
        break;
      }
      case netlist::GateKind::Const0:
        value[i] = kLitFalse;
        break;
      case netlist::GateKind::Const1:
        value[i] = kLitTrue;
        break;
      case netlist::GateKind::Inv:
        value[i] = aig::negate(value[gate.fanins[0]]);
        break;
      case netlist::GateKind::And:
      case netlist::GateKind::Or: {
        std::vector<Lit> fanins;
        for (const netlist::NetId f : gate.fanins) fanins.push_back(value[f]);
        value[i] = gate.kind == netlist::GateKind::And ? ctx.g.andN(fanins)
                                                       : ctx.g.orN(fanins);
        break;
      }
    }
  }
  FnMap fns;
  for (const auto& [name, id] : net.outputs()) fns.emplace_back(name, value[id]);
  return fns;
}

// --- representation 4: the reparsed emitted Verilog ------------------------

/// Symbolic evaluation of a vsim module's combinational behaviour: signals
/// are LSB-first literal vectors; if/else and case merge per-branch
/// environments through muxes.
class SymbolicEval {
 public:
  using Env = std::map<std::string, std::vector<Lit>>;

  SymbolicEval(Aig& g, const vsim::Module& m) : g_(g), module_(m) {
    for (const vsim::NetDecl& d : m.nets) width_[d.name] = d.width;
  }

  int widthOf(const std::string& name) const {
    const auto it = width_.find(name);
    return it == width_.end() ? 1 : it->second;
  }

  /// Execute every combinational construct (wire inits, continuous assigns,
  /// always @* blocks) once, in order, over `env`.
  void runCombinational(Env& env) {
    for (const vsim::NetDecl& d : module_.nets) {
      if (d.init) env[d.name] = resize(eval(*d.init, env), widthOf(d.name));
    }
    for (const vsim::ContinuousAssign& a : module_.assigns) {
      env[a.lhs] = resize(eval(*a.rhs, env), widthOf(a.lhs));
    }
    for (const vsim::AlwaysBlock& blk : module_.always) {
      if (!blk.sequential) exec(blk.body, env);
    }
  }

  /// Execute the sequential blocks as a next-state function: the returned
  /// env maps each register to its post-edge value (hold when unassigned).
  void runSequential(Env& env) {
    for (const vsim::AlwaysBlock& blk : module_.always) {
      if (blk.sequential) exec(blk.body, env);
    }
  }

  Lit nonzero(const std::vector<Lit>& bits) { return g_.orN(bits); }

  std::vector<Lit> eval(const vsim::Expr& e, const Env& env) {
    switch (e.kind) {
      case vsim::ExprKind::Const: {
        const int w = e.width > 0 ? e.width
                                  : std::max(1, 64 - std::countl_zero(
                                                      e.value | 1ull));
        std::vector<Lit> bits;
        for (int b = 0; b < w; ++b) {
          bits.push_back((e.value >> b) & 1ull ? kLitTrue : kLitFalse);
        }
        return bits;
      }
      case vsim::ExprKind::Ref: {
        const auto lp = module_.localparams.find(e.name);
        if (lp != module_.localparams.end()) {
          vsim::Expr c;
          c.kind = vsim::ExprKind::Const;
          c.value = lp->second;
          return eval(c, env);
        }
        const auto it = env.find(e.name);
        TAUHLS_CHECK(it != env.end(),
                     "symbolic evaluation: unbound signal '" + e.name + "'");
        return it->second;
      }
      case vsim::ExprKind::Not:
        return {aig::negate(nonzero(eval(*e.args[0], env)))};
      case vsim::ExprKind::And:
        return {g_.andLit(nonzero(eval(*e.args[0], env)),
                          nonzero(eval(*e.args[1], env)))};
      case vsim::ExprKind::Or:
        return {g_.orLit(nonzero(eval(*e.args[0], env)),
                         nonzero(eval(*e.args[1], env)))};
      case vsim::ExprKind::Xor:
        return {g_.xorLit(nonzero(eval(*e.args[0], env)),
                          nonzero(eval(*e.args[1], env)))};
      case vsim::ExprKind::Eq:
      case vsim::ExprKind::NotEq: {
        std::vector<Lit> a = eval(*e.args[0], env);
        std::vector<Lit> b = eval(*e.args[1], env);
        const std::size_t w = std::max(a.size(), b.size());
        const Lit eq = g_.eqVec(resize(a, static_cast<int>(w)),
                                resize(b, static_cast<int>(w)));
        return {e.kind == vsim::ExprKind::Eq ? eq : aig::negate(eq)};
      }
      case vsim::ExprKind::Cond: {
        const Lit sel = nonzero(eval(*e.args[0], env));
        std::vector<Lit> t = eval(*e.args[1], env);
        std::vector<Lit> f = eval(*e.args[2], env);
        const std::size_t w = std::max(t.size(), f.size());
        t = resize(t, static_cast<int>(w));
        f = resize(f, static_cast<int>(w));
        std::vector<Lit> bits;
        for (std::size_t b = 0; b < w; ++b) {
          bits.push_back(g_.muxLit(sel, t[b], f[b]));
        }
        return bits;
      }
      case vsim::ExprKind::Concat: {
        // args are MSB first; the result vector is LSB first.
        std::vector<Lit> bits;
        for (std::size_t i = e.args.size(); i > 0; --i) {
          const std::vector<Lit> part = eval(*e.args[i - 1], env);
          bits.insert(bits.end(), part.begin(), part.end());
        }
        return bits;
      }
      case vsim::ExprKind::RedAnd:
        return {g_.andN(eval(*e.args[0], env))};
      case vsim::ExprKind::RedOr:
        return {g_.orN(eval(*e.args[0], env))};
      case vsim::ExprKind::RedXor: {
        Lit acc = kLitFalse;
        for (const Lit b : eval(*e.args[0], env)) acc = g_.xorLit(acc, b);
        return {acc};
      }
    }
    TAUHLS_FAIL("symbolic evaluation: unknown expression kind");
  }

 private:
  std::vector<Lit> resize(std::vector<Lit> bits, int width) {
    bits.resize(static_cast<std::size_t>(width), kLitFalse);  // zero-extend
    return bits;
  }

  void exec(const std::vector<vsim::StmtPtr>& stmts, Env& env) {
    for (const vsim::StmtPtr& s : stmts) {
      switch (s->kind) {
        case vsim::StmtKind::Assign:
          env[s->lhs] = resize(eval(*s->rhs, env), widthOf(s->lhs));
          break;
        case vsim::StmtKind::If: {
          const Lit cond = nonzero(eval(*s->condition, env));
          Env thenEnv = env;
          exec(s->thenBody, thenEnv);
          Env elseEnv = env;
          exec(s->elseBody, elseEnv);
          mergeEnv(cond, thenEnv, elseEnv, env);
          break;
        }
        case vsim::StmtKind::Case: {
          const std::vector<Lit> subject = eval(*s->subject, env);
          const vsim::CaseArm* defaultArm = nullptr;
          for (const vsim::CaseArm& arm : s->arms) {
            if (!arm.label) defaultArm = &arm;
          }
          execArms(s->arms, 0, subject, defaultArm, env);
          break;
        }
      }
    }
  }

  /// case() as a right-nested if/else chain over the remaining arms.
  void execArms(const std::vector<vsim::CaseArm>& arms, std::size_t idx,
                const std::vector<Lit>& subject,
                const vsim::CaseArm* defaultArm, Env& env) {
    while (idx < arms.size() && !arms[idx].label) ++idx;
    if (idx == arms.size()) {
      if (defaultArm != nullptr) exec(defaultArm->body, env);
      return;
    }
    std::vector<Lit> label = eval(*arms[idx].label, env);
    const std::size_t w = std::max(subject.size(), label.size());
    std::vector<Lit> subj = subject;
    const Lit cond = g_.eqVec(resize(std::move(subj), static_cast<int>(w)),
                              resize(std::move(label), static_cast<int>(w)));
    Env thenEnv = env;
    exec(arms[idx].body, thenEnv);
    Env elseEnv = env;
    execArms(arms, idx + 1, subject, defaultArm, elseEnv);
    mergeEnv(cond, thenEnv, elseEnv, env);
  }

  void mergeEnv(Lit cond, const Env& thenEnv, const Env& elseEnv, Env& out) {
    Env merged;
    for (const Env* side : {&thenEnv, &elseEnv}) {
      for (const auto& [name, bits] : *side) {
        if (merged.contains(name)) continue;
        const auto t = thenEnv.find(name);
        const auto f = elseEnv.find(name);
        const std::vector<Lit> zero(bits.size(), kLitFalse);
        const std::vector<Lit>& tb = t != thenEnv.end() ? t->second : zero;
        const std::vector<Lit>& fb = f != elseEnv.end() ? f->second : zero;
        std::vector<Lit> mb;
        for (std::size_t b = 0; b < bits.size(); ++b) {
          const Lit tl = b < tb.size() ? tb[b] : kLitFalse;
          const Lit fl = b < fb.size() ? fb[b] : kLitFalse;
          mb.push_back(g_.muxLit(cond, tl, fl));
        }
        merged[name] = std::move(mb);
      }
    }
    out = std::move(merged);
  }

  Aig& g_;
  const vsim::Module& module_;
  std::map<std::string, int> width_;
};

FnMap rtlFunctions(ControllerContext& ctx, const vsim::Module& m) {
  SymbolicEval eval(ctx.g, m);
  SymbolicEval::Env env;
  for (const vsim::Port& p : m.ports) {
    if (p.dir != vsim::PortDir::Input || p.name == "clk" || p.name == "rst") {
      continue;
    }
    const auto it = ctx.inputOf.find(p.name);
    env[p.name] = {it != ctx.inputOf.end() ? it->second
                                           : ctx.g.addInput("rtl_" + p.name)};
  }
  env["state"] = ctx.stateBits;
  eval.runCombinational(env);
  const auto ns = env.find("state_next");
  TAUHLS_CHECK(ns != env.end(),
               "emitted controller lacks a state_next assignment");
  FnMap fns;
  for (int b = 0; b < ctx.enc.bits; ++b) {
    const std::size_t sb = static_cast<std::size_t>(b);
    fns.emplace_back("ns" + std::to_string(b),
                     sb < ns->second.size() ? ns->second[sb] : kLitFalse);
  }
  for (const std::string& o : ctx.fsm->outputs()) {
    const auto it = env.find(o);
    TAUHLS_CHECK(it != env.end(),
                 "emitted controller never assigns output '" + o + "'");
    fns.emplace_back(o, eval.nonzero(it->second));
  }
  return fns;
}

// --- comparison ------------------------------------------------------------

std::string describeCounterexample(const ControllerContext& ctx,
                                   const aig::CecResult& r) {
  std::uint32_t code = 0;
  std::string inputs;
  for (const auto& [name, value] : r.counterexample) {
    if (name.starts_with("state") && name.size() > 5 &&
        name.find_first_not_of("0123456789", 5) == std::string::npos) {
      if (value) code |= 1u << std::stoi(name.substr(5));
      continue;
    }
    if (!inputs.empty()) inputs += ", ";
    inputs += name + "=" + (value ? "1" : "0");
  }
  const int state = ctx.enc.stateOf(code);
  std::string out = "state=";
  out += state >= 0 ? ctx.fsm->stateName(state)
                    : "<code " + std::to_string(code) + ">";
  if (!inputs.empty()) out += ", " + inputs;
  return out;
}

void addSatCost(RuleCost& cost, const aig::SatStats& s) {
  cost.decisions += s.decisions;
  cost.propagations += s.propagations;
  cost.conflicts += s.conflicts;
  cost.learned += s.learned;
  cost.restarts += s.restarts;
}

/// Per-controller proof engine.  The Incremental path front-ends every query
/// with bit-parallel simulation (a simulated mismatch *is* the
/// counterexample, no CNF ever exists for it), memoizes proven-equal
/// literals in a union-find, and sends the survivors to one shared
/// incremental SAT solver whose encoded cones and learned clauses persist
/// across the controller's whole query stream.  Every model the solver finds
/// is fed back to the simulator as a guided pattern word
/// (counterexample-directed refinement).  The Naive path is the reference:
/// a fresh solver per pair via aig::proveEquivalent.  Both return identical
/// verdicts; only the work counters and counterexample patterns differ.
struct Prover {
  ControllerContext& ctx;
  const EquivOptions& options;
  std::optional<aig::IncrementalCec> inc;
  std::optional<aig::BitSimulator> sim;
  std::map<Lit, Lit> parent;  ///< union-find over proven-equal literals

  Prover(ControllerContext& c, const EquivOptions& o) : ctx(c), options(o) {
    if (options.engine == EquivEngine::Incremental) {
      inc.emplace(ctx.g);
      sim.emplace(ctx.g);
      sim->addRandomWords(static_cast<std::size_t>(std::max(1, o.simWords)));
    }
  }

  Lit find(Lit l) {
    const auto it = parent.find(l);
    if (it == parent.end() || it->second == l) return l;
    return it->second = find(it->second);
  }
  void unite(Lit a, Lit b) { parent[find(a)] = find(b); }

  aig::CecResult prove(Lit ref, Lit cand, RuleCost& cost) {
    if (!inc) {
      const aig::CecResult r = aig::proveEquivalent(
          ctx.g, ref, cand, ctx.valid, options.maxConflicts);
      ++cost.queries;
      addSatCost(cost, r.stats);
      return r;
    }
    aig::CecResult r;
    if (ref == cand || find(ref) == find(cand)) {
      r.status = aig::SatResult::Unsat;
      ++cost.simDischarged;
      return r;
    }
    const Lit miter = ctx.g.andLit(ctx.valid, ctx.g.xorLit(ref, cand));
    if (miter == kLitFalse) {
      r.status = aig::SatResult::Unsat;
      unite(ref, cand);
      ++cost.simDischarged;
      return r;
    }
    if (const auto mm = sim->findMismatch(ref, cand, ctx.valid)) {
      r.status = aig::SatResult::Sat;
      for (const std::size_t in : ctx.g.support(miter)) {
        r.counterexample.emplace_back(ctx.g.inputNames()[in],
                                      sim->inputBit(in, mm->word, mm->bit));
      }
      ++cost.simDischarged;
      return r;
    }
    r = inc->prove(ref, cand, ctx.valid, options.maxConflicts);
    ++cost.queries;
    addSatCost(cost, r.stats);
    if (r.status == aig::SatResult::Unsat) {
      unite(ref, cand);
    } else if (r.status == aig::SatResult::Sat) {
      // Refinement: pin the model in a guided word so every other pair this
      // assignment distinguishes is discharged by simulation from now on.
      std::vector<std::pair<std::size_t, bool>> pattern;
      for (const auto& [name, value] : r.counterexample) {
        const Lit in = ctx.g.findInput(name);
        if (in != kLitFalse) {
          pattern.emplace_back(ctx.g.inputIndexOf(aig::nodeOf(in)), value);
        }
      }
      sim->addPatternWord(pattern);
    }
    return r;
  }
};

/// Compare two function families pairwise under the valid-state constraint;
/// returns the number of proven mismatches.
int compareFns(Prover& prover, const FnMap& reference, const FnMap& candidate,
               const std::string& code, const std::string& stagePair,
               const std::string& artifact, Report& report,
               EquivStats& stats) {
  ControllerContext& ctx = prover.ctx;
  std::map<std::string, Lit> candidateOf(candidate.begin(), candidate.end());
  int mismatches = 0;
  for (const auto& [name, refLit] : reference) {
    const auto it = candidateOf.find(name);
    if (it == candidateOf.end()) {
      report.add(code, artifact, name,
                 stagePair + ": function missing from the checked "
                 "representation");
      ++mismatches;
      continue;
    }
    const aig::CecResult r =
        prover.prove(refLit, it->second, stats.ruleCost[code]);
    ++stats.functionsCompared;
    stats.satConflicts += r.stats.conflicts;
    if (r.status == aig::SatResult::Unsat) continue;
    if (r.status == aig::SatResult::Sat) {
      report.add(code, artifact, name,
                 stagePair + " differ at " + describeCounterexample(ctx, r));
      ++mismatches;
    } else {
      report.add("EQV005", artifact, name,
                 stagePair + ": conflict budget (" +
                     std::to_string(prover.options.maxConflicts) +
                     ") exhausted");
    }
  }
  return mismatches;
}

std::string fsmArtifact(const fsm::Fsm& f) { return "fsm " + f.name(); }

}  // namespace

EquivStats checkControllerChain(const fsm::Fsm& fsm, Report& report,
                                const EquivOptions& options) {
  EquivStats stats;
  stats.controllers = 1;
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  const std::string artifact = fsmArtifact(fsm);

  const FnMap spec = specFunctions(ctx);
  const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
  const FnMap cover = coverFunctions(ctx, syn);
  int bad = compareFns(prover, spec, cover, "EQV001",
                       "FSM spec vs minimized cover", artifact, report, stats);

  const netlist::ControllerNetlist cn =
      netlist::buildControllerNetlist(fsm, options.style, syn);
  const FnMap nl = netlistFunctions(ctx, cn.net);
  bad += compareFns(prover, cover, nl, "EQV002",
                    "minimized cover vs gate netlist", artifact, report,
                    stats);

  // The RTL stage exists only under binary encoding: emitFsm always encodes
  // binary, so a one-hot context has no RTL counterpart to compare against.
  if (options.style == synth::EncodingStyle::Binary) {
    FnMap rtl;
    bool rtlOk = true;
    try {
      const vsim::Design design =
          vsim::parseDesign(rtl::emitFsm(fsm, fsm.name()));
      const vsim::Module* m = design.findModule(fsm.name());
      TAUHLS_CHECK(m != nullptr, "emitted module not found after reparse");
      rtl = rtlFunctions(ctx, *m);
    } catch (const Error& e) {
      report.add("EQV003", artifact, "",
                 std::string("emitted Verilog failed symbolic reparse: ") +
                     e.what());
      rtlOk = false;
      ++bad;
    }
    if (rtlOk) {
      bad += compareFns(prover, nl, rtl, "EQV003",
                        "gate netlist vs reparsed RTL", artifact, report,
                        stats);
    }
  }

  if (bad == 0) {
    report.add("EQV006", artifact, "",
               "proven equivalent end to end (spec = cover = netlist = RTL, " +
                   std::to_string(stats.functionsCompared) + " functions)");
  }
  return stats;
}

void checkControllerNetlist(const fsm::Fsm& fsm,
                            const netlist::ControllerNetlist& cn,
                            Report& report, const EquivOptions& options) {
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  EquivStats stats;
  const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
  const FnMap cover = coverFunctions(ctx, syn);
  const FnMap nl = netlistFunctions(ctx, cn.net);
  compareFns(prover, cover, nl, "EQV002", "minimized cover vs gate netlist",
             fsmArtifact(fsm), report, stats);
}

void checkControllerRtl(const fsm::Fsm& fsm, const std::string& source,
                        const std::string& moduleName, Report& report,
                        const EquivOptions& options) {
  ControllerContext ctx(fsm, options.style);
  Prover prover(ctx, options);
  EquivStats stats;
  const FnMap spec = specFunctions(ctx);
  try {
    const vsim::Design design = vsim::parseDesign(source);
    const vsim::Module* m = design.findModule(moduleName);
    TAUHLS_CHECK(m != nullptr, "module '" + moduleName + "' not in source");
    const FnMap rtl = rtlFunctions(ctx, *m);
    compareFns(prover, spec, rtl, "EQV003", "FSM spec vs reparsed RTL",
               fsmArtifact(fsm), report, stats);
  } catch (const Error& e) {
    report.add("EQV003", fsmArtifact(fsm), "",
               std::string("emitted Verilog failed symbolic reparse: ") +
                   e.what());
  }
}

void checkCompletionLatch(const std::string& packageSource, Report& report,
                          EquivStats* stats) {
  const std::string artifact = "rtl tauhls_completion_latch";
  try {
    const vsim::Design design = vsim::parseDesign(packageSource);
    const vsim::Module* m = design.findModule("tauhls_completion_latch");
    TAUHLS_CHECK(m != nullptr, "completion-latch module missing from package");

    Aig g;
    const Lit held = g.addInput("held");
    const Lit pulse = g.addInput("pulse");
    const Lit rst = g.addInput("rst");
    const Lit restart = g.addInput("restart");
    SymbolicEval eval(g, *m);
    SymbolicEval::Env env = {{"held", {held}},
                             {"pulse", {pulse}},
                             {"rst", {rst}},
                             {"restart", {restart}}};
    eval.runCombinational(env);

    const auto level = env.find("level");
    TAUHLS_CHECK(level != env.end(), "latch never drives 'level'");
    const aig::CecResult levelCec = aig::proveEquivalent(
        g, eval.nonzero(level->second), g.orLit(held, pulse));
    if (stats != nullptr) {
      ++stats->ruleCost["EQV004"].queries;
      addSatCost(stats->ruleCost["EQV004"], levelCec.stats);
    }
    if (!levelCec.equivalent()) {
      report.add("EQV004", artifact, "level",
                 "level function is not held | pulse");
    }

    SymbolicEval::Env seq = env;
    eval.runSequential(seq);
    const auto heldNext = seq.find("held");
    TAUHLS_CHECK(heldNext != seq.end(), "latch never updates 'held'");
    const Lit specNext = g.andLit(
        aig::negate(g.orLit(rst, restart)), g.orLit(pulse, held));
    const aig::CecResult heldCec = aig::proveEquivalent(
        g, eval.nonzero(heldNext->second), specNext);
    if (stats != nullptr) {
      ++stats->ruleCost["EQV004"].queries;
      addSatCost(stats->ruleCost["EQV004"], heldCec.stats);
    }
    if (!heldCec.equivalent()) {
      report.add("EQV004", artifact, "held",
                 "held update is not !rst & !restart & (pulse | held)");
    }
  } catch (const Error& e) {
    report.add("EQV004", artifact, "",
               std::string("latch check failed: ") + e.what());
  }
}

Report checkEquivalence(const fsm::DistributedControlUnit& dcu,
                        const EquivOptions& options, EquivStats* stats) {
  // Portfolio: every controller chain is independent (its own context, its
  // own solver), so they run concurrently; merging in controller order keeps
  // the report and stats identical for every thread count.
  const std::size_t n = dcu.controllers.size();
  std::vector<Report> reports(n);
  std::vector<EquivStats> perController(n);
  common::parallelFor(n, [&](std::size_t i) {
    perController[i] =
        checkControllerChain(dcu.controllers[i].fsm, reports[i], options);
  });
  Report report;
  EquivStats total;
  for (std::size_t i = 0; i < n; ++i) {
    report.merge(reports[i]);
    total += perController[i];
  }
  checkCompletionLatch(rtl::emitPackage(dcu, "tauhls_equiv_probe"), report,
                       &total);
  if (stats != nullptr) *stats = total;
  return report;
}

struct EquivWorkload::Impl {
  struct Job {
    std::unique_ptr<ControllerContext> ctx;
    /// (rule code, reference, candidate), in compareFns order.
    std::vector<std::tuple<std::string, Lit, Lit>> queries;
  };
  std::vector<Job> jobs;
  int pairs = 0;
};

EquivWorkload::EquivWorkload(const fsm::DistributedControlUnit& dcu,
                             const EquivOptions& options)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& controller : dcu.controllers) {
    const fsm::Fsm& fsm = controller.fsm;
    Impl::Job job;
    job.ctx = std::make_unique<ControllerContext>(fsm, options.style);
    ControllerContext& ctx = *job.ctx;

    const FnMap spec = specFunctions(ctx);
    const synth::SynthesizedFsm syn = synth::synthesize(fsm, options.style);
    const FnMap cover = coverFunctions(ctx, syn);
    const netlist::ControllerNetlist cn =
        netlist::buildControllerNetlist(fsm, options.style, syn);
    const FnMap nl = netlistFunctions(ctx, cn.net);

    const auto pairUp = [&job](const FnMap& reference, const FnMap& candidate,
                               const char* code) {
      const std::map<std::string, Lit> candidateOf(candidate.begin(),
                                                   candidate.end());
      for (const auto& [name, refLit] : reference) {
        const auto it = candidateOf.find(name);
        if (it != candidateOf.end()) {
          job.queries.emplace_back(code, refLit, it->second);
        }
      }
    };
    pairUp(spec, cover, "EQV001");
    pairUp(cover, nl, "EQV002");
    if (options.style == synth::EncodingStyle::Binary) {
      // A reparse failure is checkEquivalence's diagnostic to raise; the
      // kernel workload simply has no EQV003 pairs for that controller.
      try {
        const vsim::Design design =
            vsim::parseDesign(rtl::emitFsm(fsm, fsm.name()));
        if (const vsim::Module* m = design.findModule(fsm.name())) {
          pairUp(nl, rtlFunctions(ctx, *m), "EQV003");
        }
      } catch (const Error&) {
      }
    }
    impl_->pairs += static_cast<int>(job.queries.size());
    impl_->jobs.push_back(std::move(job));
  }
}

EquivWorkload::~EquivWorkload() = default;

int EquivWorkload::pairs() const { return impl_->pairs; }

EquivWorkload::Verdicts EquivWorkload::prove(const EquivOptions& options,
                                             EquivStats* stats) {
  Verdicts verdicts;
  EquivStats total;
  for (Impl::Job& job : impl_->jobs) {
    EquivStats s;
    s.controllers = 1;
    Prover prover(*job.ctx, options);
    for (const auto& [code, ref, cand] : job.queries) {
      const aig::CecResult r = prover.prove(ref, cand, s.ruleCost[code]);
      ++s.functionsCompared;
      s.satConflicts += r.stats.conflicts;
      switch (r.status) {
        case aig::SatResult::Unsat:
          ++verdicts.proven;
          break;
        case aig::SatResult::Sat:
          ++verdicts.refuted;
          break;
        default:
          ++verdicts.unknown;
          break;
      }
    }
    total += s;
  }
  if (stats != nullptr) *stats = total;
  return verdicts;
}

}  // namespace tauhls::verify
