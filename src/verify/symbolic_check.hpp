// Symbolic model check of the distributed controller network: BMC +
// k-induction over an AIG transition relation (rules MDL001-MDL006, MDL008).
//
// The synchronous product of all one-shot unit controllers (wrap transitions
// redirected to absorbing DONE states, exactly as in model_check.cpp) is
// encoded as a sequential circuit over a template AIG: one-hot state bits per
// controller, one sticky bit per (controller, latched completion signal), one
// fired-monitor bit per operation, and the unit completion inputs C_T as free
// per-cycle variables.  The transition cones mirror the three phases of
// fsm::buildProduct literally -- the emitted-pulse fixpoint (iterated four
// times, matching the product's convergence budget), priority-encoded
// transition firing, and sticky latch updates -- so both engines explore the
// same behaviour and must agree on every verdict.
//
// The MDL001-MDL005 analogues are checked as safety properties:
//
//   MDL001  some controller has zero or several enabled transitions, or the
//           pulse fixpoint fails to converge (structural deadlock /
//           nondeterminism).
//   MDL002  a non-done configuration repeats itself under all-true completion
//           inputs (circular cross-unit wait; livelock in R states).
//   MDL003  lock-step: an operation's RE fires twice in one iteration, or
//           the all-DONE configuration is reached with an op never fired.
//   MDL004  causality: RE_<op> fires although a data predecessor has not.
//   MDL005  per-unit order: RE_<op> fires before the unit's previous bound op.
//
// Each property runs incremental BMC (one shared solver per network,
// assumption-selected unrollings, learned clauses shared across depths and
// properties) interleaved with k-induction strengthened by a structural
// invariant (one-hot states, fired == state position, latch == producer
// fired, executing states imply predecessor latches) and a simple-path
// constraint.  Properties that close get a PROVED verdict with the induction
// depth; failures get a concrete counterexample decoded back to per-cycle
// RE / S_i / S_i' / R_i waveforms in the diagnostic message.  The
// strengthening invariant is itself base-checked from the initial state and
// never assumed by BMC, so counterexamples stay sound on mutated controllers
// that break it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

enum class PropertyVerdict : int {
  Proved = 0,          ///< closed by k-induction
  Counterexample = 1,  ///< concrete failing trace found by BMC
  Unknown = 2,         ///< neither within the depth/conflict budget
};

/// Stable name: "PROVED", "CEX", "UNKNOWN".
const char* propertyVerdictName(PropertyVerdict v);

/// Outcome and SAT cost of one safety property on one controller network.
struct SymbolicProperty {
  std::string rule;  ///< MDL001..MDL005
  PropertyVerdict verdict = PropertyVerdict::Unknown;
  int depthReached = -1;  ///< deepest BMC frame proven violation-free
  int inductionK = 0;     ///< k that closed the property (0 unless PROVED)
  int cexLength = 0;      ///< cycles in the counterexample (0 unless CEX)
  RuleCost cost;          ///< SAT work attributed to this property

  friend bool operator==(const SymbolicProperty&,
                         const SymbolicProperty&) = default;
};

/// Engine-level statistics of one network's symbolic check.
struct SymbolicStats {
  std::string artifact;  ///< e.g. "product diffeq"
  std::size_t controllers = 0;
  std::size_t stateBits = 0;      ///< state vars (one-hot + latches + fired)
  std::size_t templateNodes = 0;  ///< AIG nodes after template construction
  bool invariantHolds = true;     ///< base check of the strengthening invariant
  RuleCost invariantCost;         ///< SAT work of invariant base queries
  std::vector<SymbolicProperty> properties;

  /// Per-rule cost map for the lint JSON / pipeline trace; invariant work is
  /// attributed to the MDL008 summary rule.
  std::map<std::string, RuleCost> ruleCost() const;
  /// Flattened per-property rows for renderJson (lint schema v4).
  std::vector<SymbolicPropertyStat> jsonStats() const;
};

struct SymbolicCheckOptions {
  /// BMC depth / induction-k budget; open properties degrade to UNKNOWN.
  int maxDepth = 30;
  /// Conflict budget per SAT query; exceeding it degrades to UNKNOWN.
  std::uint64_t maxConflicts = 200000;
};

/// Everything the symbolic pass produces (cacheable pipeline artifact).
struct SymbolicArtifact {
  Report report;
  SymbolicStats stats;

  friend bool operator==(const SymbolicArtifact&,
                         const SymbolicArtifact&) = default;
};

inline bool operator==(const SymbolicStats& a, const SymbolicStats& b) {
  return a.artifact == b.artifact && a.controllers == b.controllers &&
         a.stateBits == b.stateBits && a.templateNodes == b.templateNodes &&
         a.invariantHolds == b.invariantHolds && a.properties == b.properties;
}

/// Symbolically model-check the distributed controllers.  When `centSync` is
/// non-null the CENT-SYNC baseline is swept with the same phi-potential
/// analysis as the explicit engine and compared per MDL006 (valid once the
/// lock-step and progress properties are PROVED).  Appends counterexamples
/// and the MDL008 summary to the returned report.
SymbolicArtifact symbolicModelCheck(const fsm::DistributedControlUnit& dcu,
                                    const sched::ScheduledDfg& s,
                                    const fsm::Fsm* centSync,
                                    const SymbolicCheckOptions& options = {});

}  // namespace tauhls::verify
