// Shared diagnostics engine of the static design-rule checker (src/verify/).
//
// Every pass reports through a verify::Report: a flat list of Diagnostics,
// each carrying a *stable rule code* (DFG001, SCH003, FSM007, NET002, ...),
// a severity, the name of the object it anchors to (an op, state, unit,
// signal or net name) and a human-readable message.  Severities are owned by
// the rule registry, not the call site, so a rule's severity is consistent
// everywhere it fires and docs/VERIFY.md can be generated from one table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tauhls::verify {

enum class Severity : int {
  Info = 0,
  Warning = 1,
  Error = 2,
};

/// Stable lower-case name ("error", "warning", "info").
const char* severityName(Severity severity);

/// One entry of the rule registry; `allRules()` is the single source of truth
/// for codes, severities and the one-line summaries shown in docs and
/// `tauhlsc lint --rules`.
struct RuleInfo {
  const char* code;     ///< e.g. "FSM003"
  Severity severity;
  const char* summary;  ///< one line, starts lower-case
};

/// Every registered rule, ordered by code.
const std::vector<RuleInfo>& allRules();

/// Registry lookup; nullptr for unknown codes.
const RuleInfo* findRule(const std::string& code);

struct Diagnostic {
  std::string code;      ///< registry rule code
  Severity severity = Severity::Error;
  std::string artifact;  ///< artifact checked, e.g. "dfg diffeq", "fsm D_FSM_mult1"
  std::string where;     ///< object name inside the artifact ("" when global)
  std::string message;

  /// "error DFG001 [dfg diffeq] op m3: ..." single-line rendering.
  std::string toString() const;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Pass-ordered diagnostic sink.  add() resolves the severity from the rule
/// registry; unknown codes are a programming error and throw.
class Report {
 public:
  void add(const std::string& code, const std::string& artifact,
           const std::string& where, const std::string& message);

  /// Append a fully-formed diagnostic (e.g. one re-anchored to a different
  /// artifact); the code must still be registered.
  void addDiagnostic(const Diagnostic& d);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  std::size_t count(Severity severity) const;
  std::size_t errorCount() const { return count(Severity::Error); }
  bool hasErrors() const { return errorCount() > 0; }

  /// True when some diagnostic carries `code`.
  bool has(const std::string& code) const;
  /// All diagnostics with `code`.
  std::vector<Diagnostic> withCode(const std::string& code) const;

  /// Append every diagnostic of `other`.
  void merge(const Report& other);

  friend bool operator==(const Report& a, const Report& b) {
    return a.diags_ == b.diags_;
  }

 private:
  std::vector<Diagnostic> diags_;
};

/// Multi-line human rendering, errors first, with a trailing summary line
/// ("3 errors, 1 warning" / "clean").
std::string renderText(const Report& report);

/// Version of the JSON lint schema emitted by renderJson; bump when the
/// shape changes so CI artifact diffs are interpretable across PRs.
/// v3 added the per-rule "satCost" section (SAT/simulation work counters).
/// v4 added the per-property "symbolic" section (model-check verdicts with
/// depth reached, induction k and SAT work).
/// v5 added the per-property "xprop" section (X-propagation / don't-care
/// soundness verdicts with reset depth or counterexample cycle) and the
/// "skipped" rule list emitted by `lint --only`.
inline constexpr int kLintJsonVersion = 5;

/// Per-rule solver and simulation work counters, keyed by rule code.  The
/// equivalence checker fills these (EQV001..EQV004) so the cost of each
/// check is observable in the lint JSON and the pipeline trace.
struct RuleCost {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned = 0;
  std::uint64_t restarts = 0;
  std::uint64_t queries = 0;        ///< SAT queries issued
  std::uint64_t simDischarged = 0;  ///< pairs resolved without building CNF

  RuleCost& operator+=(const RuleCost& o) {
    decisions += o.decisions;
    propagations += o.propagations;
    conflicts += o.conflicts;
    learned += o.learned;
    restarts += o.restarts;
    queries += o.queries;
    simDischarged += o.simDischarged;
    return *this;
  }

  friend bool operator==(const RuleCost&, const RuleCost&) = default;
};

/// One row of the lint JSON "symbolic" section (schema v4): the verdict and
/// SAT work of one safety property checked by the symbolic model checker
/// (symbolic_check.hpp), flattened to renderer-friendly fields.
struct SymbolicPropertyStat {
  std::string artifact;   ///< network the property ran on
  std::string rule;       ///< MDL001..MDL005
  std::string verdict;    ///< "PROVED" | "CEX" | "UNKNOWN"
  int depthReached = -1;  ///< deepest BMC frame proven violation-free
  int inductionK = 0;     ///< k that closed the property (0 unless PROVED)
  RuleCost cost;
};

/// One row of the lint JSON "xprop" section (schema v5): the verdict of one
/// X-propagation (XPR001..XPR004) or don't-care-soundness (DCS001..DCS003)
/// property, with the proof depth (reset cycles or induction k) on PROVED
/// and the failing cycle on CEX.
struct XpropPropertyStat {
  std::string artifact;  ///< network / controller the property ran on
  std::string rule;      ///< XPR001..XPR004, DCS001..DCS003
  std::string verdict;   ///< "PROVED" | "CEX" | "UNKNOWN"
  int depth = -1;        ///< reset cycles / induction k that closed the proof
  int cexCycle = -1;     ///< first failing cycle on CEX; -1 otherwise
  std::uint64_t instances = 0;  ///< ternary power-on instances simulated
  std::uint64_t gateEvals = 0;  ///< ternary AND-word evaluations
  RuleCost cost;                ///< SAT work (DCS rules)

  friend bool operator==(const XpropPropertyStat&,
                         const XpropPropertyStat&) = default;
};

/// Everything beyond the diagnostics that renderJson can emit; the fields
/// default empty so call sites fill only the sections their passes ran.
struct JsonSections {
  std::map<std::string, RuleCost> satCost;
  std::vector<SymbolicPropertyStat> symbolic;
  std::vector<XpropPropertyStat> xprop;
  /// Rule codes filtered out by `lint --only`, reported as skipped.
  std::vector<std::string> skipped;
};

/// Machine rendering: {"schema":"tauhls-lint","version":N,
/// "diagnostics":[{code,severity,artifact,where,message}],
/// "byRule":{code:count,...},"satCost":{code:{decisions,...},...},
/// "errors":N,"warnings":N} -- consumed by CI trend tracking.
std::string renderJson(const Report& report);
/// As above with the per-rule work counters filled in (sorted by code).
std::string renderJson(const Report& report,
                       const std::map<std::string, RuleCost>& satCost);
/// As above with the per-property symbolic model-check rows appended as a
/// "symbolic" array (lint schema v4; empty vector emits an empty array).
std::string renderJson(const Report& report,
                       const std::map<std::string, RuleCost>& satCost,
                       const std::vector<SymbolicPropertyStat>& symbolic);
/// Full schema v5 rendering: every section of `sections`, including the
/// "xprop" property rows and the "skipped" rule list.
std::string renderJson(const Report& report, const JsonSections& sections);

}  // namespace tauhls::verify
