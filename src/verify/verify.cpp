#include "verify/verify.hpp"

#include "netlist/build.hpp"
#include "rtl/verilog.hpp"
#include "verify/dfg_lint.hpp"
#include "verify/fsm_check.hpp"
#include "verify/netlist_check.hpp"
#include "verify/sched_lint.hpp"
#include "vsim/parser.hpp"

namespace tauhls::verify {

Report verifyFlow(const sched::ScheduledDfg& s,
                  const fsm::DistributedControlUnit& dcu,
                  const VerifyOptions& options) {
  Report report;

  lintDfg(s.graph, report);
  lintSchedule(s, options.requestedAllocation, report);
  lintRegisterAllocation(s, report);

  for (const fsm::UnitController& ctl : dcu.controllers) {
    checkFsm(ctl.fsm, report);
  }
  if (options.centSync != nullptr) checkFsm(*options.centSync, report);

  if (options.modelCheck) {
    ModelCheckOptions mc;
    mc.maxStates = options.modelCheckMaxStates;
    if (options.centSync != nullptr) {
      modelCheckControllers(dcu, s, *options.centSync, report, mc);
    } else {
      modelCheckDistributed(dcu, s, report, mc);
    }
  }

  if (options.checkNetlists) {
    for (const fsm::UnitController& ctl : dcu.controllers) {
      lintNetlist(netlist::buildControllerNetlist(ctl.fsm).net, report);
    }
    checkControlLoops(dcu, s.graph.name(), report);
  }

  if (options.checkRtl) {
    const std::string package =
        rtl::emitPackage(dcu, "tauhls_" + s.graph.name() + "_ctrl");
    lintRtl(vsim::parseDesign(package), report);
  }

  return report;
}

}  // namespace tauhls::verify
