// X-propagation / reset-robustness analysis of the distributed controller
// network (rules XPR001-XPR004).
//
// The network (every unit controller, one completion latch per consumed
// signal, wired exactly as rtl::emitDistributedTop wires them) is lowered to
// a sequential AIG whose registers are the encoded controller state bits and
// the latch `held` bits.  A bit-parallel ternary evaluator (aig/ternary.hpp)
// then simulates 64 power-on instances per word from the adversarial
// *all-X* initial state through the reset protocol:
//
//   cycle 0..r-1   rst = 1, restart = 0       (r searched 1..maxCycles)
//   cycle r..      rst = 0; one restart pulse two cycles after release
//
// Lane 0 of word 0 drives every completion input X as well; because ternary
// evaluation is monotone in the information order, that single lane subsumes
// *every* concrete power-on state and every input sequence: if its registers
// are determinate at cycle r, every physical device's are.  The remaining
// lanes run concrete pseudo-random inputs and additionally prove that no X
// ever re-enters a register, pulse or visible output after the reset window.
//
//   XPR001  a controller state bit or completion latch is still (or again)
//           X after the reset window -- model-level, per controller/latch,
//           with a per-cycle 0/1/X waveform of the offending cone.
//   XPR002  the emitted RTL disagrees with the network model under ternary
//           replay (vsim ValueMode::Ternary): a mutually-determinate bit
//           differs, or the RTL holds X where the model proved determinacy.
//   XPR003  the hierarchical region sequencer or a ST_/DN_ handshake latch
//           stays X across a region boundary (composed flow only).
//   XPR004  info summary with the proven reset depth and instance count.
//
// All verdicts are bit-identical across thread counts: words are simulated
// independently and merged in index order.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "fsm/hierarchical.hpp"
#include "synth/encoding.hpp"
#include "verify/dcs_check.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

struct XprOptions {
  synth::EncodingStyle style = synth::EncodingStyle::Binary;
  /// Reset-depth search budget: the largest r tried before giving up.  Also
  /// the number of post-release cycles every instance is watched for.
  int maxCycles = 16;
  /// 64-lane words of concrete power-on instances (word 0 lane 0 is always
  /// the all-X proof lane).
  int words = 4;
  /// Concrete instances replayed against the emitted RTL (plus the all-X
  /// proof replay).
  int rtlInstances = 3;
  std::uint64_t seed = 0x7870726f70ull;  // "xprop"

  // --- fault-injection seams (mutation tests only; empty in production) ---
  /// Completion latches whose model drops the rst arc (held <= ~restart &
  /// (pulse | held)): the latch never drains its power-on X.
  std::set<std::string> latchesWithoutReset;
  /// Controllers whose model drops the state reset mux entirely.
  std::set<std::string> controllersWithoutStateReset;
  /// Hierarchical DN_<path> handshake latches whose model drops the rst arc.
  std::set<std::string> doneLatchesWithoutInit;
  /// Replacement RTL package for the XPR002 ternary replay; must define the
  /// top module `tauhls_xprop_top`.  Empty = emit from the network.
  std::string rtlOverride;
};

/// Everything one network's X check measured (cacheable, serializable).
struct XpropStats {
  std::string artifact;
  std::size_t controllers = 0;
  std::size_t stateBits = 0;  ///< model registers: encoded state bits
  std::size_t latchBits = 0;  ///< model registers: completion latch bits
  int resetDepth = -1;        ///< r that drained every X; -1 when none did
  std::uint64_t instances = 0;   ///< concrete power-on instances simulated
  std::uint64_t gateEvals = 0;   ///< ternary AND-word evaluations
  std::uint64_t rtlCycles = 0;   ///< ternary vsim cycles replayed (XPR002/003)
  std::vector<XpropPropertyStat> properties;  ///< one row per rule that ran

  /// Per-rule cost rows for the pipeline trace (queries = instances).
  std::map<std::string, RuleCost> ruleCost() const;

  XpropStats& operator+=(const XpropStats& o);

  friend bool operator==(const XpropStats&, const XpropStats&) = default;
};

/// Reset robustness of one flat controller network: XPR001 (model-level
/// ternary proof over all power-on states) then XPR002 (model vs emitted
/// RTL ternary agreement).  Diagnostics anchor to `artifact` ("dcu <name>"
/// in the flat flow, "leaf <path> of <name>" under the composition).
XpropStats checkXprop(const fsm::DistributedControlUnit& dcu,
                      const std::string& artifact, Report& report,
                      const XprOptions& options = {});

/// X-safety of the composed hierarchical control: the region sequencer and
/// its ST_/DN_ handshake latches under free DN_/SEL inputs (XPR003), plus
/// every leaf network re-checked per XPR001/XPR002 re-anchored to its path.
XpropStats checkXpropHierarchical(const fsm::HierarchicalControlUnit& hcu,
                                  const std::string& artifact, Report& report,
                                  const XprOptions& options = {});

/// The demand-cached pipeline artifact behind `tauhlsc lint --xprop`: the
/// X-propagation and don't-care-soundness results of one network.
struct XCheckArtifact {
  Report report;
  XpropStats xprop;
  DcsStats dcs;

  friend bool operator==(const XCheckArtifact&, const XCheckArtifact&) = default;
};

}  // namespace tauhls::verify
