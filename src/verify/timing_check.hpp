// Static timing diagnostics (TIM rules): per-controller timing closure
// against the system clock CC_TAU = max(SD, FD), answered by the STA engine
// (netlist/sta.hpp) instead of the naive level-count bound.
//
//   TIM001 (error)   negative slack -- the controller misses the clock
//   TIM002 (warning) slack within 10% of the clock period
//   TIM003 (info)    per-controller summary: arrival, slack, worst path
#pragma once

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "netlist/sta.hpp"
#include "synth/encoding.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

struct TimingOptions {
  double marginNs = 2.0;  ///< register setup + completion-signal arrival
  netlist::DelayModel model;
  synth::EncodingStyle style = synth::EncodingStyle::Binary;
};

/// STA over one controller's synthesized netlist against `clockNs`.
void checkControllerTiming(const fsm::Fsm& fsm, double clockNs, Report& report,
                           const TimingOptions& options = {});

/// STA over every unit controller of the distributed control unit.
Report checkTiming(const fsm::DistributedControlUnit& dcu, double clockNs,
                   const TimingOptions& options = {});

}  // namespace tauhls::verify
