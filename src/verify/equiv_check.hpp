// Symbolic equivalence checking (EQV rules): translation validation of the
// controller synthesis back end.
//
// Per controller, four representations of the same combinational function
// family (next-state bits ns0..ns{n-1} and the declared output signals) are
// lowered into one shared And-Inverter Graph:
//
//   spec     -- the FSM's transitions under the chosen state encoding
//   cover    -- the minimized two-level covers (logic/minimize)
//   netlist  -- the shared-AND-plane gate netlist (netlist/build)
//   rtl      -- the emitted Verilog, reparsed by vsim and evaluated
//               symbolically (the always @* block executed over AIG literals)
//
// Adjacent pairs are proven equivalent with a SAT miter (aig/cec.hpp),
// constrained to valid state codes: unused codes are don't-cares that the
// minimizer exploits, so only the reachable-code subspace must agree.  This
// replaces the truth-table/cofactor machinery, which explodes past ~20
// inputs; the SAT path never enumerates assignments.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "netlist/build.hpp"
#include "synth/encoding.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

/// Which proof engine compareFns runs on.  Both produce identical verdicts
/// (the incremental engine is exercised against the naive one on every
/// benchmark in tests/test_equiv.cpp); they differ only in speed and in the
/// work counters they report.
enum class EquivEngine {
  /// A fresh SAT solver and Tseitin encoding per candidate pair
  /// (aig::proveEquivalent) -- the reference path.
  Naive,
  /// Bit-parallel simulation prefilter + one shared incremental solver per
  /// controller (aig::IncrementalCec) with counterexample-directed
  /// refinement: mismatching pairs are discharged by 64-pattern word
  /// simulation before any CNF exists, proven-equal pairs are memoized, and
  /// every SAT query reuses the previous queries' encoded cones and learned
  /// clauses.
  Incremental,
};

struct EquivOptions {
  synth::EncodingStyle style = synth::EncodingStyle::Binary;
  /// SAT conflict budget per miter; exceeded -> EQV005 (unproven), never a
  /// false claim either way.
  std::uint64_t maxConflicts = 200000;
  EquivEngine engine = EquivEngine::Incremental;
  /// Random 64-pattern simulation words seeded per controller before the
  /// first query (Incremental engine only).
  int simWords = 8;
};

/// Work counters, surfaced in the pipeline trace and, per rule, in the
/// lint JSON ("satCost", schema v3).
struct EquivStats {
  int controllers = 0;
  int functionsCompared = 0;
  std::uint64_t satConflicts = 0;
  /// Solver/simulation work split by rule code (EQV001..EQV004).
  std::map<std::string, RuleCost> ruleCost;

  EquivStats& operator+=(const EquivStats& o) {
    controllers += o.controllers;
    functionsCompared += o.functionsCompared;
    satConflicts += o.satConflicts;
    for (const auto& [code, cost] : o.ruleCost) ruleCost[code] += cost;
    return *this;
  }
};

/// Full chain for one controller: spec = cover (EQV001), cover = netlist
/// (EQV002), netlist = reparsed RTL (EQV003); EQV006 info when all clean.
EquivStats checkControllerChain(const fsm::Fsm& fsm, Report& report,
                                const EquivOptions& options = {});

/// Cover-vs-netlist only, against a caller-supplied netlist (EQV002).
/// Exposed for mutation testing: a tampered netlist must be caught here.
void checkControllerNetlist(const fsm::Fsm& fsm,
                            const netlist::ControllerNetlist& cn,
                            Report& report, const EquivOptions& options = {});

/// Spec-vs-RTL only, against caller-supplied Verilog source containing
/// `moduleName` (EQV003).  Exposed for mutation testing of the emitter.
void checkControllerRtl(const fsm::Fsm& fsm, const std::string& source,
                        const std::string& moduleName, Report& report,
                        const EquivOptions& options = {});

/// Check the completion-latch primitive inside `packageSource` against its
/// specification: level = held | pulse, held' = !rst & !restart &
/// (pulse | held)  (EQV004).
void checkCompletionLatch(const std::string& packageSource, Report& report,
                          EquivStats* stats = nullptr);

/// Whole distributed unit: per-controller chains plus the completion latch
/// of the emitted package.  Controllers are checked as a parallel portfolio
/// on the global thread pool (each chain owns its context, so chains are
/// independent); reports and stats are merged in controller order, making
/// the result identical for every thread count.
Report checkEquivalence(const fsm::DistributedControlUnit& dcu,
                        const EquivOptions& options = {},
                        EquivStats* stats = nullptr);

/// The proving kernel in isolation, for benchmarking the engines against
/// each other (bench/kernel_speed.cpp).  Construction performs all the
/// engine-independent work once -- lowering every representation of every
/// controller into its shared AIG and pairing the function families -- so
/// prove() times exactly what the engines differ in: the per-pair
/// equivalence proofs.  checkEquivalence folds this same work into its
/// end-to-end wall clock, where synthesis and RTL reparsing dominate at
/// Table 2 scale and mask the kernel.
class EquivWorkload {
 public:
  explicit EquivWorkload(const fsm::DistributedControlUnit& dcu,
                         const EquivOptions& options = {});
  ~EquivWorkload();
  EquivWorkload(const EquivWorkload&) = delete;
  EquivWorkload& operator=(const EquivWorkload&) = delete;

  /// Engine-independent proof outcomes: both engines must produce the same
  /// triple on the same workload (enforced by the bench's self-check and by
  /// tests/test_equiv.cpp).
  struct Verdicts {
    std::uint64_t proven = 0;   ///< equivalent under the valid-state constraint
    std::uint64_t refuted = 0;  ///< mismatch witnessed
    std::uint64_t unknown = 0;  ///< conflict budget exhausted

    bool operator==(const Verdicts& o) const {
      return proven == o.proven && refuted == o.refuted &&
             unknown == o.unknown;
    }
  };

  /// Run every prepared pair through the engine in `options.engine`.  The
  /// work counters in `stats` are engine-specific; the verdicts are not.
  Verdicts prove(const EquivOptions& options, EquivStats* stats = nullptr);

  int pairs() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// What the pipeline's `equiv` pass materializes (Artifact::Equivalence):
/// the diagnostics plus the SAT work counters for the trace.
struct EquivalenceArtifact {
  Report report;
  EquivStats stats;
};

}  // namespace tauhls::verify
