// Symbolic equivalence checking (EQV rules): translation validation of the
// controller synthesis back end.
//
// Per controller, four representations of the same combinational function
// family (next-state bits ns0..ns{n-1} and the declared output signals) are
// lowered into one shared And-Inverter Graph:
//
//   spec     -- the FSM's transitions under the chosen state encoding
//   cover    -- the minimized two-level covers (logic/minimize)
//   netlist  -- the shared-AND-plane gate netlist (netlist/build)
//   rtl      -- the emitted Verilog, reparsed by vsim and evaluated
//               symbolically (the always @* block executed over AIG literals)
//
// Adjacent pairs are proven equivalent with a SAT miter (aig/cec.hpp),
// constrained to valid state codes: unused codes are don't-cares that the
// minimizer exploits, so only the reachable-code subspace must agree.  This
// replaces the truth-table/cofactor machinery, which explodes past ~20
// inputs; the SAT path never enumerates assignments.
#pragma once

#include <cstdint>
#include <string>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "netlist/build.hpp"
#include "synth/encoding.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

struct EquivOptions {
  synth::EncodingStyle style = synth::EncodingStyle::Binary;
  /// SAT conflict budget per miter; exceeded -> EQV005 (unproven), never a
  /// false claim either way.
  std::uint64_t maxConflicts = 200000;
};

/// Work counters, surfaced in the pipeline trace.
struct EquivStats {
  int controllers = 0;
  int functionsCompared = 0;
  std::uint64_t satConflicts = 0;

  EquivStats& operator+=(const EquivStats& o) {
    controllers += o.controllers;
    functionsCompared += o.functionsCompared;
    satConflicts += o.satConflicts;
    return *this;
  }
};

/// Full chain for one controller: spec = cover (EQV001), cover = netlist
/// (EQV002), netlist = reparsed RTL (EQV003); EQV006 info when all clean.
EquivStats checkControllerChain(const fsm::Fsm& fsm, Report& report,
                                const EquivOptions& options = {});

/// Cover-vs-netlist only, against a caller-supplied netlist (EQV002).
/// Exposed for mutation testing: a tampered netlist must be caught here.
void checkControllerNetlist(const fsm::Fsm& fsm,
                            const netlist::ControllerNetlist& cn,
                            Report& report, const EquivOptions& options = {});

/// Spec-vs-RTL only, against caller-supplied Verilog source containing
/// `moduleName` (EQV003).  Exposed for mutation testing of the emitter.
void checkControllerRtl(const fsm::Fsm& fsm, const std::string& source,
                        const std::string& moduleName, Report& report,
                        const EquivOptions& options = {});

/// Check the completion-latch primitive inside `packageSource` against its
/// specification: level = held | pulse, held' = !rst & !restart &
/// (pulse | held)  (EQV004).
void checkCompletionLatch(const std::string& packageSource, Report& report);

/// Whole distributed unit: per-controller chains plus the completion latch
/// of the emitted package.
Report checkEquivalence(const fsm::DistributedControlUnit& dcu,
                        const EquivOptions& options = {},
                        EquivStats* stats = nullptr);

/// What the pipeline's `equiv` pass materializes (Artifact::Equivalence):
/// the diagnostics plus the SAT work counters for the trace.
struct EquivalenceArtifact {
  Report report;
  EquivStats stats;
};

}  // namespace tauhls::verify
