// DFG lint (rules DFG001-DFG008): structural well-formedness diagnostics the
// throwing Dfg::validate() cannot express -- dangling operands, dead
// operations, duplicate names, cyclic dependences, and *redundant schedule
// arcs*: sequencing arcs already implied by a data edge or by transitivity
// through the remaining edges, which cost controller states for nothing.
#pragma once

#include "dfg/graph.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

/// Run every DFG rule over `g`, appending to `report`.
void lintDfg(const dfg::Dfg& g, Report& report);

}  // namespace tauhls::verify
