// Static model check of the controller implementations (rules MDL001-MDL007)
// -- no simulation, only graph exploration.
//
// The distributed controllers free-run: each unit FSM wraps from its last
// operation back to its first, and the product's sticky completion latches are
// never cleared, so independent units legitimately pipeline ahead of each
// other between restarts.  The property the paper needs is therefore checked
// *per iteration*: every controller's wrap transition (the one emitting the
// last bound op's CCO pulse) is redirected to an absorbing DONE state, and the
// reachable product of these one-shot controllers models exactly one
// restart-to-restart iteration with cleared latches.  On that product:
//
//   MDL001  the product construction itself gets stuck (a controller has no
//           enabled transition) -- structural deadlock.
//   MDL002  some reachable configuration cannot reach the all-DONE
//           configuration (circular cross-unit wait; livelock in R states).
//   MDL003  iteration balance: every cycle of the explored graph must execute
//           every operation equally often, and the all-DONE configuration must
//           carry the all-ones register-enable count -- each op completes
//           exactly once per iteration (lock-step with the schedule).
//   MDL004  causality: an RE_<op> edge fires although a data predecessor has
//           completed no more often than the op itself.
//   MDL005  per-unit order: an RE_<op> edge fires before the unit's previous
//           bound operation has completed.
//   MDL006  the distributed product and the CENT-SYNC baseline disagree on
//           the per-iteration register-enable event set.
//   MDL007  the reachable-state bound was exceeded; the check is incomplete
//           (warning -- the flow gate still passes).
//
// The same event-count (phi-potential) analysis runs over the CENT-SYNC
// transition graph, so both controller styles are verified statically.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

struct ModelCheckOptions {
  /// Bound on reachable product configurations; exceeding it degrades the
  /// check to an MDL007 warning instead of a verdict.
  std::size_t maxStates = 200000;
};

/// Model-check the distributed controllers against the scheduled DFG and the
/// CENT-SYNC baseline (MDL001-MDL007).  Appends to `report`.
void modelCheckControllers(const fsm::DistributedControlUnit& dcu,
                           const sched::ScheduledDfg& s,
                           const fsm::Fsm& centSync, Report& report,
                           const ModelCheckOptions& options = {});

/// Distributed-side check only (MDL001-MDL005, MDL007), for flows that did
/// not build the baseline.
void modelCheckDistributed(const fsm::DistributedControlUnit& dcu,
                           const sched::ScheduledDfg& s, Report& report,
                           const ModelCheckOptions& options = {});

// Internals shared with the symbolic engine (symbolic_check.cpp): both
// engines must agree on the op index space, the one-shot rewrite, and the
// event-set analysis used for MDL006.
namespace detail {

/// Operation index space shared by both controller styles: op names, the
/// RE_<op> signal of each, data predecessors and the unit-sequence
/// predecessor (both as op indices).
struct OpTable {
  std::vector<std::string> names;
  std::map<std::string, int> indexOfRe;
  std::vector<std::vector<int>> dataPreds;
  std::vector<int> unitPred;  ///< -1 when first on its unit
};

OpTable buildOpTable(const sched::ScheduledDfg& s);

/// Redirect the wrap transitions of a unit controller (keyed on `lastRe`, the
/// register-enable of the last bound op) to an absorbing DONE state, turning
/// the free-running machine into a single-iteration machine.
fsm::Fsm oneShotController(const fsm::Fsm& src, const std::string& lastRe);

/// Result of the phi-potential sweep over one machine's transition graph.
struct EventAnalysis {
  std::vector<bool> reachable;
  /// Per reachable state, how often each op's RE fired on the tree path from
  /// the initial state.
  std::vector<std::vector<long long>> phi;
  std::set<int> alphabet;  ///< op indices whose RE fires on a reachable edge
  bool balanced = true;    ///< no MDL003 inconsistency found
};

/// BFS the reachable transition graph counting RE events (MDL003-MDL005).
EventAnalysis analyzeEvents(const fsm::Fsm& m, const OpTable& table,
                            const std::string& artifact, Report& report);

std::string joinNames(const OpTable& table, const std::set<int>& ops);

}  // namespace detail

}  // namespace tauhls::verify
