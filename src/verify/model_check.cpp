#include "verify/model_check.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "fsm/product.hpp"
#include "fsm/signal.hpp"

namespace tauhls::verify {

using dfg::NodeId;

namespace detail {

OpTable buildOpTable(const sched::ScheduledDfg& s) {
  OpTable t;
  std::map<NodeId, int> indexOfNode;
  for (NodeId v : s.graph.opIds()) {
    indexOfNode[v] = static_cast<int>(t.names.size());
    t.names.push_back(s.graph.node(v).name);
    t.indexOfRe[fsm::registerEnableSignal(s.graph.node(v).name)] =
        static_cast<int>(t.names.size()) - 1;
  }
  t.dataPreds.resize(t.names.size());
  t.unitPred.assign(t.names.size(), -1);
  for (NodeId v : s.graph.opIds()) {
    for (NodeId p : s.graph.dependencePredecessors(v)) {
      if (s.graph.isOp(p)) t.dataPreds[indexOfNode.at(v)].push_back(indexOfNode.at(p));
    }
  }
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    const std::vector<NodeId>& seq = s.binding.sequenceOf(u);
    for (std::size_t i = 1; i < seq.size(); ++i) {
      const auto cur = indexOfNode.find(seq[i]);
      const auto prev = indexOfNode.find(seq[i - 1]);
      if (cur != indexOfNode.end() && prev != indexOfNode.end()) {
        t.unitPred[cur->second] = prev->second;
      }
    }
  }
  return t;
}

/// Wraps are keyed on `lastRe` -- the register-enable of the last bound op,
/// which fires exactly on the completing transitions of that op and (unlike
/// its CCO, which signal pruning may drop) always survives optimization.
fsm::Fsm oneShotController(const fsm::Fsm& src, const std::string& lastRe) {
  fsm::Fsm out("ONESHOT_" + src.name());
  for (int i = 0; i < static_cast<int>(src.numStates()); ++i) {
    out.addState(src.stateName(i));
  }
  const int done = out.addState("DONE");
  for (const std::string& in : src.inputs()) out.addInput(in);
  for (const std::string& sig : src.outputs()) out.addOutput(sig);
  for (const fsm::Transition& t : src.transitions()) {
    const bool wraps = std::find(t.outputs.begin(), t.outputs.end(),
                                 lastRe) != t.outputs.end();
    out.addTransition(t.from, wraps ? done : t.to, t.guard, t.outputs);
  }
  out.addTransition(done, done, fsm::Guard::always(), {});
  out.setInitial(src.initial());
  return out;
}

/// BFS the reachable transition graph counting RE events.  Checks every
/// non-tree edge for uniform cycle weight (MDL003) and every RE-emitting edge
/// for causality (MDL004) and unit order (MDL005).
EventAnalysis analyzeEvents(const fsm::Fsm& m, const OpTable& table,
                            const std::string& artifact, Report& report) {
  const std::size_t numOps = table.names.size();
  EventAnalysis a;
  a.reachable.assign(m.numStates(), false);
  a.phi.assign(m.numStates(), {});

  // De-duplicate diagnostics: one MDL003 per artifact, one MDL004 per
  // (op, pred) pair, one MDL005 per op -- a single defect otherwise repeats
  // on every configuration that exposes it.
  bool reportedBalance = false;
  std::set<std::pair<int, int>> reportedCausality;
  std::set<int> reportedOrder;

  auto eventsOf = [&](const fsm::Transition& t) {
    std::vector<int> ev;
    for (const std::string& out : t.outputs) {
      const auto it = table.indexOfRe.find(out);
      if (it != table.indexOfRe.end()) ev.push_back(it->second);
    }
    return ev;
  };

  std::queue<int> frontier;
  const int init = m.initial();
  a.reachable[static_cast<std::size_t>(init)] = true;
  a.phi[static_cast<std::size_t>(init)].assign(numOps, 0);
  frontier.push(init);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    const std::vector<long long>& phiU = a.phi[static_cast<std::size_t>(u)];
    for (const fsm::Transition* t : m.transitionsFrom(u)) {
      if (t->guard.isNever()) continue;
      const std::vector<int> events = eventsOf(*t);
      for (const int c : events) {
        a.alphabet.insert(c);
        for (const int p : table.dataPreds[static_cast<std::size_t>(c)]) {
          if (phiU[static_cast<std::size_t>(p)] <
                  phiU[static_cast<std::size_t>(c)] + 1 &&
              reportedCausality.insert({c, p}).second) {
            report.add("MDL004", artifact, table.names[static_cast<std::size_t>(c)],
                       "completes in " + m.stateName(u) +
                           " although data predecessor " +
                           table.names[static_cast<std::size_t>(p)] +
                           " has not completed");
          }
        }
        const int q = table.unitPred[static_cast<std::size_t>(c)];
        if (q >= 0 &&
            phiU[static_cast<std::size_t>(q)] <
                phiU[static_cast<std::size_t>(c)] + 1 &&
            reportedOrder.insert(c).second) {
          report.add("MDL005", artifact, table.names[static_cast<std::size_t>(c)],
                     "completes in " + m.stateName(u) +
                         " before its unit's previous operation " +
                         table.names[static_cast<std::size_t>(q)]);
        }
      }
      std::vector<long long> cand = phiU;
      for (const int c : events) ++cand[static_cast<std::size_t>(c)];
      const std::size_t v = static_cast<std::size_t>(t->to);
      if (!a.reachable[v]) {
        a.reachable[v] = true;
        a.phi[v] = std::move(cand);
        frontier.push(t->to);
      } else if (numOps > 0) {
        // Non-tree edge: the closed cycle's event count is cand - phi[v] and
        // must be a uniform k*(1,..,1) -- every op executed equally often.
        const long long d0 = cand[0] - a.phi[v][0];
        for (std::size_t i = 1; i < numOps; ++i) {
          if (cand[i] - a.phi[v][i] != d0) {
            a.balanced = false;
            if (!reportedBalance) {
              reportedBalance = true;
              report.add("MDL003", artifact, m.stateName(t->to),
                         "a reachable cycle executes " + table.names[i] + " " +
                             std::to_string(cand[i] - a.phi[v][i]) +
                             " times but " + table.names[0] + " " +
                             std::to_string(d0) + " times");
            }
            break;
          }
        }
      }
    }
  }
  return a;
}

std::string joinNames(const OpTable& table, const std::set<int>& ops) {
  std::string out;
  for (const int i : ops) {
    if (!out.empty()) out += ", ";
    out += table.names[static_cast<std::size_t>(i)];
  }
  return out;
}

}  // namespace detail

namespace {

using detail::EventAnalysis;
using detail::OpTable;
using detail::analyzeEvents;
using detail::buildOpTable;
using detail::joinNames;
using detail::oneShotController;

/// Build the one-shot product and run all distributed-side checks.  Returns
/// the per-iteration RE alphabet, or nullopt when the product could not be
/// explored (bound exceeded / stuck).
std::optional<std::set<int>> checkDistributedSide(
    const fsm::DistributedControlUnit& dcu, const sched::ScheduledDfg& s,
    const OpTable& table, Report& report, const ModelCheckOptions& options) {
  const std::string artifact = "product " + s.graph.name();

  fsm::DistributedControlUnit oneShot = dcu;
  for (fsm::UnitController& ctl : oneShot.controllers) {
    TAUHLS_CHECK(!ctl.ops.empty(), "controller binds no operations");
    ctl.fsm = oneShotController(
        ctl.fsm, fsm::registerEnableSignal(s.graph.node(ctl.ops.back()).name));
  }

  fsm::ProductInfo info;
  std::optional<fsm::Fsm> product;
  try {
    fsm::ProductOptions popt;
    popt.maxStates = options.maxStates;
    product.emplace(fsm::buildProduct(oneShot, popt, &info));
  } catch (const Error& e) {
    const std::string what = e.what();
    if (what.find("state bound exceeded") != std::string::npos) {
      report.add("MDL007", artifact, "",
                 "reachable configurations exceed the bound " +
                     std::to_string(options.maxStates) + " (" +
                     std::to_string(info.controllerStates.size()) +
                     " explored); model check skipped -- raise --max-states "
                     "or use --model-check symbolic");
    } else {
      report.add("MDL001", artifact, "", "product exploration failed: " + what);
    }
    return std::nullopt;
  }

  const EventAnalysis a = analyzeEvents(*product, table, artifact, report);

  // The completion configurations: every controller in its DONE state.
  std::vector<int> doneState(oneShot.controllers.size());
  for (std::size_t c = 0; c < oneShot.controllers.size(); ++c) {
    doneState[c] = oneShot.controllers[c].fsm.findState("DONE");
    TAUHLS_ASSERT(doneState[c] >= 0, "one-shot controller lost its DONE state");
  }
  std::vector<int> doneConfigs;
  for (std::size_t ps = 0; ps < info.controllerStates.size(); ++ps) {
    bool allDone = true;
    for (std::size_t c = 0; c < doneState.size(); ++c) {
      if (info.controllerStates[ps][c] != doneState[c]) {
        allDone = false;
        break;
      }
    }
    if (allDone && a.reachable[ps]) doneConfigs.push_back(static_cast<int>(ps));
  }

  // MDL002: every reachable configuration must reach a completion
  // configuration, or some unit is caught in a circular wait.
  std::vector<std::vector<int>> reverse(product->numStates());
  for (const fsm::Transition& t : product->transitions()) {
    if (!t.guard.isNever()) reverse[static_cast<std::size_t>(t.to)].push_back(t.from);
  }
  std::vector<bool> canFinish(product->numStates(), false);
  std::queue<int> frontier;
  for (const int ps : doneConfigs) {
    canFinish[static_cast<std::size_t>(ps)] = true;
    frontier.push(ps);
  }
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (const int u : reverse[static_cast<std::size_t>(v)]) {
      if (!canFinish[static_cast<std::size_t>(u)]) {
        canFinish[static_cast<std::size_t>(u)] = true;
        frontier.push(u);
      }
    }
  }
  if (doneConfigs.empty()) {
    report.add("MDL002", artifact, "",
               "no reachable configuration completes the iteration");
  } else {
    std::size_t stuckCount = 0;
    std::string witness;
    for (std::size_t ps = 0; ps < product->numStates(); ++ps) {
      if (a.reachable[ps] && !canFinish[ps]) {
        if (stuckCount == 0) witness = product->stateName(static_cast<int>(ps));
        ++stuckCount;
      }
    }
    if (stuckCount > 0) {
      report.add("MDL002", artifact, witness,
                 std::to_string(stuckCount) +
                     " reachable configuration(s) cannot complete the "
                     "iteration (circular wait)");
    }
  }

  // MDL003 (balance at completion): one iteration executes every op once.
  if (a.balanced) {
    for (const int ps : doneConfigs) {
      const std::vector<long long>& phi = a.phi[static_cast<std::size_t>(ps)];
      for (std::size_t i = 0; i < phi.size(); ++i) {
        if (phi[i] != 1) {
          report.add("MDL003", artifact, product->stateName(ps),
                     "one iteration executes " + table.names[i] + " " +
                         std::to_string(phi[i]) + " times instead of once");
          break;
        }
      }
    }
  }
  return a.alphabet;
}

}  // namespace

void modelCheckDistributed(const fsm::DistributedControlUnit& dcu,
                           const sched::ScheduledDfg& s, Report& report,
                           const ModelCheckOptions& options) {
  const OpTable table = buildOpTable(s);
  checkDistributedSide(dcu, s, table, report, options);
}

void modelCheckControllers(const fsm::DistributedControlUnit& dcu,
                           const sched::ScheduledDfg& s,
                           const fsm::Fsm& centSync, Report& report,
                           const ModelCheckOptions& options) {
  const OpTable table = buildOpTable(s);
  const std::optional<std::set<int>> productAlphabet =
      checkDistributedSide(dcu, s, table, report, options);

  // The CENT-SYNC machine wraps into its next iteration; the phi analysis
  // handles that directly (the wrap edges close uniform-weight cycles).
  const EventAnalysis cent =
      analyzeEvents(centSync, table, "fsm " + centSync.name(), report);

  if (productAlphabet.has_value()) {
    std::set<int> onlyDistributed;
    std::set<int> onlyCentral;
    std::set_difference(productAlphabet->begin(), productAlphabet->end(),
                        cent.alphabet.begin(), cent.alphabet.end(),
                        std::inserter(onlyDistributed, onlyDistributed.end()));
    std::set_difference(cent.alphabet.begin(), cent.alphabet.end(),
                        productAlphabet->begin(), productAlphabet->end(),
                        std::inserter(onlyCentral, onlyCentral.end()));
    if (!onlyDistributed.empty() || !onlyCentral.empty()) {
      std::string msg = "per-iteration register-enable sets differ:";
      if (!onlyDistributed.empty()) {
        msg += " only distributed: " + joinNames(table, onlyDistributed) + ";";
      }
      if (!onlyCentral.empty()) {
        msg += " only cent_sync: " + joinNames(table, onlyCentral) + ";";
      }
      msg.pop_back();
      report.add("MDL006", "product " + s.graph.name(), "", msg);
    }
  }
}

}  // namespace tauhls::verify
