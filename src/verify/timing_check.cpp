#include "verify/timing_check.hpp"

#include <sstream>

#include "netlist/build.hpp"

namespace tauhls::verify {

namespace {

std::string fmtNs(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << v;
  return os.str();
}

}  // namespace

void checkControllerTiming(const fsm::Fsm& fsm, double clockNs, Report& report,
                           const TimingOptions& options) {
  const netlist::ControllerNetlist cn =
      netlist::buildControllerNetlist(fsm, options.style);
  const netlist::StaResult sta =
      netlist::runSta(cn.net, clockNs, options.marginNs, options.model);
  const std::string artifact = "fsm " + fsm.name();
  const std::string path = netlist::formatWorstPath(sta);

  if (sta.worstSlackNs < 0.0) {
    report.add("TIM001", artifact, sta.worstOutput,
               "negative slack " + fmtNs(sta.worstSlackNs) + " ns (arrival " +
                   fmtNs(sta.worstArrivalNs) + " ns vs CC_TAU " +
                   fmtNs(clockNs) + " ns - margin " + fmtNs(options.marginNs) +
                   " ns) via " + path);
  } else if (sta.worstSlackNs < 0.1 * clockNs) {
    report.add("TIM002", artifact, sta.worstOutput,
               "tight slack " + fmtNs(sta.worstSlackNs) + " ns (< 10% of " +
                   fmtNs(clockNs) + " ns clock) via " + path);
  }
  report.add("TIM003", artifact, sta.worstOutput,
             "worst arrival " + fmtNs(sta.worstArrivalNs) + " ns, slack " +
                 fmtNs(sta.worstSlackNs) + " ns at CC_TAU " + fmtNs(clockNs) +
                 " ns via " + path);
}

Report checkTiming(const fsm::DistributedControlUnit& dcu, double clockNs,
                   const TimingOptions& options) {
  Report report;
  for (const fsm::UnitController& c : dcu.controllers) {
    checkControllerTiming(c.fsm, clockNs, report, options);
  }
  return report;
}

}  // namespace tauhls::verify
