// FSM static checks (rules FSM001-FSM007), exact over the completion-signal
// cube and reported as diagnostics instead of the first-failure throw of
// fsm::validateFsm.
//
// Guard *determinism* (FSM004) is decided per transition pair: the
// conjunction of two SOP guards is satisfiable iff some term pair carries no
// opposing literal -- exact, no enumeration.  Guard *completeness* (FSM003)
// is a tautology check on the union of a state's outgoing guard terms,
// decided by Shannon cofactoring over the referenced signals; when the check
// fails it reports a concrete witness assignment that deadlocks the state.
#pragma once

#include <map>
#include <vector>

#include "fsm/guard.hpp"
#include "fsm/machine.hpp"
#include "verify/diagnostic.hpp"

namespace tauhls::verify {

/// Run FSM001-FSM007 over one machine, appending to `report`.
void checkFsm(const fsm::Fsm& fsm, Report& report);

/// True when g1 AND g2 is satisfiable (some assignment enables both).
bool guardsOverlap(const fsm::Guard& g1, const fsm::Guard& g2);

/// True when the disjunction of `terms` is a tautology.  An empty term is the
/// constant true; an empty list the constant false.  When false and `witness`
/// is non-null, it receives an assignment (signal -> value) no term matches.
bool termsAreTautology(const std::vector<fsm::GuardTerm>& terms,
                       std::map<std::string, bool>* witness);

}  // namespace tauhls::verify
