#include "verify/dcs_check.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cec.hpp"
#include "aig/sat.hpp"
#include "aig/unroll.hpp"
#include "common/parallel.hpp"
#include "synth/extract.hpp"
#include "verify/lowering.hpp"
#include "verify/symbolic_check.hpp"

namespace tauhls::verify {

namespace {

using aig::Aig;
using aig::Lit;
using lowering::ControllerContext;
using lowering::describeCounterexample;
using lowering::FnMap;

RuleCost costOf(const aig::SatStats& s) {
  RuleCost c;
  c.decisions = s.decisions;
  c.propagations = s.propagations;
  c.conflicts = s.conflicts;
  c.learned = s.learned;
  c.restarts = s.restarts;
  c.queries = 1;
  return c;
}

/// Frame-by-frame decoding of a DCS002 BMC model back to state and input
/// names (the symbolic_check.cpp TraceDecoder idiom over the controller
/// context's smaller graph).
class DcsTrace {
 public:
  DcsTrace(ControllerContext& ctx, aig::Unroller& unroller,
           const aig::CnfEncoder& enc, const aig::SatSolver& solver)
      : ctx_(ctx), unroller_(unroller) {
    vals_.assign(ctx.g.numInputs(), false);
    for (std::size_t i = 0; i < ctx.g.numInputs(); ++i) {
      const std::uint32_t node =
          aig::nodeOf(ctx.g.findInput(ctx.g.inputNames()[i]));
      const int var = enc.varIfEncoded(node);
      if (var != 0) vals_[i] = solver.modelValue(var);
    }
  }

  bool eval(int frame, Lit templateLit) {
    const Lit l = unroller_.at(frame, templateLit);
    if (ctx_.g.numInputs() > vals_.size()) {
      vals_.resize(ctx_.g.numInputs(), false);  // unconstrained: pick 0
    }
    return ctx_.g.evaluate(l, vals_);
  }

  /// "\n  cycle f: state=Sx in1=0 ..." rows of frames 0..depth; the final
  /// frame lands on the don't-care row.
  std::string waveform(int depth) {
    std::ostringstream os;
    for (int f = 0; f <= depth; ++f) {
      os << "\n  cycle " << f << ": state=" << stateAt(f);
      for (const std::string& in : ctx_.fsm->inputs()) {
        os << " " << in << "=" << (eval(f, ctx_.inputOf.at(in)) ? "1" : "0");
      }
    }
    return os.str();
  }

  std::string stateAt(int frame) {
    std::uint32_t code = 0;
    for (std::size_t b = 0; b < ctx_.stateBits.size(); ++b) {
      if (eval(frame, ctx_.stateBits[b])) code |= std::uint32_t{1} << b;
    }
    const int s = ctx_.enc.stateOf(code);
    if (s >= 0) return ctx_.fsm->stateName(s);
    return "<code " + std::to_string(code) + ">";
  }

 private:
  ControllerContext& ctx_;
  aig::Unroller& unroller_;
  std::vector<bool> vals_;
};

}  // namespace

std::map<std::string, RuleCost> DcsStats::ruleCost() const {
  std::map<std::string, RuleCost> out;
  for (const XpropPropertyStat& p : properties) out[p.rule] += p.cost;
  return out;
}

DcsStats& DcsStats::operator+=(const DcsStats& o) {
  controllers += o.controllers;
  functionsChecked += o.functionsChecked;
  dcFunctions += o.dcFunctions;
  properties.insert(properties.end(), o.properties.begin(),
                    o.properties.end());
  return *this;
}

DcsStats checkDcsFsm(const fsm::Fsm& fsm, const std::string& artifact,
                     Report& report, const DcsOptions& options) {
  DcsStats stats;
  stats.artifact = artifact;
  stats.controllers = 1;

  ControllerContext ctx(fsm, options.style);
  const std::vector<bool> reachable = synth::reachableStates(fsm);
  // The exact care predicate synthesize() minimized against: a row is care
  // iff its state-bit pattern decodes to a reachable state.
  Lit careLit = aig::kLitFalse;
  std::size_t careStates = 0;
  for (std::size_t s = 0; s < fsm.numStates(); ++s) {
    if (!reachable[s]) continue;
    careLit = ctx.g.orLit(careLit, ctx.stateMatch(static_cast<int>(s)));
    ++careStates;
  }

  const auto over = options.coverOverrides.find(fsm.name());
  const synth::SynthesizedFsm syn = over != options.coverOverrides.end()
                                        ? over->second
                                        : synth::synthesize(fsm, options.style);
  FnMap spec = lowering::specFunctions(ctx);
  FnMap cover = lowering::coverFunctions(ctx, syn);
  stats.functionsChecked += spec.size();

  // DCS001: on care rows the minimized cover must equal the specification.
  XpropPropertyStat careRow;
  careRow.artifact = artifact;
  careRow.rule = "DCS001";
  careRow.verdict = propertyVerdictName(PropertyVerdict::Proved);
  careRow.depth = 0;
  XpropPropertyStat dcRow;
  dcRow.artifact = artifact;
  dcRow.rule = "DCS003";
  dcRow.verdict = propertyVerdictName(PropertyVerdict::Proved);
  std::vector<bool> careEqual(spec.size(), false);
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const aig::CecResult r = aig::proveEquivalent(
        ctx.g, spec[i].second, cover[i].second, careLit, options.maxConflicts);
    careRow.cost += costOf(r.stats);
    if (r.status == aig::SatResult::Unsat) {
      careEqual[i] = true;
    } else if (r.status == aig::SatResult::Sat) {
      careRow.verdict = propertyVerdictName(PropertyVerdict::Counterexample);
      careRow.cexCycle = 0;
      report.add("DCS001", artifact, spec[i].first,
                 "minimized cover differs from the FSM specification on a "
                 "reachable (care) row: " +
                     describeCounterexample(ctx, r) +
                     "; the minimizer changed observable behaviour, not just "
                     "don't-cares");
    } else if (careRow.cexCycle < 0) {
      careRow.verdict = propertyVerdictName(PropertyVerdict::Unknown);
    }
    // Does this cover actually *exploit* a don't-care row?  (Differs
    // globally while agreeing on the care set.)
    const aig::CecResult g = aig::proveEquivalent(
        ctx.g, spec[i].second, cover[i].second, aig::kLitTrue,
        options.maxConflicts);
    dcRow.cost += costOf(g.stats);
    if (careEqual[i] && g.status == aig::SatResult::Sat) ++stats.dcFunctions;
  }
  stats.properties.push_back(careRow);

  // DCS002: in the state space the *implemented* covers induce, is a
  // don't-care row (an unreachable or undecodable state code) reachable from
  // the encoded initial state?  BMC finds the driving input sequence;
  // k-induction closes the proof -- at k = 1 when DCS001 holds, because then
  // the care set is inductive (cover == spec on care rows and the spec maps
  // reachable states to reachable states).
  XpropPropertyStat reachRow;
  reachRow.artifact = artifact;
  reachRow.rule = "DCS002";
  reachRow.verdict = propertyVerdictName(PropertyVerdict::Unknown);
  aig::SeqModel seq;
  const std::uint32_t initCode =
      ctx.enc.codeOf[static_cast<std::size_t>(fsm.initial())];
  for (std::size_t b = 0; b < ctx.stateBits.size(); ++b) {
    seq.vars.push_back({"state" + std::to_string(b), ctx.stateBits[b],
                        cover[b].second, ((initCode >> b) & 1u) != 0});
  }
  const Lit bad = aig::negate(careLit);

  aig::SatSolver solver;
  aig::CnfEncoder enc(ctx.g, solver);
  aig::Unroller bmc(ctx.g, seq, "b", true);
  aig::Unroller ind(ctx.g, seq, "i", false);
  for (int depth = 0; depth <= options.maxDepth; ++depth) {
    aig::SatStats before = solver.stats();
    const int badLit = enc.encode(bmc.at(depth, bad));
    const aig::SatResult res =
        solver.solve(std::vector<int>{badLit}, options.maxConflicts);
    reachRow.cost += costOf(solver.stats() - before);
    if (res == aig::SatResult::Sat) {
      reachRow.verdict = propertyVerdictName(PropertyVerdict::Counterexample);
      reachRow.cexCycle = depth;
      DcsTrace trace(ctx, bmc, enc, solver);
      report.add("DCS002", artifact, trace.stateAt(depth),
                 "the implemented next-state covers reach a don't-care row "
                 "after " +
                     std::to_string(depth) +
                     " cycle(s) -- a row the minimizer assumed impossible "
                     "(care set: " +
                     std::to_string(careStates) + " of " +
                     std::to_string(fsm.numStates()) + " states):" +
                     trace.waveform(depth));
      break;
    }
    if (res == aig::SatResult::Unknown) break;
    solver.addClause({-badLit});

    // Induction step at k = depth + 1: care at frames 0..depth forces care
    // at frame depth+1.  With the BMC prefix above, Unsat proves the
    // don't-care rows unreachable at every depth.
    const int k = depth + 1;
    std::vector<int> assumptions;
    before = solver.stats();
    for (int f = 0; f < k; ++f) {
      assumptions.push_back(enc.encode(ind.at(f, careLit)));
    }
    assumptions.push_back(enc.encode(ind.at(k, bad)));
    const aig::SatResult step = solver.solve(assumptions, options.maxConflicts);
    reachRow.cost += costOf(solver.stats() - before);
    if (step == aig::SatResult::Unsat) {
      reachRow.verdict = propertyVerdictName(PropertyVerdict::Proved);
      reachRow.depth = k;
      break;
    }
  }
  stats.properties.push_back(reachRow);

  // DCS003: info summary -- and the certification statement when everything
  // above proved out.
  dcRow.depth = reachRow.depth;
  stats.properties.push_back(dcRow);
  const bool proved =
      careRow.verdict == propertyVerdictName(PropertyVerdict::Proved) &&
      reachRow.verdict == propertyVerdictName(PropertyVerdict::Proved);
  if (proved) {
    report.add("DCS003", artifact, "",
               std::to_string(stats.dcFunctions) + " of " +
                   std::to_string(stats.functionsChecked) +
                   " minimized cover(s) exploit don't-care rows; every "
                   "divergence is confined to rows proven unreachable "
                   "(k-induction closed at k=" +
                   std::to_string(reachRow.depth) + ")");
  }
  return stats;
}

DcsStats checkDcs(const fsm::DistributedControlUnit& dcu,
                  const std::string& artifact, Report& report,
                  const DcsOptions& options) {
  std::vector<DcsStats> perController(dcu.controllers.size());
  std::vector<Report> perReport(dcu.controllers.size());
  common::parallelFor(dcu.controllers.size(), [&](std::size_t i) {
    // Per-controller anchors ("fsm <name>"), matching the equivalence
    // checker's convention, so DCS and EQV diagnostics line up.
    perController[i] =
        checkDcsFsm(dcu.controllers[i].fsm,
                    "fsm " + dcu.controllers[i].fsm.name(), perReport[i],
                    options);
  });
  DcsStats stats;
  stats.artifact = artifact;
  for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
    stats += perController[i];
    report.merge(perReport[i]);
  }
  return stats;
}

}  // namespace tauhls::verify
