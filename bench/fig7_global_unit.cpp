// Figure 7: the distributed synchronous global control unit -- controller
// aggregation, inter-controller completion wiring, and the communication-
// signal optimization the paper applies ("C_CO(0) is removed since any other
// controllers do not receive it").  Ends with the generated Verilog top.
#include "bench_util.hpp"
#include "fsm/signal_opt.hpp"
#include "rtl/verilog.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Fig. 7 -- distributed global control unit and signal wiring");

  dfg::Dfg g = dfg::paperFig3();
  auto s = sched::scheduleAndBind(
      g,
      {{dfg::ResourceClass::Multiplier, 2}, {dfg::ResourceClass::Adder, 2}},
      tau::paperLibrary(), sched::BindingStrategy::CliqueCover);
  fsm::DistributedControlUnit raw = fsm::buildDistributed(s);
  fsm::SignalOptStats stats;
  fsm::DistributedControlUnit opt = fsm::optimizeSignals(raw, &stats);

  std::cout << "Controllers: " << opt.controllers.size()
            << "; external completion inputs:";
  for (const std::string& in : opt.externalInputs) std::cout << " " << in;
  std::cout << "\n\nInter-controller completion wiring (kept signals):\n";
  core::TextTable t({"signal", "producer", "consumers"});
  for (const auto& [sig, consumers] : opt.consumersOf) {
    std::string cons;
    for (int c : consumers) cons += opt.controllers[c].fsm.name() + " ";
    t.addRow({sig, opt.controllers[opt.producerOf.at(sig)].fsm.name(), cons});
  }
  std::cout << t.toString() << "\n";
  std::cout << "Signal optimization: removed " << stats.removedOutputs
            << " unconsumed completion outputs, kept " << stats.keptOutputs
            << " (the paper removes e.g. C_CO(0)).\n\n";

  std::cout << "--- Generated top module ---\n"
            << rtl::emitDistributedTop(opt, "dcu_fig7");
  return 0;
}
