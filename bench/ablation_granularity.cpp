// Ablation A -- distribution granularity (the design choice of §4.1).
//
// The paper picks *one controller per arithmetic unit*, arguing that
//   - a centralized concurrency-preserving FSM (CENT-FSM) explodes, and
//   - one controller per *operation* (the style of [3]) preserves
//     concurrency but grows linearly with operation count, not unit count.
// This bench quantifies all three granularities on Diff. and AR-lattice:
// controller state/FF/area totals plus best/worst latency.
#include "bench_util.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "sim/stats.hpp"
#include "synth/area.hpp"

namespace {

using namespace tauhls;

/// One-unit-per-operation binding (the per-operation controller style):
/// every op gets a private unit of its class, so no serialization arcs are
/// needed and Algorithm 1 degenerates to one small FSM per op.
sched::ScheduledDfg perOpScheduled(const dfg::Dfg& g,
                                   const tau::ResourceLibrary& lib) {
  sched::ScheduledDfg out;
  out.graph = g;
  out.library = lib;
  out.clockNs = tau::tauClockNs(lib);
  std::map<dfg::ResourceClass, int> nextIndex;
  for (dfg::NodeId v : out.graph.opIds()) {
    const dfg::ResourceClass cls = dfg::resourceClassOf(out.graph.node(v).kind);
    const int u = out.binding.addUnit(cls, nextIndex[cls]++);
    out.binding.assign(v, u);
  }
  out.steps = sched::listSchedule(out.graph, {});
  out.taubm = sched::buildTaubm(out.graph, out.steps, lib);
  return out;
}

void report(const std::string& name, const dfg::Dfg& g,
            const sched::Allocation& alloc) {
  const tau::ResourceLibrary lib = tau::paperLibrary();

  auto perUnit = sched::scheduleAndBind(g, alloc, lib);
  fsm::DistributedControlUnit unitDcu = fsm::buildDistributed(perUnit);
  synth::DistributedAreaReport unitArea = synth::distributedArea(unitDcu);
  synth::AreaRow syncArea =
      synth::areaRow("CENT-SYNC", fsm::buildCentSync(perUnit));

  auto perOp = perOpScheduled(g, lib);
  fsm::DistributedControlUnit opDcu = fsm::buildDistributed(perOp);
  synth::DistributedAreaReport opArea = synth::distributedArea(opDcu);

  std::cout << "--- " << name << " (" << g.numOps() << " ops, "
            << core::formatAllocation(perUnit) << ") ---\n";
  core::TextTable t({"granularity", "controllers", "states", "FFs",
                     "Com. area", "Seq. area", "best cyc", "worst cyc"});
  t.addRow({"per unit (paper)", std::to_string(unitDcu.controllers.size()),
            std::to_string(unitArea.total.states),
            std::to_string(unitArea.total.flipFlops),
            std::to_string(unitArea.total.combArea),
            std::to_string(unitArea.total.seqArea),
            std::to_string(sim::bestCaseCycles(perUnit,
                                               sim::ControlStyle::Distributed)),
            std::to_string(sim::worstCaseCycles(
                perUnit, sim::ControlStyle::Distributed))});
  t.addRow({"per op [3]", std::to_string(opDcu.controllers.size()),
            std::to_string(opArea.total.states),
            std::to_string(opArea.total.flipFlops),
            std::to_string(opArea.total.combArea),
            std::to_string(opArea.total.seqArea),
            std::to_string(sim::bestCaseCycles(perOp,
                                               sim::ControlStyle::Distributed)),
            std::to_string(sim::worstCaseCycles(
                perOp, sim::ControlStyle::Distributed))});
  t.addRow({"centralized sync", "1", std::to_string(syncArea.states),
            std::to_string(syncArea.flipFlops),
            std::to_string(syncArea.combArea),
            std::to_string(syncArea.seqArea),
            std::to_string(sim::bestCaseCycles(perUnit,
                                               sim::ControlStyle::CentSync)),
            std::to_string(sim::worstCaseCycles(perUnit,
                                                sim::ControlStyle::CentSync))});
  std::cout << t.toString() << "\n";
}

}  // namespace

int main() {
  bench::banner("Ablation A -- controller granularity: per unit vs per op vs "
                "centralized");
  report("Diff.", dfg::diffeq(),
         {{dfg::ResourceClass::Multiplier, 2},
          {dfg::ResourceClass::Adder, 1},
          {dfg::ResourceClass::Subtractor, 1}});
  report("AR-lattice", dfg::arLattice(),
         {{dfg::ResourceClass::Multiplier, 4}, {dfg::ResourceClass::Adder, 2}});
  std::cout
      << "Shape: per-op controllers scale with operation count (area grows "
         "with DFG size even for a fixed datapath); per-unit controllers "
         "scale with the allocation; the synchronized machine is smallest "
         "but pays latency (see Table 2).  Note the per-op row also uses one "
         "datapath unit per op -- the [3] style presumes abundant resources.\n";
  return 0;
}
