// Ablation G -- state-encoding style in the area model: minimal-length
// binary (the Table 1 default) versus one-hot, for every controller of every
// Table 2 benchmark plus the centralized baseline.  One-hot trades flip-flops
// for simpler next-state logic; the paper's small controllers favour binary.
#include "bench_util.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "synth/area.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation G -- binary vs one-hot state encoding");

  core::TextTable t({"DFG", "machine", "states", "bin FF", "bin Com/Seq",
                     "1hot FF", "1hot Com/Seq"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
    auto addRow = [&t, &b](const std::string& name, const fsm::Fsm& fsm) {
      synth::AreaRow bin = synth::areaRow(name, fsm, synth::EncodingStyle::Binary);
      synth::AreaRow hot = synth::areaRow(name, fsm, synth::EncodingStyle::OneHot);
      t.addRow({b.name, name, std::to_string(bin.states),
                std::to_string(bin.flipFlops),
                std::to_string(bin.combArea) + "/" + std::to_string(bin.seqArea),
                std::to_string(hot.flipFlops),
                std::to_string(hot.combArea) + "/" + std::to_string(hot.seqArea)});
    };
    for (const fsm::UnitController& c : dcu.controllers) {
      addRow(c.fsm.name(), c.fsm);
    }
    addRow("CENT-SYNC", fsm::buildCentSync(s));
  }
  std::cout << t.toString();
  std::cout << "\nShape: one-hot spends ~(states - log2(states)) extra FFs "
               "(22 area units each) and wins back little combinational area "
               "on machines this small -- binary encoding is the right "
               "Table 1 setting.\n";
  return 0;
}
