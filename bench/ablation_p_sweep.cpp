// Ablation C -- sensitivity to the SD-hit ratio P (the paper evaluates only
// P = 0.9/0.7/0.5; this sweeps 0.05..0.95) plus the crossover against a
// conventional fixed-delay design clocked at CC = LD.
//
// The sweep doubles as the artifact-reuse study for the pass pipeline
// (core/pipeline.hpp): every (benchmark, P) cell is its own pipeline run
// against one shared cache, so the schedule, the controllers and the static
// verification of a benchmark are computed for its first P point and reused
// by the other ten -- only the latency pass re-runs per P.  The bench
// cross-checks every reported number against the monolithic-equivalent
// multi-P flow (bit-identical or exit 1), checks the schedule pass ran
// exactly once per benchmark (exit 1 otherwise; CI enforces the same on the
// exported trace), and times the cached sweep against the pre-pipeline
// equivalent (one full flow per P point) on one benchmark.
//
//   ablation_p_sweep [--trace-json FILE]   chrome://tracing pass trace
#include <chrono>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"
#include "sim/stats.hpp"
#include "tau/clocking.hpp"

namespace {

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tauhls;
  std::string traceJsonPath;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--trace-json" && i + 1 < argc) {
      traceJsonPath = argv[++i];
    } else {
      std::cerr << "usage: ablation_p_sweep [--trace-json FILE]\n";
      return 2;
    }
  }

  bench::banner("Ablation C -- P sweep and the telescopic-vs-conventional "
                "crossover");

  const std::vector<double> ps = {0.95, 0.9, 0.8, 0.7, 0.6,
                                  0.5,  0.4, 0.3, 0.2, 0.1, 0.05};
  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  const auto suite = dfg::paperTable2Suite();
  auto perPointConfig = [&](std::size_t bi, double p) {
    core::FlowConfig cfg;
    cfg.allocation = suite[bi].allocation;
    cfg.ps = {p};
    cfg.synthesizeArea = false;
    return cfg;
  };

  // --- Cached sweep: 11 per-P pipeline runs per benchmark, shared cache ---
  // Benchmarks fan out over the pool; within a benchmark the P points run
  // serially so every point after the first reuses schedule + controllers +
  // verification from the cache and pays only for its latency pass.
  auto cache = std::make_shared<core::ArtifactCache>();
  std::vector<std::vector<sim::LatencyComparison>> cells(suite.size());
  std::vector<sched::ScheduledDfg> schedules(suite.size());
  std::vector<std::vector<core::TracedRun>> traces(suite.size());
  const auto sweepT0 = std::chrono::steady_clock::now();
  common::parallelFor(suite.size(), [&](std::size_t bi) {
    for (double p : ps) {
      core::FlowPipeline pipeline(suite[bi].graph, perPointConfig(bi, p),
                                  cache);
      const core::FlowResult r = pipeline.run();
      cells[bi].push_back(r.latency);
      if (cells[bi].size() == 1) schedules[bi] = r.scheduled;
      std::ostringstream runName;
      runName << suite[bi].name << "@P=" << p;
      traces[bi].push_back({runName.str(), pipeline.traceEvents()});
    }
  });
  const double sweepMs = wallMs(sweepT0);

  for (std::size_t bi = 0; bi < suite.size(); ++bi) {
    const dfg::NamedBenchmark& b = suite[bi];

    // Conventional design: 1 cycle/op at CC = 20 ns.
    const double ccNs = tau::conventionalClockNs(tau::paperLibrary());
    const double conv =
        sim::bestCaseCycles(schedules[bi], sim::ControlStyle::Distributed) *
        ccNs;

    std::cout << "--- " << b.name << " (conventional @ CC=" << ccNs
              << "ns: " << fmt(conv) << " ns) ---\n";
    core::TextTable t({"P", "LT_TAU", "LT_DIST", "enh", "vs conventional"});
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const sim::LatencyComparison& cell = cells[bi][i];
      const double tau = cell.tau.averageNs[0];
      const double dist = cell.dist.averageNs[0];
      t.addRow({fmt(ps[i]), fmt(tau), fmt(dist),
                fmt(cell.enhancementPercent[0]) + "%",
                fmt((conv - dist) / conv * 100.0) + "%"});
    }
    std::cout << t.toString() << "\n";
  }
  std::cout << "Shape: the distributed win over sync-TAUBM peaks at "
               "mid-range P (at P=1 and in the all-LD limit both converge); "
               "the telescopic design beats the conventional clock whenever "
               "the average column stays below it -- the crossover P falls "
               "as designs get deeper.\n";
  std::cout << "Sweep wall time: " << fmt(sweepMs) << " ms on "
            << common::globalThreadPool().threadCount() << " threads.\n";

  // --- Pipeline accounting: the cache must have shared each benchmark's ---
  // schedule across all 11 P points.
  const core::CacheStats stats = cache->stats();
  std::cout << "Pipeline cache: " << core::formatCacheSummary(stats) << ".\n";
  const std::uint64_t scheduleRuns =
      stats.runsPerPass.count("schedule") ? stats.runsPerPass.at("schedule")
                                          : 0;
  std::cout << "Schedule pass runs: " << scheduleRuns << " for "
            << suite.size() << " benchmarks x " << ps.size()
            << " P points.\n";
  if (scheduleRuns > suite.size()) {
    std::cerr << "FAIL: schedule ran " << scheduleRuns
              << " times for " << suite.size()
              << " benchmarks -- artifact reuse is broken.\n";
    return 1;
  }

  // --- Bit-identity: every cell must match the monolithic-equivalent ---
  // multi-P flow (the pre-pipeline bench evaluated one flow per benchmark
  // with the full P list; per-P enumeration through the cache must not
  // change a single bit).
  std::size_t checked = 0;
  for (std::size_t bi = 0; bi < suite.size(); ++bi) {
    core::FlowConfig cfg;
    cfg.allocation = suite[bi].allocation;
    cfg.ps = ps;
    cfg.synthesizeArea = false;
    const core::FlowResult whole = core::runFlow(suite[bi].graph, cfg);
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const sim::LatencyComparison& cell = cells[bi][i];
      const bool same =
          cell.tau.bestNs == whole.latency.tau.bestNs &&
          cell.tau.worstNs == whole.latency.tau.worstNs &&
          cell.dist.bestNs == whole.latency.dist.bestNs &&
          cell.dist.worstNs == whole.latency.dist.worstNs &&
          cell.tau.averageNs[0] == whole.latency.tau.averageNs[i] &&
          cell.dist.averageNs[0] == whole.latency.dist.averageNs[i] &&
          cell.enhancementPercent[0] == whole.latency.enhancementPercent[i];
      if (!same) {
        std::cerr << "FAIL: cached per-P result differs from the monolithic "
                     "flow for "
                  << suite[bi].name << " at P=" << ps[i] << "\n";
        return 1;
      }
      ++checked;
    }
  }
  std::cout << "Bit-identity: " << checked
            << "/66 cells match the monolithic multi-P flow exactly.\n";

  // --- Artifact-reuse speedup on one benchmark: the cached 11-point per-P
  // sweep vs the pre-pipeline equivalent (one full uncached flow per P).
  const std::size_t study = suite.size() - 1;  // AR-lattice, the deepest DFG
  const auto uncachedT0 = std::chrono::steady_clock::now();
  std::vector<sim::LatencyComparison> uncachedCells;
  for (double p : ps) {
    uncachedCells.push_back(
        core::runFlow(suite[study].graph, perPointConfig(study, p)).latency);
  }
  const double uncachedMs = wallMs(uncachedT0);

  const auto cachedT0 = std::chrono::steady_clock::now();
  auto studyCache = std::make_shared<core::ArtifactCache>();
  std::vector<sim::LatencyComparison> cachedCells;
  for (double p : ps) {
    core::FlowPipeline pipeline(suite[study].graph,
                                perPointConfig(study, p), studyCache);
    cachedCells.push_back(pipeline.run().latency);
  }
  const double cachedMs = wallMs(cachedT0);

  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (cachedCells[i].dist.averageNs[0] != uncachedCells[i].dist.averageNs[0] ||
        cachedCells[i].tau.averageNs[0] != uncachedCells[i].tau.averageNs[0]) {
      std::cerr << "FAIL: cached and uncached sweeps disagree on "
                << suite[study].name << " at P=" << ps[i] << "\n";
      return 1;
    }
  }
  std::cout << "Artifact-reuse speedup (" << suite[study].name
            << ", 11-point per-P sweep): " << std::fixed
            << std::setprecision(2) << uncachedMs / cachedMs << "x ("
            << fmt(uncachedMs) << " ms uncached vs " << fmt(cachedMs)
            << " ms through the shared cache), identical numbers.\n";

  if (!traceJsonPath.empty()) {
    std::vector<core::TracedRun> allRuns;
    for (const auto& perBench : traces) {
      allRuns.insert(allRuns.end(), perBench.begin(), perBench.end());
    }
    std::ofstream out(traceJsonPath);
    if (!out) {
      std::cerr << "cannot open " << traceJsonPath << "\n";
      return 1;
    }
    out << core::traceToChromeJson(allRuns);
    std::cout << "Wrote pipeline trace (" << allRuns.size() << " runs) to "
              << traceJsonPath << ".\n";
  }
  return 0;
}
