// Ablation C -- sensitivity to the SD-hit ratio P (the paper evaluates only
// P = 0.9/0.7/0.5; this sweeps 0.05..0.95) plus the crossover against a
// conventional fixed-delay design clocked at CC = LD.
#include <chrono>
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "sim/stats.hpp"
#include "tau/clocking.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation C -- P sweep and the telescopic-vs-conventional "
                "crossover");

  const std::vector<double> ps = {0.95, 0.9, 0.8, 0.7, 0.6,
                                  0.5,  0.4, 0.3, 0.2, 0.1, 0.05};
  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  // Every (benchmark, P, style) cell is independent: run the six 11-point
  // sweeps concurrently, then print in suite order.  The wall time is
  // reported so sweep-speed regressions are visible in the harness logs.
  const auto suite = dfg::paperTable2Suite();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<core::FlowResult> results(suite.size());
  common::parallelFor(suite.size(), [&](std::size_t i) {
    core::FlowConfig cfg;
    cfg.allocation = suite[i].allocation;
    cfg.ps = ps;
    cfg.synthesizeArea = false;
    results[i] = core::runFlow(suite[i].graph, cfg);
  });
  const double sweepMs =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  for (std::size_t bi = 0; bi < suite.size(); ++bi) {
    const dfg::NamedBenchmark& b = suite[bi];
    const core::FlowResult& r = results[bi];

    // Conventional design: 1 cycle/op at CC = 20 ns.
    const double ccNs = tau::conventionalClockNs(tau::paperLibrary());
    const double conv =
        sim::bestCaseCycles(r.scheduled, sim::ControlStyle::Distributed) * ccNs;

    std::cout << "--- " << b.name << " (conventional @ CC=" << ccNs
              << "ns: " << fmt(conv) << " ns) ---\n";
    core::TextTable t({"P", "LT_TAU", "LT_DIST", "enh", "vs conventional"});
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const double tau = r.latency.tau.averageNs[i];
      const double dist = r.latency.dist.averageNs[i];
      t.addRow({fmt(ps[i]), fmt(tau), fmt(dist),
                fmt(r.latency.enhancementPercent[i]) + "%",
                fmt((conv - dist) / conv * 100.0) + "%"});
    }
    std::cout << t.toString() << "\n";
  }
  std::cout << "Shape: the distributed win over sync-TAUBM peaks at "
               "mid-range P (at P=1 and in the all-LD limit both converge); "
               "the telescopic design beats the conventional clock whenever "
               "the average column stays below it -- the crossover P falls "
               "as designs get deeper.\n";
  std::cout << "Sweep wall time: " << fmt(sweepMs) << " ms on "
            << common::globalThreadPool().threadCount() << " threads.\n";
  return 0;
}
