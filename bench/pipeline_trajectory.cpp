// Pipeline cache trajectory -- the per-PR tracked benchmark for the pass
// pipeline and its two cache tiers (core/pipeline.hpp, core/store.hpp).
//
// Runs the Table 2 suite through three regimes:
//
//   cold         fresh memory cache + empty persistent store
//   warm-memory  same process, same memory cache (every pass a memory hit)
//   warm-disk    fresh memory cache + fresh store handle on the populated
//                directory, i.e. what a second `tauhlsc` process observes
//                (every pass served from disk, bit-identical results)
//
// and emits BENCH_pipeline.json in a stable, schema-versioned layout:
//
//   "structural"  deterministic counts (pass runs, hit/miss totals, store
//                 blob count and byte size).  These are identical on every
//                 machine; CI diffs them against the committed baseline
//                 (bench/baselines/BENCH_pipeline.json) via
//                 tools/compare_bench.py and fails on drift, so a
//                 change here is a deliberate, reviewed baseline update.
//   "timingsMs"   wall-clock milliseconds per regime and per pass.  Machine
//                 dependent; the comparator only reports their deltas.
//
// The bench also self-checks: warm runs must be 100% hits with bit-identical
// FlowResult JSON, else it exits non-zero.
//
//   pipeline_trajectory [--json FILE] [--store DIR]
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>

#include "bench_util.hpp"
#include "core/json.hpp"
#include "core/pipeline.hpp"
#include "core/store.hpp"

namespace {

namespace fs = std::filesystem;
using namespace tauhls;
using namespace tauhls::core;

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct RegimeResult {
  CacheStats stats;
  double ms = 0.0;
  std::string resultJson;  ///< concatenated FlowResult JSON (identity check)
  std::map<std::string, double> passUs;  ///< summed pass wall time
};

/// Run every suite benchmark through one shared cache; returns the cache
/// counters accumulated by exactly this sweep (delta vs the cache's prior
/// state is zero here because each regime uses a fresh ArtifactCache).
RegimeResult runSuite(const std::vector<dfg::NamedBenchmark>& suite,
                      const std::shared_ptr<ArtifactCache>& cache) {
  RegimeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  for (const dfg::NamedBenchmark& b : suite) {
    FlowConfig cfg;
    cfg.allocation = b.allocation;
    FlowPipeline pipeline(b.graph, cfg, cache);
    r.resultJson += toJson(pipeline.run());
    for (const PassTraceEvent& ev : pipeline.traceEvents()) {
      r.passUs[ev.pass] += ev.durationUs;
    }
  }
  r.ms = wallMs(t0);
  r.stats = cache->stats();
  return r;
}

std::string jsonNumber(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_pipeline.json";
  std::string storeDir;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else if (a == "--store" && i + 1 < argc) {
      storeDir = argv[++i];
    } else {
      std::cerr << "usage: pipeline_trajectory [--json FILE] [--store DIR]\n";
      return 2;
    }
  }

  bench::banner("Pipeline cache trajectory (cold / warm-memory / warm-disk)");

  const fs::path dir =
      storeDir.empty() ? fs::temp_directory_path() / "tauhls_bench_store"
                       : fs::path(storeDir);
  fs::remove_all(dir);

  const auto suite = dfg::paperTable2Suite();

  // Cold: fresh memory cache, empty store.
  auto coldCache = std::make_shared<ArtifactCache>();
  coldCache->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  const RegimeResult cold = runSuite(suite, coldCache);
  const StoreStats storeStats = coldCache->store()->stats();

  // Warm-memory: the same cache again.
  const RegimeResult warmMem = runSuite(suite, coldCache);
  const CacheStats warmMemDelta = [&] {
    CacheStats d = warmMem.stats;
    d.hits -= cold.stats.hits;
    d.diskHits -= cold.stats.diskHits;
    d.misses -= cold.stats.misses;
    return d;
  }();

  // Warm-disk: a fresh memory cache and a fresh handle on the populated
  // store directory -- the cross-process path.
  coldCache->store()->flushIndex();
  auto diskCache = std::make_shared<ArtifactCache>();
  diskCache->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  const RegimeResult warmDisk = runSuite(suite, diskCache);

  const auto pct = [](const CacheStats& s) {
    return jsonNumber(100.0 * s.hitRate());
  };
  std::cout << "cold:        " << formatCacheSummary(cold.stats) << "\n"
            << "warm-memory: " << formatCacheSummary(warmMemDelta) << "\n"
            << "warm-disk:   " << formatCacheSummary(warmDisk.stats) << "\n"
            << "store:       " << storeStats.blobs << " blobs, "
            << storeStats.bytes << " bytes\n";

  // Self-checks: the warm regimes recompute nothing and reproduce the cold
  // bits exactly.
  bool ok = true;
  if (warmMemDelta.misses != 0 || warmDisk.stats.misses != 0) {
    std::cerr << "FAIL: a warm regime recomputed a pass\n";
    ok = false;
  }
  if (warmDisk.stats.diskHits != warmDisk.stats.hits) {
    std::cerr << "FAIL: warm-disk regime was not fully disk-served\n";
    ok = false;
  }
  if (warmMem.resultJson != cold.resultJson ||
      warmDisk.resultJson != cold.resultJson) {
    std::cerr << "FAIL: warm results are not bit-identical to the cold run\n";
    ok = false;
  }
  std::cout << "Bit-identity: " << (ok ? "OK" : "FAILED") << "\n";

  // Emit the trajectory JSON.
  std::ostringstream js;
  js << "{\"schema\":\"tauhls-bench-pipeline\",\"version\":1,"
     << "\"benchmarks\":" << suite.size() << ",\"structural\":{";
  js << "\"coldPassRuns\":{";
  bool first = true;
  for (const auto& [pass, runs] : cold.stats.runsPerPass) {
    js << (first ? "" : ",") << "\"" << pass << "\":" << runs;
    first = false;
  }
  js << "},\"cold\":{\"runs\":" << cold.stats.misses
     << ",\"hits\":" << cold.stats.hits << "}"
     << ",\"warmMemory\":{\"hits\":" << warmMemDelta.hits
     << ",\"misses\":" << warmMemDelta.misses << "}"
     << ",\"warmDisk\":{\"hits\":" << warmDisk.stats.hits
     << ",\"diskHits\":" << warmDisk.stats.diskHits
     << ",\"misses\":" << warmDisk.stats.misses
     << ",\"hitRatePct\":" << pct(warmDisk.stats) << "}"
     << ",\"store\":{\"blobs\":" << storeStats.blobs
     << ",\"bytes\":" << storeStats.bytes << "}"
     << "},\"timingsMs\":{"
     << "\"cold\":" << jsonNumber(cold.ms)
     << ",\"warmMemory\":" << jsonNumber(warmMem.ms)
     << ",\"warmDisk\":" << jsonNumber(warmDisk.ms) << ",\"coldPassMs\":{";
  first = true;
  for (const auto& [pass, us] : cold.passUs) {
    js << (first ? "" : ",") << "\"" << pass << "\":" << jsonNumber(us / 1000.0);
    first = false;
  }
  js << "}}}";

  std::ofstream out(jsonPath, std::ios::trunc);
  out << js.str() << "\n";
  if (!out) {
    std::cerr << "cannot write " << jsonPath << "\n";
    return 1;
  }
  std::cout << "wrote " << jsonPath << "\n";

  if (storeDir.empty()) fs::remove_all(dir);
  return ok ? 0 : 1;
}
