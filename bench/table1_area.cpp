// Regenerates the paper's Table 1: area analysis of CENT-FSM (the explicit
// concurrency-preserving product), CENT-SYNC-FSM (synchronized TAUBM
// expansion) and DIST-FSM (the proposed distributed control unit, per unit
// controller) for the Diff. DFG under {x:2 TAU, +:1, -:1}.
//
// The paper's unit-area constants are recovered where derivable (22 area
// units per flip-flop); combinational area is the minimized two-level
// literal count x 2.  Absolute numbers therefore differ from the paper's
// unnamed commercial synthesis, but the claims under test are relative:
//   (1) DIST-FSM is a small constant factor above CENT-SYNC-FSM, dominated
//       by sequential redundancy and communication;
//   (2) CENT-FSM explodes in states and combinational area.
#include "bench_util.hpp"
#include "fsm/minimize.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Table 1 -- area analysis for the Diff. DFG, {*:2, +:1, -:1}");

  core::FlowConfig cfg;
  cfg.allocation = {{dfg::ResourceClass::Multiplier, 2},
                    {dfg::ResourceClass::Adder, 1},
                    {dfg::ResourceClass::Subtractor, 1}};
  cfg.buildCentFsm = true;
  const core::FlowResult r = core::runFlow(dfg::diffeq(), cfg);

  std::cout << core::formatTable1(r) << "\n";

  const auto& dist = r.distArea->total;
  const auto& sync = *r.centSyncArea;
  const auto& cent = *r.centFsmArea;
  std::cout << "Paper reference (different area units, same comparison):\n"
            << "  CENT-SYNC-FSM: 4 states, 3 FFs, Seq 66\n"
            << "  DIST-FSM:      16 states, 10 FFs, Seq 220 (~3x CENT-SYNC total)\n"
            << "  CENT-FSM:      5 FFs, Seq 110, Com ~1.6x DIST\n\n";
  std::cout << "Measured ratios:\n"
            << "  DIST total / CENT-SYNC total = "
            << static_cast<double>(dist.totalArea()) / sync.totalArea() << "\n"
            << "  CENT-FSM states / CENT-SYNC states = "
            << static_cast<double>(cent.states) / sync.states << "\n"
            << "  CENT-FSM comb / DIST comb = "
            << static_cast<double>(cent.combArea) / dist.combArea << "\n";
  fsm::Fsm minimized = fsm::minimizeStates(*r.centFsm);
  std::cout << "  CENT-FSM after exact Mealy state minimization: "
            << minimized.numStates() << " states (of " << cent.states
            << ") -- the blow-up is intrinsic, not an artifact: because the "
               "controllers loop, every concurrency distinction is "
               "eventually observable.\n";
  std::cout << "\nNote: our CENT-FSM is the exact reachable product including "
               "completion-latch state; it overstates the paper's "
               "hand-derived CENT-FSM, strengthening the same conclusion "
               "(centralized concurrency-preserving control does not "
               "scale).\n";
  return 0;
}
