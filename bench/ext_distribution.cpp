// Extension bench: full latency distributions (Table 2 reports only means).
// Exact pmf over all 2^n operand classes; reports mean / p50 / p95 / worst
// for both control styles -- what a real-time budget would look at.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "sim/distribution.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Extension -- exact latency distributions at P = 0.7");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "style", "mean cyc", "p50", "p95", "worst",
                     "pmf support"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    if (sim::tauOps(s).size() > 20) continue;
    for (auto [label, style] :
         {std::pair{"DIST", sim::ControlStyle::Distributed},
          std::pair{"SYNC", sim::ControlStyle::CentSync}}) {
      const sim::LatencyDistribution d =
          sim::latencyDistribution(s, style, 0.7);
      std::ostringstream support;
      for (const auto& [cycles, prob] : d.pmf) {
        support << cycles << ":" << std::fixed << std::setprecision(2) << prob
                << " ";
      }
      t.addRow({b.name, label, fmt(d.mean()), std::to_string(d.quantile(0.5)),
                std::to_string(d.quantile(0.95)),
                std::to_string(d.maxCycles()), support.str()});
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape: the distributed controller shifts the whole "
               "distribution left (it stochastically dominates the "
               "synchronized baseline -- tested property), tightening p95 "
               "budgets, not just means.\n";
  return 0;
}
