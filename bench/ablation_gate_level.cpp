// Ablation H -- gate-level realization of the controllers.
//
// Lowers every machine to a structural netlist (shared AND plane + OR
// plane), verifies it gate-for-gate against the FSM, and reports
// gate-equivalents plus two delay columns: the naive uniform-delay bound
// (2-input depth * nsPerLevel) and the STA arrival/slack from the real
// timing engine (per-gate-kind delays, fanout loading).  Timing closure is
// what the paper implicitly needs: the controller's next-state logic must
// settle within CC_TAU = 15 ns on top of the completion-signal arrival.
// Distribution keeps every controller shallow; the exact CENT-FSM product's
// logic gets both huge and deep.
#include <sstream>

#include "bench_util.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "netlist/analyze.hpp"
#include "netlist/build.hpp"
#include "netlist/sta.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation H -- gate-level controller area and timing");

  const double nsPerLevel = 0.5;  // naive-bound 2-input gate delay
  const double clockNs = 15.0;
  const double marginNs = 2.0;    // register setup + completion arrival

  core::TextTable t({"DFG", "machine", "states", "gate-equiv", "depth",
                     "naive (ns)", "STA (ns)", "slack (ns)", "fits CC_TAU"});
  auto fmt = [](double v) {
    std::ostringstream os;
    os.precision(2);
    os << std::fixed << v;
    return os.str();
  };
  auto addRow = [&](const std::string& dfgName, const std::string& machine,
                    const fsm::Fsm& f) {
    netlist::ControllerNetlist cn = netlist::buildControllerNetlist(f);
    if (!netlist::verifyAgainstFsm(cn, f)) {
      std::cout << "VERIFICATION FAILED for " << machine << "\n";
      return;
    }
    const netlist::GateStats s = netlist::analyze(cn.net);
    const netlist::StaResult sta = netlist::runSta(cn.net, clockNs, marginNs);
    t.addRow({dfgName, machine, std::to_string(f.numStates()),
              std::to_string(s.gateEquivalents), std::to_string(s.depth),
              fmt(s.depth * nsPerLevel), fmt(sta.worstArrivalNs),
              fmt(sta.worstSlackNs), sta.meetsClock() ? "yes" : "NO"});
  };

  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
    for (const fsm::UnitController& c : dcu.controllers) {
      addRow(b.name, c.fsm.name(), c.fsm);
    }
    addRow(b.name, "CENT-SYNC", fsm::buildCentSync(s));
    if (b.name == "Diff.") {
      addRow(b.name, "CENT-FSM (product)", fsm::buildProduct(dcu));
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape: every distributed controller settles in a few gate "
               "levels (comfortable STA slack at CC_TAU = 15 ns); the naive "
               "depth bound tracks the STA arrival but understates wide-gate "
               "and fanout cost.  The exact CENT-FSM product needs two orders "
               "of magnitude more gates and the deepest logic in the table.\n";
  return 0;
}
