// Figure 5: the basic structure of an arithmetic-unit controller -- its
// interface contract.  For every controller of every Table 2 benchmark this
// bench prints the Fig. 5 port map: the completion input C from its own
// unit's generator, the predecessor completion inputs C_PO, and the outputs
// OF / RE / C_CO, plus the flip-flops behind the current/next-state logic.
#include "bench_util.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Fig. 5 -- arithmetic-unit controller interface structure");

  core::TextTable t({"DFG", "controller", "C_T in", "C_PO ins", "OF/RE outs",
                     "C_CO outs", "FFs"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    fsm::DistributedControlUnit dcu =
        fsm::optimizeSignals(fsm::buildDistributed(s));
    for (const fsm::UnitController& c : dcu.controllers) {
      int cpo = 0;
      for (const std::string& in : c.fsm.inputs()) {
        if (in.starts_with("CCO_")) ++cpo;
      }
      int ofre = 0;
      int cco = 0;
      for (const std::string& out : c.fsm.outputs()) {
        if (out.starts_with("CCO_")) ++cco;
        else ++ofre;
      }
      t.addRow({b.name, c.fsm.name(), c.telescopic ? "yes" : "-",
                std::to_string(cpo), std::to_string(ofre),
                std::to_string(cco), std::to_string(c.fsm.flipFlopCount())});
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape (Fig. 5): every controller is the same small box -- "
               "C from its own completion generator (telescopic units only), "
               "latched C_PO inputs from its predecessors' controllers, "
               "OF/RE to the datapath, and only the *consumed* C_CO wires "
               "exported (signal optimization).\n";
  return 0;
}
