// Figure 1 substrate: the telescopic arithmetic unit itself.  Characterizes
// the bit-level completion generators (the "C generator" box of Fig. 1):
// measured SD-hit ratio P versus the certified SD bound, for ripple adders
// and array multipliers under three operand distributions, with the
// conservativeness contract (no false completion, ever) checked on every
// trial.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "bitlevel/measure.hpp"

int main() {
  using namespace tauhls;
  using bitlevel::OperandDistribution;
  bench::banner("Fig. 1 -- telescopic unit model: completion generators and P");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << v;
    return os.str();
  };
  const long trials = 100000;

  std::cout << "16-bit ripple adder, C = 1 iff no propagate run >= maxRun:\n";
  core::TextTable addT({"maxRun", "SD bound", "P uniform", "P low-mag",
                        "P small-delta", "false completions"});
  for (int maxRun : {2, 4, 6, 8, 12, 16}) {
    bitlevel::AdderCompletionGenerator gen(16, maxRun);
    auto u = measureAdderP(gen, OperandDistribution::Uniform, trials);
    auto l = measureAdderP(gen, OperandDistribution::LowMagnitude, trials);
    auto d = measureAdderP(gen, OperandDistribution::SmallDelta, trials);
    addT.addRow({std::to_string(maxRun), std::to_string(gen.shortDelayBound()),
                 fmt(u.p), fmt(l.p), fmt(d.p),
                 std::to_string(u.falseCompletions + l.falseCompletions +
                                d.falseCompletions)});
  }
  std::cout << addT.toString() << "\n";

  std::cout << "16-bit array multiplier, C = 1 iff msb(a)+msb(b) <= budget:\n";
  core::TextTable mulT({"budget", "SD bound", "P uniform", "P low-mag",
                        "P small-delta", "false completions"});
  for (int budget : {8, 12, 16, 20, 24, 28}) {
    bitlevel::MultiplierCompletionGenerator gen(16, budget);
    auto u = measureMultiplierP(gen, OperandDistribution::Uniform, trials);
    auto l = measureMultiplierP(gen, OperandDistribution::LowMagnitude, trials);
    auto d = measureMultiplierP(gen, OperandDistribution::SmallDelta, trials);
    mulT.addRow({std::to_string(budget), std::to_string(gen.shortDelayBound()),
                 fmt(u.p), fmt(l.p), fmt(d.p),
                 std::to_string(u.falseCompletions + l.falseCompletions +
                                d.falseCompletions)});
  }
  std::cout << mulT.toString() << "\n";
  std::cout << "Shape: P rises monotonically with the SD bound; realistic "
               "(low-magnitude) data reaches the paper's P = 0.5..0.9 regime "
               "at SD/LD ratios near the paper's 15/20 ns.\n";
  return 0;
}
