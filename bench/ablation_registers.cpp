// Ablation I -- datapath register cost of variable-latency control.
//
// The distributed controllers make start times operand-dependent, so
// register sharing must assume conservative lifetimes (earliest write,
// latest read); the synchronized baseline has deterministic worst-case step
// timing.  This bench quantifies the resulting register counts (left-edge
// allocation, optimal on intervals) -- a datapath-side cost of the paper's
// scheme that Table 1 (controller-only area) does not show.
#include "bench_util.hpp"
#include "regalloc/leftedge.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation I -- register allocation: distributed vs "
                "synchronized lifetimes");

  core::TextTable t({"DFG", "values", "regs DIST (conservative)",
                     "regs CENT-SYNC", "no sharing"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    const auto distLts = regalloc::distributedLifetimes(s);
    const auto syncLts = regalloc::syncLifetimes(s);
    const auto dist = regalloc::leftEdgeRegisters(distLts, s.graph.numNodes());
    const auto sync = regalloc::leftEdgeRegisters(syncLts, s.graph.numNodes());
    t.addRow({b.name, std::to_string(s.graph.numNodes()),
              std::to_string(dist.numRegisters),
              std::to_string(sync.numRegisters),
              std::to_string(s.graph.numNodes())});
  }
  std::cout << t.toString();
  std::cout << "\nShape: conservative (variable-latency) lifetimes cost a few "
               "registers over the deterministic synchronized schedule -- a "
               "modest datapath overhead next to the latency win of Table 2; "
               "both are far below the one-register-per-value baseline.\n";
  return 0;
}
