// Ablation E -- streaming throughput.  The wrapped controllers (S_{n+1} =
// S_0) pipeline consecutive DFG iterations; this bench measures the average
// initiation interval over 64 iterations against the single-iteration
// latency, for both P = 0.9 and P = 0.5, on every Table 2 benchmark.
// (Upper-bound analysis; see sim/streaming.hpp for the latch-renewal caveat.)
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "sim/stats.hpp"
#include "sim/streaming.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation E -- streaming: initiation interval vs latency");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "P", "latency (cyc)", "II (cyc)", "overlap gain"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    for (double p : {0.9, 0.5}) {
      const double latency =
          sim::averageCyclesExact(s, sim::ControlStyle::Distributed, p);
      const sim::StreamingResult r = sim::streamingMakespanRandom(s, 64, p, 7);
      std::ostringstream ps;
      ps << std::fixed << std::setprecision(1) << p;
      t.addRow({b.name, ps.str(), fmt(latency),
                fmt(r.avgInitiationInterval),
                fmt((latency - r.avgInitiationInterval) / latency * 100.0) +
                    "%"});
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape: benchmarks whose units are unevenly loaded (FIR/IIR "
               "adder chains) overlap iterations substantially; balanced "
               "designs (AR-lattice) gain less.\n";
  return 0;
}
