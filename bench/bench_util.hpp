// Shared helpers for the bench binaries (paper-table regeneration harness).
#pragma once

#include <iostream>
#include <string>

#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"

namespace tauhls::bench {

inline void banner(const std::string& title) {
  std::cout << "\n================================================================\n"
            << title
            << "\n================================================================\n\n";
}

/// The paper's Table 2 reference numbers (ns), for side-by-side printing.
struct PaperTable2Ref {
  const char* name;
  double tauBest, tauP9, tauP7, tauP5, tauWorst;
  double distBest, distP9, distP7, distP5, distWorst;
};

inline const PaperTable2Ref kPaperTable2[] = {
    {"3rd FIR", 45, 49.4, 57.1, 63.7, 75, 45, 49.2, 56.2, 61.8, 75},
    {"5th FIR", 75, 81.9, 92.5, 99.4, 105, 75, 77.9, 82.7, 86.3, 90},
    {"2nd IIR", 75, 80.7, 90.3, 97.5, 105, 75, 77.9, 82.7, 86.3, 90},
    {"3rd IIR", 75, 83.1, 94.7, 101.3, 135, 75, 80.6, 89.3, 95.9, 135},
    {"Diff.", 60, 68.6, 82.9, 93.8, 105, 60, 68.1, 80.7, 90.6, 105},
    {"AR-lattice", 120, 140.6, 165.6, 176.3, 180, 120, 134.2, 150.8, 160.2, 165},
};

}  // namespace tauhls::bench
