// Ablation J -- frontend cleanup (CSE + dead-op elimination) before the
// flow.  The HAL Diff. benchmark computes u*dx twice; Table 2's numbers keep
// the duplication (as the paper's sources did).  This bench quantifies what
// the paper-era flow leaves on the table: op counts and latencies with and
// without tidy().
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "dfg/transform.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation J -- DFG cleanup (CSE + DCE) before scheduling");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "ops", "ops (tidy)", "merged", "LT_DIST P=.7",
                     "LT_DIST P=.7 (tidy)", "gain"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    dfg::TransformReport report;
    dfg::Dfg optimized = dfg::tidy(b.graph, &report);

    core::FlowConfig cfg;
    cfg.allocation = b.allocation;
    cfg.ps = {0.7};
    cfg.synthesizeArea = false;
    const core::FlowResult before = core::runFlow(b.graph, cfg);
    const core::FlowResult after = core::runFlow(optimized, cfg);
    const double lt0 = before.latency.dist.averageNs[0];
    const double lt1 = after.latency.dist.averageNs[0];
    t.addRow({b.name, std::to_string(b.graph.numOps()),
              std::to_string(optimized.numOps()),
              std::to_string(report.mergedOps), fmt(lt0), fmt(lt1),
              fmt((lt0 - lt1) / lt0 * 100.0) + "%"});
  }
  std::cout << t.toString();
  std::cout << "\nShape: only Diff. carries redundancy (the duplicated u*dx "
               "multiplication); removing it trims one multiplier slot's "
               "work and the average latency accordingly.  The Table 2 "
               "reproduction keeps the original graphs.\n";
  return 0;
}
