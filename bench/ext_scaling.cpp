// Extension bench: scaling beyond the paper's six DFGs.
//
// Runs the full flow on progressively larger kernels (FIR sweep, EWF, FFT,
// 8-point DCT) and reports latency enhancement and distributed-control cost
// (controllers / FFs incl. completion latches) -- how the paper's scheme
// behaves as designs grow past its original evaluation.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"

int main() {
  using namespace tauhls;
  using RC = dfg::ResourceClass;
  bench::banner("Extension -- scaling study on larger kernels");

  struct Entry {
    dfg::Dfg graph;
    sched::Allocation alloc;
  };
  std::vector<Entry> entries;
  entries.push_back({dfg::fir(4), {{RC::Multiplier, 2}, {RC::Adder, 1}}});
  entries.push_back({dfg::fir(8), {{RC::Multiplier, 2}, {RC::Adder, 1}}});
  entries.push_back({dfg::fir(12), {{RC::Multiplier, 3}, {RC::Adder, 2}}});
  entries.push_back({dfg::ewf(), {{RC::Multiplier, 2}, {RC::Adder, 3}}});
  entries.push_back({dfg::fft(3),
                     {{RC::Multiplier, 3}, {RC::Adder, 2}, {RC::Subtractor, 2}}});
  entries.push_back({dfg::dct8(),
                     {{RC::Multiplier, 3}, {RC::Adder, 2}, {RC::Subtractor, 2}}});

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "ops", "alloc", "LT_TAU P=.7 (ns)",
                     "LT_DIST P=.7 (ns)", "enh", "ctrls", "FFs+latches"});
  // The six kernels are independent design points; fan them out over the
  // pool and print in entry order.
  std::vector<core::FlowResult> results(entries.size());
  common::parallelFor(entries.size(), [&](std::size_t i) {
    core::FlowConfig cfg;
    cfg.allocation = entries[i].alloc;
    cfg.ps = {0.7};
    cfg.synthesizeArea = false;
    results[i] = core::runFlow(entries[i].graph, cfg);
  });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Entry& e = entries[i];
    const core::FlowResult& r = results[i];
    int ffs = r.distributed.totalFlipFlops() +
              r.distributed.completionLatchCount();
    t.addRow({e.graph.name(), std::to_string(e.graph.numOps()),
              core::formatAllocation(r.scheduled),
              fmt(r.latency.tau.averageNs[0]), fmt(r.latency.dist.averageNs[0]),
              fmt(r.latency.enhancementPercent[0]) + "%",
              std::to_string(r.distributed.controllers.size()),
              std::to_string(ffs)});
  }
  std::cout << t.toString();
  std::cout << "\nShape: enhancement keeps growing with depth and multiplier "
               "pressure; controller cost grows with the *allocation*, not "
               "the op count -- the property that distinguishes the paper's "
               "per-unit distribution from per-operation control.\n";
  return 0;
}
