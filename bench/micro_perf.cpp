// google-benchmark micro suite: hot paths of the tool itself (makespan
// evaluation, exact latency statistics, controller generation, product
// construction, logic minimization), so tool performance regressions are
// visible alongside the paper-table benches.
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "logic/minimize.hpp"
#include "sim/interp.hpp"
#include "sim/stats.hpp"
#include "synth/extract.hpp"

namespace {

using namespace tauhls;

sched::ScheduledDfg diffeqScheduled() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                {{dfg::ResourceClass::Multiplier, 2},
                                 {dfg::ResourceClass::Adder, 1},
                                 {dfg::ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

void BM_DistributedMakespan(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const sim::MakespanEngine engine(s);
  const auto classes = sim::randomClasses(s, 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distributedCycles(classes));
  }
}
BENCHMARK(BM_DistributedMakespan);

void BM_ExactAverageDiffeq(benchmark::State& state) {
  const auto s = diffeqScheduled();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, sim::ControlStyle::Distributed, 0.5));
  }
}
BENCHMARK(BM_ExactAverageDiffeq);

void BM_ExactAverageArLattice(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, sim::ControlStyle::Distributed, 0.5));
  }
}
BENCHMARK(BM_ExactAverageArLattice)->Unit(benchmark::kMillisecond);

// The parallel experiment engine on the exact-enumeration hot path: the same
// AR-lattice sweep as BM_ExactAverageArLattice, at 1/2/4/8 worker threads
// (Arg).  Thread-count-independent bit-identical results are asserted by
// tests/test_parallel.cpp; this measures the speedup.
void BM_ParallelExactAverage(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  const sim::MakespanEngine engine(s);
  common::setGlobalThreadCount(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed, 0.5));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_ParallelExactAverage)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BuildDistributed(benchmark::State& state) {
  const auto s = diffeqScheduled();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::buildDistributed(s));
  }
}
BENCHMARK(BM_BuildDistributed);

void BM_BuildProduct(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto dcu = fsm::buildDistributed(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::buildProduct(dcu));
  }
}
BENCHMARK(BM_BuildProduct)->Unit(benchmark::kMillisecond);

void BM_FsmInterpreter(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto dcu = fsm::buildDistributed(s);
  const auto classes = sim::randomClasses(s, 0.5, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runDistributed(dcu, s, classes));
  }
}
BENCHMARK(BM_FsmInterpreter);

void BM_SynthesizeCentSync(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto sync = fsm::buildCentSync(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize(sync));
  }
}
BENCHMARK(BM_SynthesizeCentSync);

void BM_QmMinimize10Var(benchmark::State& state) {
  logic::TruthTable tt(10);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    tt.set(r, (x & 3) == 0   ? logic::Ternary::One
              : (x & 3) == 1 ? logic::Ternary::DontCare
                             : logic::Ternary::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::minimizeExact(tt));
  }
  state.SetLabel("random 10-var, 1/4 onset, 1/4 dc");
}
BENCHMARK(BM_QmMinimize10Var)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
