// google-benchmark micro suite: hot paths of the tool itself (makespan
// evaluation, exact latency statistics, controller generation, product
// construction, logic minimization), so tool performance regressions are
// visible alongside the paper-table benches.
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "logic/minimize.hpp"
#include "sim/interp.hpp"
#include "sim/stats.hpp"
#include "synth/extract.hpp"

namespace {

using namespace tauhls;

sched::ScheduledDfg diffeqScheduled() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                {{dfg::ResourceClass::Multiplier, 2},
                                 {dfg::ResourceClass::Adder, 1},
                                 {dfg::ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

void BM_DistributedMakespan(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const sim::MakespanEngine engine(s);
  const auto classes = sim::randomClasses(s, 0.5, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.distributedCycles(classes));
  }
}
BENCHMARK(BM_DistributedMakespan);

void BM_ExactAverageDiffeq(benchmark::State& state) {
  const auto s = diffeqScheduled();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, sim::ControlStyle::Distributed, 0.5));
  }
}
BENCHMARK(BM_ExactAverageDiffeq);

void BM_ExactAverageArLattice(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, sim::ControlStyle::Distributed, 0.5));
  }
}
BENCHMARK(BM_ExactAverageArLattice)->Unit(benchmark::kMillisecond);

// The parallel experiment engine on the exact-enumeration hot path: the same
// AR-lattice sweep as BM_ExactAverageArLattice, at 1/2/4/8 worker threads
// (Arg).  Thread-count-independent bit-identical results are asserted by
// tests/test_parallel.cpp; this measures the speedup.
void BM_ParallelExactAverage(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  const sim::MakespanEngine engine(s);
  common::setGlobalThreadCount(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed, 0.5));
  }
  state.SetLabel(std::to_string(state.range(0)) + " threads");
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_ParallelExactAverage)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

sched::ScheduledDfg fir5Scheduled() {
  return sched::scheduleAndBind(dfg::fir(5),
                                {{dfg::ResourceClass::Multiplier, 2},
                                 {dfg::ResourceClass::Adder, 1}},
                                tau::paperLibrary());
}

// Naive-vs-incremental pair on the 5th-order FIR exact sweep over Table 2's
// P column {0.9, 0.7, 0.5}, single thread: the brute-force reference
// re-evaluates every mask from scratch per P with per-mask pow() weights and
// a heap-allocated class vector; the production path enumerates the masks
// once by Gray-code delta propagation and reweights the shared buffer per P
// from the popcount weight table.  The ratio of these two is the
// single-thread algorithmic speedup of this kernel.
void BM_NaiveExactAverageFir5(benchmark::State& state) {
  const auto s = fir5Scheduled();
  const sim::MakespanEngine engine(s);
  common::setGlobalThreadCount(1);
  for (auto _ : state) {
    for (double p : {0.9, 0.7, 0.5}) {
      benchmark::DoNotOptimize(sim::averageCyclesExactReference(
          s, engine, sim::ControlStyle::Distributed, p));
    }
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_NaiveExactAverageFir5);

void BM_IncrementalExactAverageFir5(benchmark::State& state) {
  const auto s = fir5Scheduled();
  const sim::MakespanEngine engine(s);
  const std::vector<double> ps = {0.9, 0.7, 0.5};
  common::setGlobalThreadCount(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::averageCyclesExactSweep(
        s, engine, sim::ControlStyle::Distributed, ps));
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_IncrementalExactAverageFir5);

// The same pair on the AR lattice (16 TAU ops, the heaviest Table 2 entry);
// BM_IncrementalExactAverage is the headline number EXPERIMENTS.md tracks.
void BM_NaiveExactAverage(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  const sim::MakespanEngine engine(s);
  common::setGlobalThreadCount(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::averageCyclesExactReference(
        s, engine, sim::ControlStyle::Distributed, 0.5));
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_NaiveExactAverage)->Unit(benchmark::kMillisecond);

void BM_IncrementalExactAverage(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  const sim::MakespanEngine engine(s);
  common::setGlobalThreadCount(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::averageCyclesExact(
        s, engine, sim::ControlStyle::Distributed, 0.5));
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
}
BENCHMARK(BM_IncrementalExactAverage)->Unit(benchmark::kMillisecond);

// Closed-form CentSync expectation: O(steps), so this stays flat no matter
// how many TAU ops the design has (the enumerated version was O(2^n)).
void BM_ClosedFormSyncAverage(benchmark::State& state) {
  const auto s = sched::scheduleAndBind(dfg::arLattice(),
                                        {{dfg::ResourceClass::Multiplier, 4},
                                         {dfg::ResourceClass::Adder, 2}},
                                        tau::paperLibrary());
  const sim::MakespanEngine engine(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::averageCyclesExact(s, engine, sim::ControlStyle::CentSync, 0.5));
  }
}
BENCHMARK(BM_ClosedFormSyncAverage);

void BM_BuildDistributed(benchmark::State& state) {
  const auto s = diffeqScheduled();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::buildDistributed(s));
  }
}
BENCHMARK(BM_BuildDistributed);

void BM_BuildProduct(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto dcu = fsm::buildDistributed(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fsm::buildProduct(dcu));
  }
}
BENCHMARK(BM_BuildProduct)->Unit(benchmark::kMillisecond);

void BM_FsmInterpreter(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto dcu = fsm::buildDistributed(s);
  const auto classes = sim::randomClasses(s, 0.5, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::runDistributed(dcu, s, classes));
  }
}
BENCHMARK(BM_FsmInterpreter);

void BM_SynthesizeCentSync(benchmark::State& state) {
  const auto s = diffeqScheduled();
  const auto sync = fsm::buildCentSync(s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize(sync));
  }
}
BENCHMARK(BM_SynthesizeCentSync);

void BM_QmMinimize10Var(benchmark::State& state) {
  logic::TruthTable tt(10);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    tt.set(r, (x & 3) == 0   ? logic::Ternary::One
              : (x & 3) == 1 ? logic::Ternary::DontCare
                             : logic::Ternary::Zero);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::minimizeExact(tt));
  }
  state.SetLabel("random 10-var, 1/4 onset, 1/4 dc");
}
BENCHMARK(BM_QmMinimize10Var)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
