// X-safety speed trajectory -- the per-PR tracked benchmark for the ternary
// reset-robustness checker and the don't-care soundness checker over the
// Table 2 suite under both state encodings:
//
//   xprop   bit-parallel ternary evaluation of the controller-network model
//           from every power-on state through the reset protocol, plus the
//           ternary vsim replay of the emitted RTL (verify::checkXprop,
//           XPR001/XPR002).
//   dcs     per-controller care-set equivalence and BMC + k-induction
//           don't-care reachability (verify::checkDcs, DCS001-DCS003).
//
// and emits BENCH_xcheck.json:
//
//   "structural"  deterministic, machine-independent facts: per benchmark
//                 and encoding the controller count, model register count,
//                 proven reset depth, power-on instance count, ternary gate
//                 evaluations, every rule's verdict, and the don't-care
//                 exploitation counts.  CI diffs them against
//                 bench/baselines/BENCH_xcheck.json via
//                 tools/compare_bench.py and fails on drift.
//   "timingsMs"   wall-clock per benchmark and checker plus the totals.
//                 Machine dependent; reported informationally.
//
// The bench self-checks that every rule on every benchmark is PROVED under
// both encodings and that no diagnostic escalates past info; any violation
// exits non-zero -- an X that survives reset on a clean paper benchmark is a
// bug, not a trade-off.
//
//   xcheck_speed [--json FILE]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "verify/dcs_check.hpp"
#include "verify/xprop_check.hpp"

namespace {

using namespace tauhls;

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string jsonNumber(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

struct Run {
  std::string bench;
  std::string encoding;
  verify::XpropStats xprop;
  verify::DcsStats dcs;
  bool clean = false;
  double xpropMs = 0.0;
  double dcsMs = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_xcheck.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: xcheck_speed [--json FILE]\n";
      return 2;
    }
  }

  bench::banner("X-safety speed (ternary reset proof + don't-care soundness)");

  const auto suite = dfg::paperTable2Suite();
  bool ok = true;
  std::vector<Run> runs;
  double xpropTotalMs = 0.0;
  double dcsTotalMs = 0.0;

  for (const dfg::NamedBenchmark& b : suite) {
    core::FlowConfig cfg;
    cfg.allocation = b.allocation;
    core::FlowPipeline pipeline(b.graph, cfg);
    const auto dcu = pipeline.get<fsm::DistributedControlUnit>(
        core::Artifact::Distributed);

    for (const synth::EncodingStyle style :
         {synth::EncodingStyle::Binary, synth::EncodingStyle::OneHot}) {
      Run run;
      run.bench = b.name;
      run.encoding = style == synth::EncodingStyle::OneHot ? "onehot" : "binary";
      const std::string artifact = "dcu " + b.graph.name();

      verify::XprOptions xo;
      xo.style = style;
      verify::Report report;
      auto t0 = std::chrono::steady_clock::now();
      run.xprop = verify::checkXprop(dcu, artifact, report, xo);
      run.xpropMs = wallMs(t0);
      xpropTotalMs += run.xpropMs;

      verify::DcsOptions dco;
      dco.style = style;
      t0 = std::chrono::steady_clock::now();
      run.dcs = verify::checkDcs(dcu, artifact, report, dco);
      run.dcsMs = wallMs(t0);
      dcsTotalMs += run.dcsMs;

      run.clean = !report.hasErrors();
      if (!run.clean) {
        std::cerr << "FAIL: " << b.name << " (" << run.encoding
                  << ") has X-safety errors\n"
                  << verify::renderText(report);
        ok = false;
      }
      for (const verify::XpropPropertyStat& p : run.xprop.properties) {
        if (p.verdict != "PROVED") {
          std::cerr << "FAIL: " << b.name << " (" << run.encoding << ") "
                    << p.rule << " is " << p.verdict << "\n";
          ok = false;
        }
      }
      for (const verify::XpropPropertyStat& p : run.dcs.properties) {
        if (p.verdict != "PROVED") {
          std::cerr << "FAIL: " << b.name << " (" << run.encoding << ") "
                    << p.rule << " is " << p.verdict << "\n";
          ok = false;
        }
      }

      std::cout << std::left << std::setw(12) << b.name << " " << std::setw(7)
                << run.encoding << " " << run.xprop.controllers
                << " controllers, "
                << (run.xprop.stateBits + run.xprop.latchBits)
                << " registers, reset depth " << run.xprop.resetDepth << ", "
                << run.xprop.gateEvals << " gate evals; xprop "
                << jsonNumber(run.xpropMs) << " ms, dcs "
                << jsonNumber(run.dcsMs) << " ms\n";
      runs.push_back(std::move(run));
    }
  }
  std::cout << "total: xprop " << jsonNumber(xpropTotalMs) << " ms, dcs "
            << jsonNumber(dcsTotalMs) << " ms\n";
  std::cout << "X-safety: " << (ok ? "OK" : "FAILED") << "\n";

  std::ostringstream js;
  js << "{\"schema\":\"tauhls-bench-xcheck\",\"version\":1,"
     << "\"structural\":{"
     << "\"benchmarks\":" << suite.size() << ",\"runs\":" << runs.size()
     << ",\"allProved\":" << (ok ? 1 : 0) << ",\"perRun\":{";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& r = runs[i];
    if (i) js << ",";
    js << "\"" << r.bench << " " << r.encoding << "\":{"
       << "\"controllers\":" << r.xprop.controllers
       << ",\"registers\":" << (r.xprop.stateBits + r.xprop.latchBits)
       << ",\"resetDepth\":" << r.xprop.resetDepth
       << ",\"instances\":" << r.xprop.instances
       << ",\"gateEvals\":" << r.xprop.gateEvals
       << ",\"functionsChecked\":" << r.dcs.functionsChecked
       << ",\"dcFunctions\":" << r.dcs.dcFunctions << ",\"rules\":{";
    bool first = true;
    for (const auto* props : {&r.xprop.properties, &r.dcs.properties}) {
      for (const verify::XpropPropertyStat& p : *props) {
        if (!first) js << ",";
        first = false;
        js << "\"" << p.rule << "\":{\"verdict\":\"" << p.verdict
           << "\",\"depth\":" << p.depth << "}";
      }
    }
    js << "}}";
  }
  js << "}},\"timingsMs\":{\"xpropTotal\":" << jsonNumber(xpropTotalMs)
     << ",\"dcsTotal\":" << jsonNumber(dcsTotalMs) << ",\"perRun\":{";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i) js << ",";
    js << "\"" << runs[i].bench << " " << runs[i].encoding
       << "\":{\"xprop\":" << jsonNumber(runs[i].xpropMs)
       << ",\"dcs\":" << jsonNumber(runs[i].dcsMs) << "}";
  }
  js << "}}}";

  std::ofstream out(jsonPath, std::ios::trunc);
  out << js.str() << "\n";
  if (!out) {
    std::cerr << "cannot write " << jsonPath << "\n";
    return 1;
  }
  std::cout << "wrote " << jsonPath << "\n";
  return ok ? 0 : 1;
}
