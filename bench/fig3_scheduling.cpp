// Figure 3 walkthrough: dependency-graph clique (chain) cover of the
// multiplications, schedule-arc insertion down to the allocation, and the
// final scheduled DFG with its binding.
#include "bench_util.hpp"
#include "sched/clique.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Fig. 3 -- clique cover and schedule-arc insertion");

  dfg::Dfg g = dfg::paperFig3();
  std::cout << "Multiplication dependency chains before arc insertion "
               "(Fig. 3(b) solid edges):\n";
  for (const auto& chain :
       sched::minChainCover(g, dfg::ResourceClass::Multiplier)) {
    std::cout << "  clique: ";
    for (dfg::NodeId v : chain) std::cout << g.node(v).name << " ";
    std::cout << "\n";
  }
  std::cout << "=> minimum TAU-multipliers without arcs: "
            << sched::minChainCover(g, dfg::ResourceClass::Multiplier).size()
            << " (the paper: 'at least three TAU-multipliers are required')\n\n";

  const sched::Allocation alloc{{dfg::ResourceClass::Multiplier, 2},
                                {dfg::ResourceClass::Adder, 2}};
  sched::Binding b = sched::cliqueSchedule(g, alloc, dfg::unitDurations(g));

  std::cout << "Inserted schedule arcs (Fig. 3(b) dotted edges / Fig. 3(c)):\n";
  for (const dfg::ScheduleArc& a : g.scheduleArcs()) {
    std::cout << "  " << g.node(a.from).name << " -> " << g.node(a.to).name
              << "\n";
  }
  std::cout << "\nFinal binding (paper: (O0,O1), (O6,O4,O8), (O3,O2), "
               "(O7,O5)):\n";
  for (std::size_t u = 0; u < b.numUnits(); ++u) {
    std::cout << "  " << b.unit(static_cast<int>(u)).name << ": (";
    const auto& seq = b.sequenceOf(static_cast<int>(u));
    for (std::size_t i = 0; i < seq.size(); ++i) {
      std::cout << (i ? ", " : "") << g.node(seq[i]).name;
    }
    std::cout << ")\n";
  }
  std::cout << "\nRemaining multiplication chains: "
            << sched::minChainCover(g, dfg::ResourceClass::Multiplier).size()
            << " (= allocated units)\n";
  return 0;
}
