// Figure 4: with n TAUs active in one time step, the concurrency-preserving
// centralized FSM (CENT-FSM, Fig. 4(a)) needs 2^n next-state choices per
// state and its reachable state space grows exponentially, while the
// synchronized machine (Fig. 4(b)) stays constant and the distributed
// controllers grow linearly.  This bench sweeps n and prints all three.
#include "bench_util.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"

namespace {

tauhls::dfg::Dfg parallelTaus(int n) {
  tauhls::dfg::Dfg g("par" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    auto a = g.addInput("a" + std::to_string(i));
    auto b = g.addInput("b" + std::to_string(i));
    g.markOutput(g.addOp(tauhls::dfg::OpKind::Mul, {a, b},
                         "m" + std::to_string(i)));
  }
  return g;
}

}  // namespace

int main() {
  using namespace tauhls;
  bench::banner("Fig. 4 -- state growth with n concurrent TAUs in one step");

  core::TextTable t({"n TAUs", "CENT-FSM states", "CENT-SYNC states",
                     "DIST states (sum)", "DIST FFs", "CENT-FSM FFs"});
  for (int n = 1; n <= 6; ++n) {
    const dfg::Dfg g = parallelTaus(n);
    auto s = sched::scheduleAndBind(
        g, {{dfg::ResourceClass::Multiplier, n}}, tau::paperLibrary());
    fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
    fsm::Fsm sync = fsm::buildCentSync(s);
    fsm::Fsm product = fsm::buildProduct(dcu);
    t.addRow({std::to_string(n), std::to_string(product.numStates()),
              std::to_string(sync.numStates()),
              std::to_string(dcu.totalStates()),
              std::to_string(dcu.totalFlipFlops()),
              std::to_string(product.flipFlopCount())});
  }
  std::cout << t.toString();
  std::cout << "\nShape: CENT-FSM = 2^n (exponential), CENT-SYNC = 2 "
               "(constant, but synchronizing), DIST = 2n (linear, "
               "concurrency-preserving).\n";
  return 0;
}
