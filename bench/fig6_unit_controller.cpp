// Figure 6: the Algorithm-1 FSM of the TAU multiplier bound with (O0, O1)
// for the Fig. 3(c) scheduled DFG -- five states S0 S0' S1 S1' R1, with O1
// guarded by the completion signal of its cross-unit predecessor O3.
#include "bench_util.hpp"
#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Fig. 6 -- arithmetic-unit controller FSM (Algorithm 1)");

  dfg::Dfg g = dfg::paperFig3();
  auto s = sched::scheduleAndBind(
      g,
      {{dfg::ResourceClass::Multiplier, 2}, {dfg::ResourceClass::Adder, 2}},
      tau::paperLibrary(), sched::BindingStrategy::CliqueCover);
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);

  for (const fsm::UnitController& c : dcu.controllers) {
    std::cout << "--- " << c.fsm.name() << " (ops:";
    for (dfg::NodeId v : c.ops) std::cout << " " << s.graph.node(v).name;
    std::cout << ") ---\n" << describe(c.fsm) << "\n";
  }
  std::cout << "Paper cross-check (Fig. 6, controller of (O0, O1)):\n"
               "  - five states S0 S0' S1 S1' R1;\n"
               "  - O0 starts immediately (no predecessors);\n"
               "  - transitions toward O1 read C_PO(3) = CCO_O3;\n"
               "  - completing transitions emit OF/RE/CCO of the finishing op.\n";
  return 0;
}
