// Model-check speed trajectory -- the per-PR tracked benchmark for the two
// controller verification engines over the Table 2 suite:
//
//   explicit   the enumerative product exploration (verify::modelCheckControllers,
//              MDL001-MDL007): one-shot rewrite, reachable product BFS, and the
//              phi-potential event analysis, with the default 200000-state bound.
//   symbolic   BMC + k-induction over the AIG transition relation
//              (verify::symbolicModelCheck, MDL001-MDL006 + MDL008): the engine
//              that retires MDL007 -- its verdicts do not depend on a state bound.
//
// and emits BENCH_modelcheck.json:
//
//   "structural"  deterministic, machine-independent facts: per benchmark the
//                 controller count, symbolic state-bit and template-AIG sizes,
//                 every property's verdict with the BMC depth and induction k
//                 that closed it, and the engine-agreement bit.  CI diffs them
//                 against bench/baselines/BENCH_modelcheck.json via
//                 tools/compare_bench.py and fails on drift.
//   "timingsMs"   wall-clock per benchmark and engine plus the totals.
//                 Machine dependent; reported informationally.
//
// The bench self-checks engine agreement (diagnostic codes equal once the
// bound warning MDL007 and the symbolic summary MDL008 are excluded), that
// every property on every clean benchmark is PROVED by k-induction with
// k >= 1, and that the strengthening invariant base-checks; any violation
// exits non-zero -- a symbolic engine that disagrees with the enumerative
// one is a bug, not a trade-off.
//
//   model_check_speed [--json FILE]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"
#include "verify/model_check.hpp"
#include "verify/symbolic_check.hpp"

namespace {

using namespace tauhls;

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string jsonNumber(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

/// Diagnostic codes both engines must agree on: everything except the
/// explicit engine's bound warning and the symbolic engine's summary line.
std::multiset<std::string> comparableCodes(const verify::Report& report) {
  std::multiset<std::string> out;
  for (const auto& d : report.diagnostics()) {
    if (d.code != "MDL007" && d.code != "MDL008") out.insert(d.code);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_modelcheck.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: model_check_speed [--json FILE]\n";
      return 2;
    }
  }

  bench::banner("Model-check speed (explicit enumeration vs BMC + k-induction)");

  const auto suite = dfg::paperTable2Suite();
  bool ok = true;

  // Build the inputs untimed: both engines consume the same artifacts.
  std::vector<sched::ScheduledDfg> schedules;
  std::vector<fsm::DistributedControlUnit> dcus;
  std::vector<fsm::Fsm> centSyncs;
  for (const dfg::NamedBenchmark& b : suite) {
    core::FlowConfig cfg;
    cfg.allocation = b.allocation;
    core::FlowPipeline pipeline(b.graph, cfg);
    schedules.push_back(
        pipeline.get<sched::ScheduledDfg>(core::Artifact::Schedule));
    dcus.push_back(pipeline.get<fsm::DistributedControlUnit>(
        core::Artifact::Distributed));
    centSyncs.push_back(pipeline.get<fsm::Fsm>(core::Artifact::CentSync));
  }

  std::vector<verify::Report> explicitReports(suite.size());
  std::vector<double> explicitMs(suite.size());
  double explicitTotalMs = 0.0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    verify::modelCheckControllers(dcus[i], schedules[i], centSyncs[i],
                                  explicitReports[i]);
    explicitMs[i] = wallMs(t0);
    explicitTotalMs += explicitMs[i];
  }

  std::vector<verify::SymbolicArtifact> symbolic(suite.size());
  std::vector<double> symbolicMs(suite.size());
  double symbolicTotalMs = 0.0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    symbolic[i] = verify::symbolicModelCheck(dcus[i], schedules[i],
                                             &centSyncs[i]);
    symbolicMs[i] = wallMs(t0);
    symbolicTotalMs += symbolicMs[i];
  }

  std::uint64_t totalConflicts = 0;
  std::uint64_t totalQueries = 0;
  std::size_t totalProved = 0;
  std::size_t totalProperties = 0;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const verify::SymbolicStats& stats = symbolic[i].stats;
    if (comparableCodes(explicitReports[i]) !=
        comparableCodes(symbolic[i].report)) {
      std::cerr << "FAIL: engines disagree on " << suite[i].name << "\n";
      ok = false;
    }
    if (!stats.invariantHolds) {
      std::cerr << "FAIL: strengthening invariant base check failed on "
                << suite[i].name << "\n";
      ok = false;
    }
    std::size_t proved = 0;
    for (const verify::SymbolicProperty& p : stats.properties) {
      ++totalProperties;
      totalConflicts += p.cost.conflicts;
      totalQueries += p.cost.queries;
      if (p.verdict == verify::PropertyVerdict::Proved) {
        ++proved;
        if (p.inductionK < 1) {
          std::cerr << "FAIL: " << suite[i].name << " " << p.rule
                    << " proved with induction k < 1\n";
          ok = false;
        }
      } else {
        std::cerr << "FAIL: " << suite[i].name << " " << p.rule << " is "
                  << verify::propertyVerdictName(p.verdict)
                  << " on a clean benchmark\n";
        ok = false;
      }
    }
    totalProved += proved;
    std::cout << std::left << std::setw(12) << suite[i].name << " "
              << stats.controllers << " controllers, " << stats.stateBits
              << " state bits, " << proved << "/" << stats.properties.size()
              << " proved; explicit " << jsonNumber(explicitMs[i])
              << " ms, symbolic " << jsonNumber(symbolicMs[i]) << " ms\n";
  }
  std::cout << "total: explicit " << jsonNumber(explicitTotalMs)
            << " ms, symbolic " << jsonNumber(symbolicTotalMs) << " ms, "
            << totalProved << "/" << totalProperties << " properties proved, "
            << totalQueries << " SAT queries, " << totalConflicts
            << " conflicts\n";
  std::cout << "Engine agreement: " << (ok ? "OK" : "FAILED") << "\n";

  std::ostringstream js;
  js << "{\"schema\":\"tauhls-bench-modelcheck\",\"version\":1,"
     << "\"structural\":{"
     << "\"benchmarks\":" << suite.size()
     << ",\"propertiesProved\":" << totalProved
     << ",\"properties\":" << totalProperties
     << ",\"enginesAgree\":" << (ok ? 1 : 0) << ",\"perBenchmark\":{";
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const verify::SymbolicStats& stats = symbolic[i].stats;
    if (i) js << ",";
    js << "\"" << suite[i].name << "\":{"
       << "\"controllers\":" << stats.controllers
       << ",\"stateBits\":" << stats.stateBits
       << ",\"templateNodes\":" << stats.templateNodes
       << ",\"invariantHolds\":" << (stats.invariantHolds ? 1 : 0)
       << ",\"properties\":{";
    for (std::size_t j = 0; j < stats.properties.size(); ++j) {
      const verify::SymbolicProperty& p = stats.properties[j];
      if (j) js << ",";
      js << "\"" << p.rule << "\":{\"verdict\":\""
         << verify::propertyVerdictName(p.verdict)
         << "\",\"inductionK\":" << p.inductionK
         << ",\"depthReached\":" << p.depthReached << "}";
    }
    js << "}}";
  }
  js << "}},\"timingsMs\":{\"explicitTotal\":" << jsonNumber(explicitTotalMs)
     << ",\"symbolicTotal\":" << jsonNumber(symbolicTotalMs)
     << ",\"perBenchmark\":{";
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (i) js << ",";
    js << "\"" << suite[i].name << "\":{\"explicit\":"
       << jsonNumber(explicitMs[i])
       << ",\"symbolic\":" << jsonNumber(symbolicMs[i]) << "}";
  }
  js << "}}}";

  std::ofstream out(jsonPath, std::ios::trunc);
  out << js.str() << "\n";
  if (!out) {
    std::cerr << "cannot write " << jsonPath << "\n";
    return 1;
  }
  std::cout << "wrote " << jsonPath << "\n";
  return ok ? 0 : 1;
}
