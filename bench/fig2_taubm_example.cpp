// Figure 2 walkthrough: the running example DFG, its TAUBM DFG (split time
// steps) and the TAUBM FSM, with the 4..6-cycle latency range the paper
// quotes for Fig. 2(c).
#include "bench_util.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/machine.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Fig. 2 -- original DFG, TAUBM DFG, TAUBM FSM");

  const dfg::Dfg g = dfg::paperFig2();
  auto s = sched::scheduleAndBind(
      g,
      {{dfg::ResourceClass::Multiplier, 2}, {dfg::ResourceClass::Adder, 1}},
      tau::paperLibrary());

  std::cout << "TAUBM DFG time steps (split steps spend T_i' only when a TAU "
               "op misses SD):\n";
  core::TextTable t({"step", "ops", "TAU ops", "split"});
  for (const sched::TaubmStep& step : s.taubm.steps) {
    std::string ops;
    std::string taus;
    for (dfg::NodeId v : step.ops) ops += s.graph.node(v).name + " ";
    for (dfg::NodeId v : step.tauOps) taus += s.graph.node(v).name + " ";
    t.addRow({"T" + std::to_string(step.originalStep), ops, taus,
              step.split ? "yes (T')" : "no"});
  }
  std::cout << t.toString() << "\n";

  const fsm::Fsm taubm = fsm::buildCentSync(s);
  std::cout << "TAUBM FSM (Fig. 2(c)):\n" << describe(taubm) << "\n";

  std::cout << "Latency range: best "
            << sim::bestCaseCycles(s, sim::ControlStyle::CentSync)
            << " cycles, worst "
            << sim::worstCaseCycles(s, sim::ControlStyle::CentSync)
            << " cycles (the paper: 'varies between 4 and 6 clock cycles').\n";
  return 0;
}
