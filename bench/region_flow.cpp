// Hierarchical-regions flow trajectory -- the per-PR tracked benchmark for
// the composed path (loop x4 FIR accumulation -> IIR corrector -> conditional
// output scaling, dfg::firIirLoop).  For both binding strategies it
//
//   * schedules every leaf against the shared {x:2, +:1} allocation,
//   * builds the composed controllers (per-leaf Algorithm-1 networks plus
//     the region sequencer) and runs the full hierarchical flow,
//   * cross-checks the composed makespan law against the flat-inlined
//     unrolled reference: composedHistogram (per-leaf enumeration +
//     convolution) must equal makespanHistogram(flattenScheduled(...))
//     bucket-for-bucket, for both control styles and both branch choices.
//
// and emits BENCH_regions.json:
//
//   "structural"  deterministic, machine-independent facts: region/activation
//                 /sequencer-state counts, controller totals, the composed
//                 Table-2 cells (bit-identical doubles printed to 3 decimals)
//                 and the composed==flat identity bit per configuration.  CI
//                 diffs them against bench/baselines/BENCH_regions.json via
//                 tools/compare_bench.py and fails on drift.
//   "timingsMs"   wall clock per stage; machine dependent, informational.
//
// Any identity violation exits non-zero -- a composed simulation that
// disagrees with the flat reference is a bug, not a trade-off.
//
//   region_flow [--json FILE]
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/hier_flow.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/region.hpp"
#include "sched/region_schedule.hpp"
#include "sim/region_sim.hpp"

namespace {

using namespace tauhls;

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string num3(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

std::string latencyCells(const sim::LatencyRow& row) {
  std::ostringstream os;
  os << "{\"bestNs\":" << num3(row.bestNs) << ",\"averageNs\":[";
  for (std::size_t i = 0; i < row.averageNs.size(); ++i) {
    os << (i ? "," : "") << num3(row.averageNs[i]);
  }
  os << "],\"worstNs\":" << num3(row.worstNs) << "}";
  return os.str();
}

const char* strategyName(sched::BindingStrategy s) {
  return s == sched::BindingStrategy::LeftEdge ? "leftEdge" : "cliqueCover";
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_regions.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: region_flow [--json FILE]\n";
      return 2;
    }
  }

  bench::banner("Hierarchical regions flow (composed vs flat-inlined reference)");

  const dfg::RegionProgram program = dfg::firIirLoop();
  const dfg::Allocation alloc = dfg::firIirLoopAllocation();
  bool ok = true;

  std::ostringstream structural;
  std::ostringstream timings;
  structural << "\"benchmark\":\"fir_iir_loop\",\"perStrategy\":{";
  bool firstStrategy = true;

  double totalMs = 0.0;
  for (sched::BindingStrategy strategy :
       {sched::BindingStrategy::LeftEdge, sched::BindingStrategy::CliqueCover}) {
    core::FlowConfig cfg;
    cfg.allocation = alloc;
    cfg.strategy = strategy;
    cfg.synthesizeArea = false;

    const auto t0 = std::chrono::steady_clock::now();
    core::HierFlowResult r = core::runHierFlow(program, cfg);
    const double flowMs = wallMs(t0);

    // Composed == flat identity, over styles x branch choices.
    bool identical = true;
    const auto t1 = std::chrono::steady_clock::now();
    for (bool thenBranch : {true, false}) {
      const dfg::BranchChoices choices = {{"s3", thenBranch}};
      sched::ScheduledDfg flat = sched::flattenScheduled(r.schedule, choices);
      for (sim::ControlStyle style :
           {sim::ControlStyle::Distributed, sim::ControlStyle::CentSync}) {
        sim::MakespanHistogram composed =
            sim::composedHistogram(r.schedule, style, choices);
        sim::MakespanHistogram reference = sim::makespanHistogram(flat, style);
        if (composed.tauCount != reference.tauCount ||
            composed.buckets != reference.buckets) {
          identical = false;
          ok = false;
          std::cerr << "FAIL: composed histogram deviates from the flat "
                    << "reference (" << strategyName(strategy) << ", "
                    << (style == sim::ControlStyle::Distributed ? "dist"
                                                                : "centSync")
                    << ", " << (thenBranch ? "then" : "else") << ")\n";
        }
      }
    }
    const double identityMs = wallMs(t1);
    totalMs += flowMs + identityMs;

    std::cout << std::left << std::setw(12) << strategyName(strategy)
              << r.schedule.leaves.size() << " regions, " << r.activations.size()
              << " activations, " << r.control.sequencer.numStates()
              << " sequencer states, " << r.control.totalStates()
              << " total states, " << r.totalTauOps
              << " TAU ops on trace; composed==flat "
              << (identical ? "OK" : "FAILED") << "; flow "
              << num3(flowMs) << " ms, identity " << num3(identityMs)
              << " ms\n";
    std::cout << "  " << core::formatComposedTable2Row("fir_iir_loop", r);

    structural << (firstStrategy ? "" : ",") << "\""
               << strategyName(strategy) << "\":{"
               << "\"regions\":" << r.schedule.leaves.size()
               << ",\"activations\":" << r.activations.size()
               << ",\"sequencerStates\":" << r.control.sequencer.numStates()
               << ",\"totalStates\":" << r.control.totalStates()
               << ",\"totalFlipFlops\":" << r.control.totalFlipFlops()
               << ",\"completionLatches\":" << r.control.completionLatchCount()
               << ",\"tauOpsOnTrace\":" << r.totalTauOps
               << ",\"composedEqualsFlat\":" << (identical ? 1 : 0)
               << ",\"ltTau\":" << latencyCells(r.latency.tau)
               << ",\"ltDist\":" << latencyCells(r.latency.dist)
               << ",\"enhancementPercent\":[";
    for (std::size_t i = 0; i < r.latency.enhancementPercent.size(); ++i) {
      structural << (i ? "," : "") << num3(r.latency.enhancementPercent[i]);
    }
    structural << "]}";
    firstStrategy = false;

    timings << (strategy == sched::BindingStrategy::LeftEdge ? "" : ",")
            << "\"" << strategyName(strategy) << "\":{\"flow\":" << num3(flowMs)
            << ",\"identity\":" << num3(identityMs) << "}";
  }
  structural << "}";

  std::cout << "total: " << num3(totalMs) << " ms; identity "
            << (ok ? "OK" : "FAILED") << "\n";

  std::ostringstream js;
  js << "{\"schema\":\"tauhls-bench-regions\",\"version\":1,"
     << "\"structural\":{" << structural.str() << "},"
     << "\"timingsMs\":{" << timings.str() << ",\"total\":" << num3(totalMs)
     << "}}\n";
  std::ofstream out(jsonPath);
  out << js.str();
  std::cout << "wrote " << jsonPath << "\n";

  return ok ? 0 : 1;
}
