// Ablation B -- communication-signal optimization (paper Fig. 7 note).
// For every Table 2 benchmark: completion outputs before/after pruning,
// completion latches, and the combinational-area delta of the distributed
// control unit.
#include "bench_util.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"
#include "synth/area.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation B -- communication-signal optimization on/off");

  core::TextTable t({"DFG", "CCO outputs (raw)", "removed", "kept",
                     "latches", "Com. area raw", "Com. area opt", "saving"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    fsm::DistributedControlUnit raw = fsm::buildDistributed(s);
    fsm::SignalOptStats stats;
    fsm::DistributedControlUnit opt = fsm::optimizeSignals(raw, &stats);
    const synth::DistributedAreaReport rawArea = synth::distributedArea(raw);
    const synth::DistributedAreaReport optArea = synth::distributedArea(opt);
    const int saving = rawArea.total.combArea - optArea.total.combArea;
    t.addRow({b.name, std::to_string(stats.removedOutputs + stats.keptOutputs),
              std::to_string(stats.removedOutputs),
              std::to_string(stats.keptOutputs),
              std::to_string(opt.completionLatchCount()),
              std::to_string(rawArea.total.combArea),
              std::to_string(optArea.total.combArea),
              std::to_string(saving)});
  }
  std::cout << t.toString();
  std::cout << "\nShape: every benchmark sheds unconsumed completion outputs "
               "(output sinks and same-unit chains never export CCO); the "
               "consumed subset and all latches are untouched, so behaviour "
               "is identical (tested by SignalOpt.ProductUnaffected...).\n";
  return 0;
}
