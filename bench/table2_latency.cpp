// Regenerates the paper's Table 2: latency comparison between the expanded
// TAUBM FSMs (LT_TAU, synchronized) and the distributed FSMs (LT_DIST) for
// the six benchmark DFGs, at P = 0.9 / 0.7 / 0.5, plus best and worst cases.
// Averages are exact expectations over all 2^n SD/LD operand-class
// assignments (no sampling noise).  The paper's numbers are printed next to
// ours; benchmark DFG topologies are reconstructions (DESIGN.md §4), so
// absolute averages can differ a few percent while the win/loss shape holds.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Table 2 -- latency: LT_TAU (sync TAUBM) vs LT_DIST (proposed)");
  std::cout << "SD(*)=15ns LD(*)=20ns FD(+,-)=15ns, CC_TAU=15ns; exact "
               "expectations over all operand classes ("
            << common::globalThreadPool().threadCount() << " threads).\n\n";

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  core::TextTable table({"DFG", "Resources", "style", "best",
                         "avg P=.9", "avg P=.7", "avg P=.5", "worst",
                         "enh P=.9", "enh P=.7", "enh P=.5"});
  const auto suite = dfg::paperTable2Suite();
  // The six benchmark flows are independent; fan them out and print in order.
  // Each flow drives the pass pipeline against a shared artifact cache, so a
  // repeated invocation (or a follow-up report over the same suite) would be
  // served from cache; the summary line below makes the pass economy of the
  // sweep visible in harness logs.
  auto cache = std::make_shared<core::ArtifactCache>();
  std::vector<core::FlowResult> results(suite.size());
  common::parallelFor(suite.size(), [&](std::size_t i) {
    core::FlowConfig cfg;
    cfg.allocation = suite[i].allocation;
    cfg.synthesizeArea = false;
    core::FlowPipeline pipeline(suite[i].graph, cfg, cache);
    results[i] = pipeline.run();
  });
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const dfg::NamedBenchmark& b = suite[i];
    const core::FlowResult& r = results[i];

    const sim::LatencyRow& t = r.latency.tau;
    const sim::LatencyRow& d = r.latency.dist;
    table.addRow({b.name, core::formatAllocation(r.scheduled), "LT_TAU",
                  fmt(t.bestNs), fmt(t.averageNs[0]), fmt(t.averageNs[1]),
                  fmt(t.averageNs[2]), fmt(t.worstNs), "", "", ""});
    table.addRow({"", "", "LT_DIST", fmt(d.bestNs), fmt(d.averageNs[0]),
                  fmt(d.averageNs[1]), fmt(d.averageNs[2]), fmt(d.worstNs),
                  fmt(r.latency.enhancementPercent[0]) + "%",
                  fmt(r.latency.enhancementPercent[1]) + "%",
                  fmt(r.latency.enhancementPercent[2]) + "%"});
    const bench::PaperTable2Ref& ref = bench::kPaperTable2[i];
    table.addRow({"", "(paper)", "LT_TAU", fmt(ref.tauBest), fmt(ref.tauP9),
                  fmt(ref.tauP7), fmt(ref.tauP5), fmt(ref.tauWorst), "", "", ""});
    table.addRow({"", "(paper)", "LT_DIST", fmt(ref.distBest), fmt(ref.distP9),
                  fmt(ref.distP7), fmt(ref.distP5), fmt(ref.distWorst),
                  "", "", ""});
  }
  std::cout << table.toString();
  std::cout << "\nShape checks: LT_DIST <= LT_TAU everywhere; enhancement "
               "grows with DFG size and falling P until the worst case "
               "saturates.\n";
  // Identical for every thread count: the pass decomposition depends only on
  // the demand set, never on the pool size.
  std::cout << "Pipeline: " << core::formatCacheSummary(cache->stats())
            << ".\n";
  return 0;
}
