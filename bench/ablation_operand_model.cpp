// Ablation F -- operand model: the paper treats P as an i.i.d. Bernoulli
// parameter per operation (§2.3).  This bench checks that abstraction against
// the *value-accurate* datapath: the generated controllers drive a bit-level
// register-transfer datapath whose telescopic multipliers classify their
// actual operand values; the measured P and latency are compared with the
// Bernoulli model evaluated at that same measured P.
#include <iomanip>
#include <random>
#include <sstream>

#include "bench_util.hpp"
#include "datapath/engine.hpp"
#include "fsm/distributed.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation F -- Bernoulli(P) abstraction vs value-accurate "
                "datapath execution");

  const int width = 16;
  const int trials = 300;
  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "measured P", "datapath avg cyc",
                     "Bernoulli avg cyc", "gap"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary());
    fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
    const datapath::BitLevelLibrary lib(width, 18);

    std::mt19937_64 rng(2026);
    long sdCount = 0;
    long tauCount = 0;
    double cycleSum = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<datapath::Value> inputs(s.graph.numNodes(), 0);
      for (dfg::NodeId v : s.graph.inputIds()) {
        const int len = std::uniform_int_distribution<int>(1, width)(rng);
        inputs[v] = rng() & ((datapath::Value{1} << len) - 1);
      }
      const datapath::ExecutionResult r = datapath::execute(dcu, s, inputs, lib);
      cycleSum += r.latencyCycles;
      for (dfg::NodeId v : sim::tauOps(s)) {
        ++tauCount;
        if (r.realizedClasses.isShort(v)) ++sdCount;
      }
    }
    const double measuredP = static_cast<double>(sdCount) / tauCount;
    const double datapathAvg = cycleSum / trials;
    const double bernoulliAvg =
        sim::averageCyclesExact(s, sim::ControlStyle::Distributed, measuredP);
    t.addRow({b.name, fmt(measuredP), fmt(datapathAvg), fmt(bernoulliAvg),
              fmt(datapathAvg - bernoulliAvg)});
  }
  std::cout << t.toString();
  std::cout << "\nShape: the Bernoulli abstraction tracks the value-accurate "
               "datapath closely; residual gaps come from operand "
               "correlation along dependency chains (products grow, pushing "
               "downstream multiplications toward LD), which the i.i.d. "
               "model cannot see.\n";
  return 0;
}
