// Extension bench: allocation design-space exploration (the §6 "resource
// allocation" piece of the envisioned HLS tool).  Sweeps unit counts for
// Diff. and AR-lattice, prints every point with its latency / implementation
// cost, and marks the Pareto front.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "explore/pareto.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Extension -- allocation Pareto exploration (P = 0.7)");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
  };

  for (auto [name, graph] : {std::pair{"Diff.", dfg::diffeq()},
                             std::pair{"AR-lattice", dfg::arLattice()}}) {
    explore::ExploreOptions opt;
    opt.maxUnitsPerClass = 4;
    const auto points = explore::explore(graph, opt);
    std::cout << "--- " << name << " (" << points.size()
              << " design points) ---\n";
    core::TextTable t({"allocation", "avg latency (ns)", "ctrl area",
                       "regs", "units", "cost", "Pareto"});
    for (const explore::DesignPoint& p : points) {
      std::ostringstream alloc;
      bool first = true;
      for (const auto& [cls, count] : p.allocation) {
        alloc << (first ? "" : ",") << dfg::resourceClassName(cls) << "="
              << count;
        first = false;
      }
      t.addRow({alloc.str(), fmt(p.averageLatencyNs),
                std::to_string(p.controllerArea),
                std::to_string(p.datapathRegisters),
                std::to_string(p.unitCount),
                std::to_string(p.cost(opt.unitWeightArea)),
                p.paretoOptimal ? "*" : ""});
    }
    std::cout << t.toString() << "\n";
  }
  std::cout << "Shape: the paper's Table 1/2 allocations sit on (or next to) "
               "the Pareto front -- more units buy latency until the chain "
               "cover saturates, after which only cost grows.\n";
  return 0;
}
