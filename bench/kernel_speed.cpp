// Kernel speed trajectory -- the per-PR tracked benchmark for the two
// super-linear kernels, each measured as a naive/optimized pair over the
// Table 2 suite:
//
//   equivalence   the end-to-end checkEquivalence suite (what `lint --equiv`
//                 runs per design) in the naive regime -- reference
//                 minimizer (logic::MinimizerImpl::Reference: scalar QM
//                 merge scans and per-offset-row expand trials) + Naive
//                 proof engine (fresh SAT solver + Tseitin encoding per
//                 miter) -- against the optimized regime: fast minimizer
//                 (sort+hash QM, 64-rows/word bit-parallel expand) +
//                 Incremental engine (simulation prefilter + shared
//                 incremental solver).  Two-level minimization dominates
//                 this suite's wall clock; the fast minimizer makes the
//                 same decisions in the same order, so covers, netlists,
//                 RTL, and every EQV verdict are identical across regimes
//                 (self-checked here).  The isolated proving kernel
//                 (verify::EquivWorkload) is also timed per engine and
//                 reported alongside.
//   sweep         the Distributed latency column, brute-force reference
//                 enumeration per P (one full makespan evaluation and two
//                 pow() calls per mask) against the shared Gray-code
//                 incremental sweep with SIMD delta propagation
//
// and emits BENCH_kernels.json:
//
//   "structural"  deterministic counts and the bit-identity verdicts
//                 (equivalence rule verdicts equal, sweep statistics
//                 EXPECT_EQ-equal).  Identical on every machine; CI diffs
//                 them against bench/baselines/BENCH_kernels.json via
//                 tools/compare_bench.py and fails on drift.
//   "timingsMs"   wall-clock per kernel and regime plus the speedups.
//                 Machine dependent; CI gates only the speedup floors.
//
// The bench self-checks both bit-identity claims and exits non-zero on any
// mismatch -- a fast optimized path that changes one verdict or statistic
// is a failure, not a trade-off.
//
//   kernel_speed [--json FILE]
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_util.hpp"
#include "common/simd.hpp"
#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "sched/scheduled_dfg.hpp"
#include "sim/stats.hpp"
#include "tau/library.hpp"
#include "verify/equiv_check.hpp"

namespace {

using namespace tauhls;

double wallMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<std::tuple<std::string, std::string, std::string>> verdictsOf(
    const verify::Report& report) {
  std::vector<std::tuple<std::string, std::string, std::string>> out;
  for (const auto& d : report.diagnostics()) {
    out.emplace_back(d.code, d.artifact, d.where);
  }
  return out;
}

std::string jsonNumber(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonPath = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::cerr << "usage: kernel_speed [--json FILE]\n";
      return 2;
    }
  }

  bench::banner("Kernel speed (naive vs optimized, bit-identity enforced)");
  std::cout << "SIMD backend: " << common::simd::backendName() << "\n";

  const auto suite = dfg::paperTable2Suite();
  bool ok = true;

  // --- equivalence kernel --------------------------------------------------
  std::vector<fsm::DistributedControlUnit> dcus;
  for (const dfg::NamedBenchmark& b : suite) {
    core::FlowConfig cfg;
    cfg.allocation = b.allocation;
    core::FlowPipeline pipeline(b.graph, cfg);
    dcus.push_back(pipeline.get<fsm::DistributedControlUnit>(
        core::Artifact::Distributed));
  }

  verify::EquivOptions naiveOptions;
  naiveOptions.engine = verify::EquivEngine::Naive;
  verify::EquivOptions incOptions;
  incOptions.engine = verify::EquivEngine::Incremental;

  // End-to-end suite, naive regime: scalar reference minimizer + fresh
  // solver per miter.
  logic::setMinimizerImpl(logic::MinimizerImpl::Reference);
  std::vector<verify::Report> naiveReports;
  const auto tNaive = std::chrono::steady_clock::now();
  for (const auto& dcu : dcus) {
    naiveReports.push_back(verify::checkEquivalence(dcu, naiveOptions));
  }
  const double naiveEquivMs = wallMs(tNaive);

  // Optimized regime: bit-parallel expand + incremental engine.
  logic::setMinimizerImpl(logic::MinimizerImpl::Fast);
  verify::EquivStats optStats;
  std::vector<verify::Report> optReports;
  const auto tOpt = std::chrono::steady_clock::now();
  for (const auto& dcu : dcus) {
    verify::EquivStats stats;
    optReports.push_back(verify::checkEquivalence(dcu, incOptions, &stats));
    optStats += stats;
  }
  const double optEquivMs = wallMs(tOpt);

  for (std::size_t i = 0; i < dcus.size(); ++i) {
    if (verdictsOf(optReports[i]) != verdictsOf(naiveReports[i])) {
      std::cerr << "FAIL: regime verdicts diverge on " << suite[i].name
                << "\n";
      ok = false;
    }
  }

  // Isolated proving kernel: contexts and function pairs prebuilt
  // (untimed), several rounds per engine for a stable measurement.
  std::vector<std::unique_ptr<verify::EquivWorkload>> workloads;
  int kernelPairs = 0;
  for (const auto& dcu : dcus) {
    workloads.push_back(
        std::make_unique<verify::EquivWorkload>(dcu, incOptions));
    kernelPairs += workloads.back()->pairs();
  }
  constexpr int kRounds = 5;
  std::vector<verify::EquivWorkload::Verdicts> kernelVerdicts;
  const auto tKernelNaive = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      const auto v = workloads[i]->prove(naiveOptions);
      if (round == 0) kernelVerdicts.push_back(v);
    }
  }
  const double kernelNaiveMs = wallMs(tKernelNaive) / kRounds;

  verify::EquivStats kernelStats;
  const auto tKernelOpt = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      verify::EquivStats stats;
      const auto v = workloads[i]->prove(incOptions, &stats);
      if (round == 0) {
        kernelStats += stats;
        if (!(v == kernelVerdicts[i])) {
          std::cerr << "FAIL: kernel verdicts diverge on " << suite[i].name
                    << "\n";
          ok = false;
        }
      }
    }
  }
  const double kernelOptMs = wallMs(tKernelOpt) / kRounds;

  std::uint64_t simDischarged = 0;
  std::uint64_t satQueries = 0;
  for (const auto& [code, cost] : kernelStats.ruleCost) {
    simDischarged += cost.simDischarged;
    satQueries += cost.queries;
  }
  const double equivSpeedup =
      optEquivMs > 0.0 ? naiveEquivMs / optEquivMs : 0.0;
  std::cout << "equivalence: naive " << jsonNumber(naiveEquivMs)
            << " ms, optimized " << jsonNumber(optEquivMs) << " ms ("
            << jsonNumber(equivSpeedup) << "x) end to end; proving kernel "
            << jsonNumber(kernelNaiveMs) << " -> "
            << jsonNumber(kernelOptMs) << " ms over " << kernelPairs
            << " pairs, " << simDischarged << " sim-discharged, "
            << satQueries << " SAT queries\n";

  // --- distributed Gray-code sweep kernel ----------------------------------
  const std::vector<double> ps = {0.9, 0.7, 0.5};
  std::vector<sched::ScheduledDfg> schedules;
  for (const dfg::NamedBenchmark& b : suite) {
    schedules.push_back(
        sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary()));
  }
  int totalTauOps = 0;
  std::vector<std::vector<double>> referenceCycles;
  const auto tRef = std::chrono::steady_clock::now();
  for (const sched::ScheduledDfg& s : schedules) {
    const sim::MakespanEngine engine(s);
    totalTauOps += engine.numTauOps();
    std::vector<double> cycles;
    for (const double p : ps) {
      cycles.push_back(sim::averageCyclesExactReference(
          s, engine, sim::ControlStyle::Distributed, p));
    }
    referenceCycles.push_back(std::move(cycles));
  }
  const double naiveSweepMs = wallMs(tRef);

  std::vector<std::vector<double>> sweepCycles;
  const auto tSweep = std::chrono::steady_clock::now();
  for (const sched::ScheduledDfg& s : schedules) {
    const sim::MakespanEngine engine(s);
    sweepCycles.push_back(sim::averageCyclesExactSweep(
        s, engine, sim::ControlStyle::Distributed, ps));
  }
  const double optSweepMs = wallMs(tSweep);

  bool sweepIdentical = true;
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    for (std::size_t j = 0; j < ps.size(); ++j) {
      if (sweepCycles[i][j] != referenceCycles[i][j]) {
        std::cerr << "FAIL: sweep statistic differs on " << suite[i].name
                  << " p=" << ps[j] << "\n";
        sweepIdentical = false;
        ok = false;
      }
    }
  }
  const double sweepSpeedup =
      optSweepMs > 0.0 ? naiveSweepMs / optSweepMs : 0.0;
  std::cout << "sweep:       naive " << jsonNumber(naiveSweepMs)
            << " ms, optimized " << jsonNumber(optSweepMs) << " ms ("
            << jsonNumber(sweepSpeedup) << "x), " << totalTauOps
            << " TAU ops across " << schedules.size() << " schedules\n";
  std::cout << "Bit-identity: " << (ok ? "OK" : "FAILED") << "\n";

  std::size_t controllers = 0;
  for (const auto& dcu : dcus) controllers += dcu.controllers.size();
  std::ostringstream js;
  js << "{\"schema\":\"tauhls-bench-kernels\",\"version\":1,"
     << "\"simdBackend\":\"" << common::simd::backendName() << "\","
     << "\"structural\":{"
     << "\"benchmarks\":" << suite.size()
     << ",\"controllers\":" << controllers
     << ",\"kernelPairs\":" << kernelPairs
     << ",\"functionsCompared\":" << optStats.functionsCompared
     << ",\"verdictsMatch\":" << (ok && sweepIdentical ? 1 : 0)
     << ",\"sweepBitIdentical\":" << (sweepIdentical ? 1 : 0)
     << ",\"sweepPoints\":" << schedules.size() * ps.size()
     << ",\"totalTauOps\":" << totalTauOps << "}"
     << ",\"timingsMs\":{"
     << "\"equivalence\":{\"naive\":" << jsonNumber(naiveEquivMs)
     << ",\"optimized\":" << jsonNumber(optEquivMs)
     << ",\"speedup\":" << jsonNumber(equivSpeedup)
     << ",\"provingKernelNaive\":" << jsonNumber(kernelNaiveMs)
     << ",\"provingKernelOptimized\":" << jsonNumber(kernelOptMs) << "}"
     << ",\"sweep\":{\"naive\":" << jsonNumber(naiveSweepMs)
     << ",\"optimized\":" << jsonNumber(optSweepMs)
     << ",\"speedup\":" << jsonNumber(sweepSpeedup) << "}}}";

  std::ofstream out(jsonPath, std::ios::trunc);
  out << js.str() << "\n";
  if (!out) {
    std::cerr << "cannot write " << jsonPath << "\n";
    return 1;
  }
  std::cout << "wrote " << jsonPath << "\n";
  return ok ? 0 : 1;
}
