// Extension bench (paper §6 future work): multi-level VCAUs.
//
// A three-level telescopic multiplier (10/20/30 ns at a 10 ns clock)
// generalizes the paper's two-level TAU.  We sweep level distributions and
// compare, per benchmark:
//   * DIST vs CENT-SYNC under multi-level control (the paper's claim
//     carries over), and
//   * fine 3-level completion detection vs a coarse detector that can only
//     certify the first level (everything else waits the full 3 cycles) --
//     quantifying what finer telescoping buys.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "vcau/stats.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Extension -- multi-level VCAUs (generalized Algorithm 1)");

  tau::ResourceLibrary lib10;
  lib10.registerType(tau::telescopicUnit("tau_mult", dfg::ResourceClass::Multiplier,
                                         10, 20, 0.5));  // surrogate for scheduling
  lib10.registerType(tau::fixedUnit("adder", dfg::ResourceClass::Adder, 10));
  lib10.registerType(
      tau::fixedUnit("subtractor", dfg::ResourceClass::Subtractor, 10));

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };

  const std::vector<std::vector<double>> pmfs = {
      {0.7, 0.2, 0.1}, {0.5, 0.3, 0.2}, {0.3, 0.4, 0.3}, {0.1, 0.3, 0.6}};

  core::TextTable t({"DFG", "level pmf", "DIST avg cyc", "SYNC avg cyc",
                     "enh", "coarse DIST", "fine-grain gain"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    auto s = sched::scheduleAndBind(b.graph, b.allocation, lib10);
    for (const auto& pmf : pmfs) {
      vcau::MultiLevelLibrary fine{{dfg::ResourceClass::Multiplier,
                                    vcau::multiLevelUnit(
                                        "tau3", dfg::ResourceClass::Multiplier,
                                        {10, 20, 30}, pmf)}};
      // Coarse detector: only level 0 is certified; levels 1 and 2 both run
      // to the 3-cycle worst case.
      vcau::MultiLevelLibrary coarse{{dfg::ResourceClass::Multiplier,
                                      vcau::multiLevelUnit(
                                          "tau3c", dfg::ResourceClass::Multiplier,
                                          {10, 20, 30},
                                          {pmf[0], 0.0, pmf[1] + pmf[2]})}};
      const double dist =
          vcau::averageCycles(s, fine, vcau::ControlStyle::Distributed);
      const double sync =
          vcau::averageCycles(s, fine, vcau::ControlStyle::CentSync);
      const double coarseDist =
          vcau::averageCycles(s, coarse, vcau::ControlStyle::Distributed);
      std::ostringstream pmfText;
      pmfText << pmf[0] << "/" << pmf[1] << "/" << pmf[2];
      t.addRow({b.name, pmfText.str(), fmt(dist), fmt(sync),
                fmt((sync - dist) / sync * 100.0) + "%", fmt(coarseDist),
                fmt((coarseDist - dist) / coarseDist * 100.0) + "%"});
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape: the distributed win survives the generalization "
               "(DIST <= SYNC for every pmf); finer completion detection "
               "pays most when the middle level is populated.\n";
  return 0;
}
