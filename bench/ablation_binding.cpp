// Ablation D -- binding strategy: left-edge binding from the list schedule
// (critical-path or mobility priority) versus the paper's §3
// clique-cover/schedule-arc method, compared on
// latency (best / avg P=0.5 / worst) and inserted arcs.
#include <iomanip>
#include <sstream>

#include "bench_util.hpp"
#include "sim/stats.hpp"

int main() {
  using namespace tauhls;
  bench::banner("Ablation D -- left-edge binding vs clique-cover scheduling");

  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  };

  core::TextTable t({"DFG", "strategy", "sched arcs", "best cyc",
                     "avg cyc P=.5", "worst cyc"});
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    struct Variant {
      const char* label;
      sched::BindingStrategy strategy;
      sched::PriorityRule priority;
    };
    for (const Variant& v :
         {Variant{"left-edge/cpath", sched::BindingStrategy::LeftEdge,
                  sched::PriorityRule::CriticalPath},
          Variant{"left-edge/mobility", sched::BindingStrategy::LeftEdge,
                  sched::PriorityRule::Mobility},
          Variant{"clique-cover", sched::BindingStrategy::CliqueCover,
                  sched::PriorityRule::CriticalPath}}) {
      auto s = sched::scheduleAndBind(b.graph, b.allocation, tau::paperLibrary(),
                                      v.strategy, v.priority);
      t.addRow({b.name, v.label, std::to_string(s.graph.scheduleArcs().size()),
                std::to_string(
                    sim::bestCaseCycles(s, sim::ControlStyle::Distributed)),
                fmt(sim::averageCyclesExact(s, sim::ControlStyle::Distributed,
                                            0.5)),
                std::to_string(
                    sim::worstCaseCycles(s, sim::ControlStyle::Distributed))});
    }
  }
  std::cout << t.toString();
  std::cout << "\nShape: both strategies respect the allocation; the clique "
               "method inserts only the arcs needed to reach the unit count "
               "(minimizing worst-case path growth), the left-edge binding "
               "serializes whatever the list schedule packed together.  On "
               "these benchmarks they land within a cycle of each other.\n";
  return 0;
}
