// tauhlsc -- the command-line driver of the tauhls flow.  All logic lives in
// core/cli.{hpp,cpp}; this main only marshals argv and streams.  Sweep
// parallelism is controlled by `--threads N` (or the TAUHLS_THREADS env var);
// every reported number is bit-identical regardless of the thread count.
#include <iostream>
#include <string>
#include <vector>

#include "core/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto options = tauhls::core::parseCli(args, error);
  if (!options) {
    std::cerr << "tauhlsc: " << error << "\n";
    return 2;
  }
  return tauhls::core::runCli(*options, std::cout, std::cerr);
}
