#!/usr/bin/env python3
"""Diff a BENCH_pipeline.json trajectory against the committed baseline.

Usage:
    compare_bench_pipeline.py BASELINE CURRENT [-o comparison.md]

The "structural" section (pass run counts, hit/miss totals, store blob
count and bytes) is deterministic across machines, so any difference fails
the comparison (exit 1): changing it is a deliberate baseline update
(regenerate with `build/bench/pipeline_trajectory --json
bench/baselines/BENCH_pipeline.json` and commit the diff).  The "timingsMs"
section is machine dependent and is only reported.
"""

import argparse
import json
import sys


def flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(f"{prefix}.{key}" if prefix else key, value, out)
    else:
        out[prefix] = node


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("-o", "--output", help="also write a markdown report")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    lines = ["# Pipeline bench trajectory", ""]
    failures = []

    for doc, name in ((base, args.baseline), (cur, args.current)):
        if doc.get("schema") != "tauhls-bench-pipeline":
            failures.append(f"{name}: unexpected schema {doc.get('schema')!r}")
    if base.get("version") != cur.get("version"):
        failures.append(
            f"schema version changed: {base.get('version')} -> "
            f"{cur.get('version')} (regenerate the baseline)")

    base_struct, cur_struct = {}, {}
    flatten("", base.get("structural", {}), base_struct)
    flatten("", cur.get("structural", {}), cur_struct)
    lines.append("## Structural (must match the baseline)")
    lines.append("")
    lines.append("| metric | baseline | current |")
    lines.append("|---|---|---|")
    for key in sorted(set(base_struct) | set(cur_struct)):
        b = base_struct.get(key, "-")
        c = cur_struct.get(key, "-")
        marker = "" if b == c else "  <-- DRIFT"
        lines.append(f"| {key} | {b} | {c}{marker} |")
        if b != c:
            failures.append(f"structural drift: {key}: {b} -> {c}")

    base_times, cur_times = {}, {}
    flatten("", base.get("timingsMs", {}), base_times)
    flatten("", cur.get("timingsMs", {}), cur_times)
    lines.append("")
    lines.append("## Timings (informational, machine dependent)")
    lines.append("")
    lines.append("| metric | baseline ms | current ms | delta |")
    lines.append("|---|---|---|---|")
    for key in sorted(set(base_times) | set(cur_times)):
        b = base_times.get(key)
        c = cur_times.get(key)
        if isinstance(b, (int, float)) and isinstance(c, (int, float)) and b:
            delta = f"{100.0 * (c - b) / b:+.1f}%"
        else:
            delta = "-"
        lines.append(f"| {key} | {b} | {c} | {delta} |")

    lines.append("")
    if failures:
        lines.append("## Result: FAIL")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("## Result: OK (structural metrics match the baseline)")

    report = "\n".join(lines) + "\n"
    print(report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(report)

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
