#!/usr/bin/env python3
"""Diff a fresh bench JSON against its committed baseline (schema driven).

One comparator for every tracked bench emitter.  All of them share the same
document shape:

    {"schema": "<name>", "version": N,
     "structural": {...},      # deterministic, machine independent
     "timingsMs": {...},       # wall clock, machine dependent
     ...}                      # extra context fields (e.g. "simdBackend")

The "structural" section must match the baseline exactly -- any drift fails
the run (exit 1), so changing it is a deliberate, reviewed baseline update
(regenerate with the emitting bench binary's `--json` flag and commit the
diff).  The "timingsMs" section is machine dependent and only reported;
speedup floors are gated separately in CI (.github/workflows/ci.yml).
Remaining top-level fields are context and are not compared.

Known schemas and the bench binaries that emit them:

    tauhls-bench-kernels     build/bench/kernel_speed
    tauhls-bench-pipeline    build/bench/pipeline_trajectory
    tauhls-bench-modelcheck  build/bench/model_check_speed
    tauhls-bench-regions     build/bench/region_flow

Usage: compare_bench.py BASELINE CURRENT [-o REPORT.md]
"""

import argparse
import json
import sys

KNOWN_SCHEMAS = {
    "tauhls-bench-kernels": "Kernel bench comparison",
    "tauhls-bench-pipeline": "Pipeline bench trajectory",
    "tauhls-bench-modelcheck": "Model-check bench comparison",
    "tauhls-bench-regions": "Hierarchical-regions bench comparison",
    "tauhls-bench-xcheck": "X-safety bench comparison",
}


def flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flatten(f"{prefix}[{i}]", value, out)
    else:
        out[prefix] = node


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("-o", "--output", help="markdown report path")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    failures = []
    schema = base.get("schema")
    if schema not in KNOWN_SCHEMAS:
        failures.append(f"{args.baseline}: unknown schema {schema!r}")
    if cur.get("schema") != schema:
        failures.append(
            f"schema mismatch: baseline={schema!r} "
            f"current={cur.get('schema')!r}")
    if base.get("version") != cur.get("version"):
        failures.append(
            f"schema version changed: {base.get('version')} -> "
            f"{cur.get('version')} (regenerate the baseline)")

    base_struct, cur_struct = {}, {}
    flatten("", base.get("structural", {}), base_struct)
    flatten("", cur.get("structural", {}), cur_struct)
    title = KNOWN_SCHEMAS.get(schema, f"Bench comparison ({schema!r})")
    lines = [f"# {title}", ""]
    lines.append("## Structural (must match the baseline)")
    lines.append("")
    lines.append("| metric | baseline | current |")
    lines.append("|---|---|---|")
    for key in sorted(set(base_struct) | set(cur_struct)):
        b = base_struct.get(key, "-")
        c = cur_struct.get(key, "-")
        marker = "" if b == c else "  <-- DRIFT"
        lines.append(f"| {key} | {b} | {c}{marker} |")
        if b != c:
            failures.append(f"structural drift: {key}: {b} -> {c}")

    base_times, cur_times = {}, {}
    flatten("", base.get("timingsMs", {}), base_times)
    flatten("", cur.get("timingsMs", {}), cur_times)
    lines.append("")
    lines.append("## Timings (informational, machine dependent)")
    lines.append("")
    lines.append("| metric | baseline ms | current ms | delta |")
    lines.append("|---|---|---|---|")
    for key in sorted(set(base_times) | set(cur_times)):
        b = base_times.get(key)
        c = cur_times.get(key)
        if isinstance(b, (int, float)) and isinstance(c, (int, float)) and b:
            delta = f"{100.0 * (c - b) / b:+.1f}%"
        else:
            delta = "-"
        lines.append(f"| {key} | {b} | {c} | {delta} |")

    lines.append("")
    if failures:
        lines.append("## Result: FAIL")
        lines.extend(f"- {f}" for f in failures)
    else:
        lines.append("## Result: OK (structural metrics match the baseline)")
    report = "\n".join(lines) + "\n"

    if args.output:
        with open(args.output, "w") as f:
            f.write(report)
    print(report, end="")

    if failures:
        print(f"\nFAIL: {len(failures)} mismatch(es)", file=sys.stderr)
        return 1
    print("\nOK: structural fields match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
