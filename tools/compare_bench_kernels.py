#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

Structural fields (benchmark counts, functions compared, bit-identity
verdicts, sweep sizes) must match exactly -- any drift fails the run, so a
change is a deliberate, reviewed baseline update.  Timings are machine
dependent and reported informationally; the speedup floors themselves are
gated separately in CI (see .github/workflows/ci.yml bench-smoke).

Usage: compare_bench_kernels.py BASELINE CURRENT [-o REPORT.md]
"""

import argparse
import json
import sys


def flatten(prefix, node, out):
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            flatten(f"{prefix}.{key}" if prefix else key, value, out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flatten(f"{prefix}[{i}]", value, out)
    else:
        out[prefix] = node


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("-o", "--output", help="markdown report path")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    failures = []
    for field in ("schema", "version"):
        if base.get(field) != cur.get(field):
            failures.append(
                f"{field}: baseline={base.get(field)!r} current={cur.get(field)!r}"
            )

    base_struct, cur_struct = {}, {}
    flatten("", base.get("structural", {}), base_struct)
    flatten("", cur.get("structural", {}), cur_struct)
    for key in sorted(set(base_struct) | set(cur_struct)):
        b, c = base_struct.get(key), cur_struct.get(key)
        if b != c:
            failures.append(f"structural.{key}: baseline={b!r} current={c!r}")

    base_times, cur_times = {}, {}
    flatten("", base.get("timingsMs", {}), base_times)
    flatten("", cur.get("timingsMs", {}), cur_times)
    timing_lines = []
    for key in sorted(set(base_times) | set(cur_times)):
        b, c = base_times.get(key), cur_times.get(key)
        if isinstance(b, (int, float)) and isinstance(c, (int, float)) and b:
            delta = 100.0 * (c - b) / b
            timing_lines.append(f"{key}: {b:.3f} -> {c:.3f} ms ({delta:+.1f}%)")
        else:
            timing_lines.append(f"{key}: {b!r} -> {c!r}")

    lines = ["# Kernel bench comparison", ""]
    if failures:
        lines.append("## STRUCTURAL DRIFT (CI failure)")
        lines.extend(f"- {f}" for f in failures)
        lines.append("")
    else:
        lines.append("Structural fields match the baseline.")
        lines.append("")
    lines.append("## Timings (informational)")
    lines.extend(f"- {t}" for t in timing_lines)
    report = "\n".join(lines) + "\n"

    if args.output:
        with open(args.output, "w") as f:
            f.write(report)
    print(report, end="")

    if failures:
        print(f"\nFAIL: {len(failures)} structural mismatch(es)", file=sys.stderr)
        return 1
    print("\nOK: structural fields match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
