# Empty compiler generated dependencies file for tauhlsc.
# This may be replaced when dependencies are built.
