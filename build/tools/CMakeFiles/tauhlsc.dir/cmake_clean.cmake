file(REMOVE_RECURSE
  "CMakeFiles/tauhlsc.dir/tauhlsc.cpp.o"
  "CMakeFiles/tauhlsc.dir/tauhlsc.cpp.o.d"
  "tauhlsc"
  "tauhlsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhlsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
