file(REMOVE_RECURSE
  "../bench/fig4_state_growth"
  "../bench/fig4_state_growth.pdb"
  "CMakeFiles/fig4_state_growth.dir/fig4_state_growth.cpp.o"
  "CMakeFiles/fig4_state_growth.dir/fig4_state_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_state_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
