# Empty dependencies file for fig4_state_growth.
# This may be replaced when dependencies are built.
