file(REMOVE_RECURSE
  "../bench/table1_area"
  "../bench/table1_area.pdb"
  "CMakeFiles/table1_area.dir/table1_area.cpp.o"
  "CMakeFiles/table1_area.dir/table1_area.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
