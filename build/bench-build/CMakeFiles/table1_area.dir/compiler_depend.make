# Empty compiler generated dependencies file for table1_area.
# This may be replaced when dependencies are built.
