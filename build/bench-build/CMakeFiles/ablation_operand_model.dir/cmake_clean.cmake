file(REMOVE_RECURSE
  "../bench/ablation_operand_model"
  "../bench/ablation_operand_model.pdb"
  "CMakeFiles/ablation_operand_model.dir/ablation_operand_model.cpp.o"
  "CMakeFiles/ablation_operand_model.dir/ablation_operand_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_operand_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
