# Empty dependencies file for ablation_operand_model.
# This may be replaced when dependencies are built.
