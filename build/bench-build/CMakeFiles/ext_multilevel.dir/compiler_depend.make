# Empty compiler generated dependencies file for ext_multilevel.
# This may be replaced when dependencies are built.
