file(REMOVE_RECURSE
  "../bench/ext_multilevel"
  "../bench/ext_multilevel.pdb"
  "CMakeFiles/ext_multilevel.dir/ext_multilevel.cpp.o"
  "CMakeFiles/ext_multilevel.dir/ext_multilevel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
