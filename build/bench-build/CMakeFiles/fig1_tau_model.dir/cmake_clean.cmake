file(REMOVE_RECURSE
  "../bench/fig1_tau_model"
  "../bench/fig1_tau_model.pdb"
  "CMakeFiles/fig1_tau_model.dir/fig1_tau_model.cpp.o"
  "CMakeFiles/fig1_tau_model.dir/fig1_tau_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tau_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
