# Empty compiler generated dependencies file for fig1_tau_model.
# This may be replaced when dependencies are built.
