# Empty compiler generated dependencies file for ablation_cse.
# This may be replaced when dependencies are built.
