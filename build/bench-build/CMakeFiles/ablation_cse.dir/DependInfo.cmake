
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_cse.cpp" "bench-build/CMakeFiles/ablation_cse.dir/ablation_cse.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_cse.dir/ablation_cse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tauhls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitlevel/CMakeFiles/tauhls_bitlevel.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/tauhls_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/tauhls_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/tauhls_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tauhls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/tauhls_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tauhls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tauhls_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
