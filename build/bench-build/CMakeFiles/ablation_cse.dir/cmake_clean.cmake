file(REMOVE_RECURSE
  "../bench/ablation_cse"
  "../bench/ablation_cse.pdb"
  "CMakeFiles/ablation_cse.dir/ablation_cse.cpp.o"
  "CMakeFiles/ablation_cse.dir/ablation_cse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
