file(REMOVE_RECURSE
  "../bench/ablation_granularity"
  "../bench/ablation_granularity.pdb"
  "CMakeFiles/ablation_granularity.dir/ablation_granularity.cpp.o"
  "CMakeFiles/ablation_granularity.dir/ablation_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
