# Empty compiler generated dependencies file for ablation_granularity.
# This may be replaced when dependencies are built.
