file(REMOVE_RECURSE
  "../bench/ablation_gate_level"
  "../bench/ablation_gate_level.pdb"
  "CMakeFiles/ablation_gate_level.dir/ablation_gate_level.cpp.o"
  "CMakeFiles/ablation_gate_level.dir/ablation_gate_level.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gate_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
