# Empty dependencies file for ablation_gate_level.
# This may be replaced when dependencies are built.
