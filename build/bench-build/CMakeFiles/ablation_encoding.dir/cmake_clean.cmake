file(REMOVE_RECURSE
  "../bench/ablation_encoding"
  "../bench/ablation_encoding.pdb"
  "CMakeFiles/ablation_encoding.dir/ablation_encoding.cpp.o"
  "CMakeFiles/ablation_encoding.dir/ablation_encoding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
