file(REMOVE_RECURSE
  "../bench/fig6_unit_controller"
  "../bench/fig6_unit_controller.pdb"
  "CMakeFiles/fig6_unit_controller.dir/fig6_unit_controller.cpp.o"
  "CMakeFiles/fig6_unit_controller.dir/fig6_unit_controller.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_unit_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
