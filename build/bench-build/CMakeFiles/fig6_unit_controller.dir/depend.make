# Empty dependencies file for fig6_unit_controller.
# This may be replaced when dependencies are built.
