file(REMOVE_RECURSE
  "../bench/ablation_streaming"
  "../bench/ablation_streaming.pdb"
  "CMakeFiles/ablation_streaming.dir/ablation_streaming.cpp.o"
  "CMakeFiles/ablation_streaming.dir/ablation_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
