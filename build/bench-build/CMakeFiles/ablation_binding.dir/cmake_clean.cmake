file(REMOVE_RECURSE
  "../bench/ablation_binding"
  "../bench/ablation_binding.pdb"
  "CMakeFiles/ablation_binding.dir/ablation_binding.cpp.o"
  "CMakeFiles/ablation_binding.dir/ablation_binding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
