# Empty compiler generated dependencies file for ablation_binding.
# This may be replaced when dependencies are built.
