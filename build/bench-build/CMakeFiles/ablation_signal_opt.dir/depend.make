# Empty dependencies file for ablation_signal_opt.
# This may be replaced when dependencies are built.
