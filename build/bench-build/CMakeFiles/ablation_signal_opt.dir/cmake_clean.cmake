file(REMOVE_RECURSE
  "../bench/ablation_signal_opt"
  "../bench/ablation_signal_opt.pdb"
  "CMakeFiles/ablation_signal_opt.dir/ablation_signal_opt.cpp.o"
  "CMakeFiles/ablation_signal_opt.dir/ablation_signal_opt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signal_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
