# Empty compiler generated dependencies file for fig3_scheduling.
# This may be replaced when dependencies are built.
