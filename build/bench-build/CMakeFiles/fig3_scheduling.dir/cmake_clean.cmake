file(REMOVE_RECURSE
  "../bench/fig3_scheduling"
  "../bench/fig3_scheduling.pdb"
  "CMakeFiles/fig3_scheduling.dir/fig3_scheduling.cpp.o"
  "CMakeFiles/fig3_scheduling.dir/fig3_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
