# Empty dependencies file for fig7_global_unit.
# This may be replaced when dependencies are built.
