file(REMOVE_RECURSE
  "../bench/fig7_global_unit"
  "../bench/fig7_global_unit.pdb"
  "CMakeFiles/fig7_global_unit.dir/fig7_global_unit.cpp.o"
  "CMakeFiles/fig7_global_unit.dir/fig7_global_unit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_global_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
