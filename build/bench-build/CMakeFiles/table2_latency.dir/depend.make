# Empty dependencies file for table2_latency.
# This may be replaced when dependencies are built.
