file(REMOVE_RECURSE
  "../bench/table2_latency"
  "../bench/table2_latency.pdb"
  "CMakeFiles/table2_latency.dir/table2_latency.cpp.o"
  "CMakeFiles/table2_latency.dir/table2_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
