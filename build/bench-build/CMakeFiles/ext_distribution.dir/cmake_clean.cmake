file(REMOVE_RECURSE
  "../bench/ext_distribution"
  "../bench/ext_distribution.pdb"
  "CMakeFiles/ext_distribution.dir/ext_distribution.cpp.o"
  "CMakeFiles/ext_distribution.dir/ext_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
