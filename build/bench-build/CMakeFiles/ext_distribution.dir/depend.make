# Empty dependencies file for ext_distribution.
# This may be replaced when dependencies are built.
