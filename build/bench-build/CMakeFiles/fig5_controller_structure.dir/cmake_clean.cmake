file(REMOVE_RECURSE
  "../bench/fig5_controller_structure"
  "../bench/fig5_controller_structure.pdb"
  "CMakeFiles/fig5_controller_structure.dir/fig5_controller_structure.cpp.o"
  "CMakeFiles/fig5_controller_structure.dir/fig5_controller_structure.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_controller_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
