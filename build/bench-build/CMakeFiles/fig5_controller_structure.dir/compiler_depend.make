# Empty compiler generated dependencies file for fig5_controller_structure.
# This may be replaced when dependencies are built.
