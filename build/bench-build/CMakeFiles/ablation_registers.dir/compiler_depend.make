# Empty compiler generated dependencies file for ablation_registers.
# This may be replaced when dependencies are built.
