file(REMOVE_RECURSE
  "../bench/ablation_registers"
  "../bench/ablation_registers.pdb"
  "CMakeFiles/ablation_registers.dir/ablation_registers.cpp.o"
  "CMakeFiles/ablation_registers.dir/ablation_registers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
