file(REMOVE_RECURSE
  "../bench/ext_scaling"
  "../bench/ext_scaling.pdb"
  "CMakeFiles/ext_scaling.dir/ext_scaling.cpp.o"
  "CMakeFiles/ext_scaling.dir/ext_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
