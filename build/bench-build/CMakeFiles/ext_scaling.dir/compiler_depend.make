# Empty compiler generated dependencies file for ext_scaling.
# This may be replaced when dependencies are built.
