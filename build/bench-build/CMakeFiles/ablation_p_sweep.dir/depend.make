# Empty dependencies file for ablation_p_sweep.
# This may be replaced when dependencies are built.
