file(REMOVE_RECURSE
  "../bench/ablation_p_sweep"
  "../bench/ablation_p_sweep.pdb"
  "CMakeFiles/ablation_p_sweep.dir/ablation_p_sweep.cpp.o"
  "CMakeFiles/ablation_p_sweep.dir/ablation_p_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
