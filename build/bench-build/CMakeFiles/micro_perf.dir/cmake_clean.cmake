file(REMOVE_RECURSE
  "../bench/micro_perf"
  "../bench/micro_perf.pdb"
  "CMakeFiles/micro_perf.dir/micro_perf.cpp.o"
  "CMakeFiles/micro_perf.dir/micro_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
