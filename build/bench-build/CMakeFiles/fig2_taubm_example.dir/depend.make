# Empty dependencies file for fig2_taubm_example.
# This may be replaced when dependencies are built.
