file(REMOVE_RECURSE
  "../bench/fig2_taubm_example"
  "../bench/fig2_taubm_example.pdb"
  "CMakeFiles/fig2_taubm_example.dir/fig2_taubm_example.cpp.o"
  "CMakeFiles/fig2_taubm_example.dir/fig2_taubm_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_taubm_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
