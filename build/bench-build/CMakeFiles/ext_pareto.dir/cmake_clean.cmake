file(REMOVE_RECURSE
  "../bench/ext_pareto"
  "../bench/ext_pareto.pdb"
  "CMakeFiles/ext_pareto.dir/ext_pareto.cpp.o"
  "CMakeFiles/ext_pareto.dir/ext_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
