# Empty compiler generated dependencies file for ext_pareto.
# This may be replaced when dependencies are built.
