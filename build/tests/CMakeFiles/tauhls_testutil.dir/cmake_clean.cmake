file(REMOVE_RECURSE
  "CMakeFiles/tauhls_testutil.dir/testutil.cpp.o"
  "CMakeFiles/tauhls_testutil.dir/testutil.cpp.o.d"
  "libtauhls_testutil.a"
  "libtauhls_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
