# Empty dependencies file for tauhls_testutil.
# This may be replaced when dependencies are built.
