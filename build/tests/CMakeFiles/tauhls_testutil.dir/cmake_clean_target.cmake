file(REMOVE_RECURSE
  "libtauhls_testutil.a"
)
