# Empty dependencies file for test_distribution.
# This may be replaced when dependencies are built.
