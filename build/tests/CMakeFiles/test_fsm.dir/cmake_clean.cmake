file(REMOVE_RECURSE
  "CMakeFiles/test_fsm.dir/test_fsm.cpp.o"
  "CMakeFiles/test_fsm.dir/test_fsm.cpp.o.d"
  "test_fsm"
  "test_fsm.pdb"
  "test_fsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
