# Empty dependencies file for test_fsm.
# This may be replaced when dependencies are built.
