# Empty compiler generated dependencies file for test_vcau.
# This may be replaced when dependencies are built.
