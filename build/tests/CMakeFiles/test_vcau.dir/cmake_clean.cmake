file(REMOVE_RECURSE
  "CMakeFiles/test_vcau.dir/test_vcau.cpp.o"
  "CMakeFiles/test_vcau.dir/test_vcau.cpp.o.d"
  "test_vcau"
  "test_vcau.pdb"
  "test_vcau[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
