file(REMOVE_RECURSE
  "CMakeFiles/test_vsim.dir/test_vsim.cpp.o"
  "CMakeFiles/test_vsim.dir/test_vsim.cpp.o.d"
  "test_vsim"
  "test_vsim.pdb"
  "test_vsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
