# Empty dependencies file for test_vsim.
# This may be replaced when dependencies are built.
