file(REMOVE_RECURSE
  "CMakeFiles/test_explore.dir/test_explore.cpp.o"
  "CMakeFiles/test_explore.dir/test_explore.cpp.o.d"
  "test_explore"
  "test_explore.pdb"
  "test_explore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
