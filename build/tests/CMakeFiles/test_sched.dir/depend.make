# Empty dependencies file for test_sched.
# This may be replaced when dependencies are built.
