file(REMOVE_RECURSE
  "CMakeFiles/test_api_corners.dir/test_api_corners.cpp.o"
  "CMakeFiles/test_api_corners.dir/test_api_corners.cpp.o.d"
  "test_api_corners"
  "test_api_corners.pdb"
  "test_api_corners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
