# Empty dependencies file for test_api_corners.
# This may be replaced when dependencies are built.
