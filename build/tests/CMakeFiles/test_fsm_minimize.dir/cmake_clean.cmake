file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_minimize.dir/test_fsm_minimize.cpp.o"
  "CMakeFiles/test_fsm_minimize.dir/test_fsm_minimize.cpp.o.d"
  "test_fsm_minimize"
  "test_fsm_minimize.pdb"
  "test_fsm_minimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
