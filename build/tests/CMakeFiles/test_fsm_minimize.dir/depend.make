# Empty dependencies file for test_fsm_minimize.
# This may be replaced when dependencies are built.
