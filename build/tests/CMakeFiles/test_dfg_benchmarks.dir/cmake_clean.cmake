file(REMOVE_RECURSE
  "CMakeFiles/test_dfg_benchmarks.dir/test_dfg_benchmarks.cpp.o"
  "CMakeFiles/test_dfg_benchmarks.dir/test_dfg_benchmarks.cpp.o.d"
  "test_dfg_benchmarks"
  "test_dfg_benchmarks.pdb"
  "test_dfg_benchmarks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
