# Empty dependencies file for test_rtl_testbench.
# This may be replaced when dependencies are built.
