file(REMOVE_RECURSE
  "CMakeFiles/test_rtl_testbench.dir/test_rtl_testbench.cpp.o"
  "CMakeFiles/test_rtl_testbench.dir/test_rtl_testbench.cpp.o.d"
  "test_rtl_testbench"
  "test_rtl_testbench.pdb"
  "test_rtl_testbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl_testbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
