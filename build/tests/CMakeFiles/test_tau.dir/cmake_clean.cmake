file(REMOVE_RECURSE
  "CMakeFiles/test_tau.dir/test_tau.cpp.o"
  "CMakeFiles/test_tau.dir/test_tau.cpp.o.d"
  "test_tau"
  "test_tau.pdb"
  "test_tau[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
