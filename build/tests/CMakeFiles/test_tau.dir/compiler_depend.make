# Empty compiler generated dependencies file for test_tau.
# This may be replaced when dependencies are built.
