file(REMOVE_RECURSE
  "CMakeFiles/test_bitlevel.dir/test_bitlevel.cpp.o"
  "CMakeFiles/test_bitlevel.dir/test_bitlevel.cpp.o.d"
  "test_bitlevel"
  "test_bitlevel.pdb"
  "test_bitlevel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
