# Empty compiler generated dependencies file for test_bitlevel.
# This may be replaced when dependencies are built.
