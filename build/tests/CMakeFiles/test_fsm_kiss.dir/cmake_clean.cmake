file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_kiss.dir/test_fsm_kiss.cpp.o"
  "CMakeFiles/test_fsm_kiss.dir/test_fsm_kiss.cpp.o.d"
  "test_fsm_kiss"
  "test_fsm_kiss.pdb"
  "test_fsm_kiss[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_kiss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
