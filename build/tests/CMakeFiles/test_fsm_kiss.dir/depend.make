# Empty dependencies file for test_fsm_kiss.
# This may be replaced when dependencies are built.
