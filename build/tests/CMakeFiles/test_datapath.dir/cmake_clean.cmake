file(REMOVE_RECURSE
  "CMakeFiles/test_datapath.dir/test_datapath.cpp.o"
  "CMakeFiles/test_datapath.dir/test_datapath.cpp.o.d"
  "test_datapath"
  "test_datapath.pdb"
  "test_datapath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
