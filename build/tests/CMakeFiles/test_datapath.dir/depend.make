# Empty dependencies file for test_datapath.
# This may be replaced when dependencies are built.
