# Empty dependencies file for test_fsm_generators.
# This may be replaced when dependencies are built.
