file(REMOVE_RECURSE
  "CMakeFiles/test_fsm_generators.dir/test_fsm_generators.cpp.o"
  "CMakeFiles/test_fsm_generators.dir/test_fsm_generators.cpp.o.d"
  "test_fsm_generators"
  "test_fsm_generators.pdb"
  "test_fsm_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fsm_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
