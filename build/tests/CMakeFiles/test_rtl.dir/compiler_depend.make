# Empty compiler generated dependencies file for test_rtl.
# This may be replaced when dependencies are built.
