file(REMOVE_RECURSE
  "CMakeFiles/test_rtl.dir/test_rtl.cpp.o"
  "CMakeFiles/test_rtl.dir/test_rtl.cpp.o.d"
  "test_rtl"
  "test_rtl.pdb"
  "test_rtl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
