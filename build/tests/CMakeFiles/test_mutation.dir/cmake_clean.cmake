file(REMOVE_RECURSE
  "CMakeFiles/test_mutation.dir/test_mutation.cpp.o"
  "CMakeFiles/test_mutation.dir/test_mutation.cpp.o.d"
  "test_mutation"
  "test_mutation.pdb"
  "test_mutation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
