# Empty dependencies file for test_mutation.
# This may be replaced when dependencies are built.
