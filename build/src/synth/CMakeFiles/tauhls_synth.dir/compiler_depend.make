# Empty compiler generated dependencies file for tauhls_synth.
# This may be replaced when dependencies are built.
