file(REMOVE_RECURSE
  "CMakeFiles/tauhls_synth.dir/area.cpp.o"
  "CMakeFiles/tauhls_synth.dir/area.cpp.o.d"
  "CMakeFiles/tauhls_synth.dir/encoding.cpp.o"
  "CMakeFiles/tauhls_synth.dir/encoding.cpp.o.d"
  "CMakeFiles/tauhls_synth.dir/extract.cpp.o"
  "CMakeFiles/tauhls_synth.dir/extract.cpp.o.d"
  "libtauhls_synth.a"
  "libtauhls_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
