file(REMOVE_RECURSE
  "libtauhls_synth.a"
)
