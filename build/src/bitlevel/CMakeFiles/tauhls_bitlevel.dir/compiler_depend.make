# Empty compiler generated dependencies file for tauhls_bitlevel.
# This may be replaced when dependencies are built.
