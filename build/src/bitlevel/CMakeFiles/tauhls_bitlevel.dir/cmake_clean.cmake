file(REMOVE_RECURSE
  "CMakeFiles/tauhls_bitlevel.dir/adder.cpp.o"
  "CMakeFiles/tauhls_bitlevel.dir/adder.cpp.o.d"
  "CMakeFiles/tauhls_bitlevel.dir/completion.cpp.o"
  "CMakeFiles/tauhls_bitlevel.dir/completion.cpp.o.d"
  "CMakeFiles/tauhls_bitlevel.dir/measure.cpp.o"
  "CMakeFiles/tauhls_bitlevel.dir/measure.cpp.o.d"
  "CMakeFiles/tauhls_bitlevel.dir/multiplier.cpp.o"
  "CMakeFiles/tauhls_bitlevel.dir/multiplier.cpp.o.d"
  "libtauhls_bitlevel.a"
  "libtauhls_bitlevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_bitlevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
