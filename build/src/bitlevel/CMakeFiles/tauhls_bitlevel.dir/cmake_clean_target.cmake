file(REMOVE_RECURSE
  "libtauhls_bitlevel.a"
)
