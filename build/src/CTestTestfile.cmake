# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("dfg")
subdirs("logic")
subdirs("tau")
subdirs("sched")
subdirs("fsm")
subdirs("sim")
subdirs("bitlevel")
subdirs("datapath")
subdirs("synth")
subdirs("netlist")
subdirs("regalloc")
subdirs("vcau")
subdirs("vsim")
subdirs("explore")
subdirs("rtl")
subdirs("core")
