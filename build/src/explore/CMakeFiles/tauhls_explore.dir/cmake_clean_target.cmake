file(REMOVE_RECURSE
  "libtauhls_explore.a"
)
