# Empty dependencies file for tauhls_explore.
# This may be replaced when dependencies are built.
