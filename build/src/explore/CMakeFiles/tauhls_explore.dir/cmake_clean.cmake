file(REMOVE_RECURSE
  "CMakeFiles/tauhls_explore.dir/pareto.cpp.o"
  "CMakeFiles/tauhls_explore.dir/pareto.cpp.o.d"
  "libtauhls_explore.a"
  "libtauhls_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
