# Empty compiler generated dependencies file for tauhls_vsim.
# This may be replaced when dependencies are built.
