file(REMOVE_RECURSE
  "CMakeFiles/tauhls_vsim.dir/elaborate.cpp.o"
  "CMakeFiles/tauhls_vsim.dir/elaborate.cpp.o.d"
  "CMakeFiles/tauhls_vsim.dir/lexer.cpp.o"
  "CMakeFiles/tauhls_vsim.dir/lexer.cpp.o.d"
  "CMakeFiles/tauhls_vsim.dir/parser.cpp.o"
  "CMakeFiles/tauhls_vsim.dir/parser.cpp.o.d"
  "CMakeFiles/tauhls_vsim.dir/simulate.cpp.o"
  "CMakeFiles/tauhls_vsim.dir/simulate.cpp.o.d"
  "libtauhls_vsim.a"
  "libtauhls_vsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_vsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
