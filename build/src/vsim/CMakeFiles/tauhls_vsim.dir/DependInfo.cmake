
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vsim/elaborate.cpp" "src/vsim/CMakeFiles/tauhls_vsim.dir/elaborate.cpp.o" "gcc" "src/vsim/CMakeFiles/tauhls_vsim.dir/elaborate.cpp.o.d"
  "/root/repo/src/vsim/lexer.cpp" "src/vsim/CMakeFiles/tauhls_vsim.dir/lexer.cpp.o" "gcc" "src/vsim/CMakeFiles/tauhls_vsim.dir/lexer.cpp.o.d"
  "/root/repo/src/vsim/parser.cpp" "src/vsim/CMakeFiles/tauhls_vsim.dir/parser.cpp.o" "gcc" "src/vsim/CMakeFiles/tauhls_vsim.dir/parser.cpp.o.d"
  "/root/repo/src/vsim/simulate.cpp" "src/vsim/CMakeFiles/tauhls_vsim.dir/simulate.cpp.o" "gcc" "src/vsim/CMakeFiles/tauhls_vsim.dir/simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
