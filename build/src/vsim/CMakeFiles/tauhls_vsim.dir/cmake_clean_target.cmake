file(REMOVE_RECURSE
  "libtauhls_vsim.a"
)
