
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/analyze.cpp" "src/netlist/CMakeFiles/tauhls_netlist.dir/analyze.cpp.o" "gcc" "src/netlist/CMakeFiles/tauhls_netlist.dir/analyze.cpp.o.d"
  "/root/repo/src/netlist/build.cpp" "src/netlist/CMakeFiles/tauhls_netlist.dir/build.cpp.o" "gcc" "src/netlist/CMakeFiles/tauhls_netlist.dir/build.cpp.o.d"
  "/root/repo/src/netlist/emit.cpp" "src/netlist/CMakeFiles/tauhls_netlist.dir/emit.cpp.o" "gcc" "src/netlist/CMakeFiles/tauhls_netlist.dir/emit.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/tauhls_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/tauhls_netlist.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/tauhls_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fsm/CMakeFiles/tauhls_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tauhls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tauhls_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/tauhls_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
