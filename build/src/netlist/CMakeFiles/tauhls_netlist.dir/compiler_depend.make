# Empty compiler generated dependencies file for tauhls_netlist.
# This may be replaced when dependencies are built.
