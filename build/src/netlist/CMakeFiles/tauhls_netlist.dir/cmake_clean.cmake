file(REMOVE_RECURSE
  "CMakeFiles/tauhls_netlist.dir/analyze.cpp.o"
  "CMakeFiles/tauhls_netlist.dir/analyze.cpp.o.d"
  "CMakeFiles/tauhls_netlist.dir/build.cpp.o"
  "CMakeFiles/tauhls_netlist.dir/build.cpp.o.d"
  "CMakeFiles/tauhls_netlist.dir/emit.cpp.o"
  "CMakeFiles/tauhls_netlist.dir/emit.cpp.o.d"
  "CMakeFiles/tauhls_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tauhls_netlist.dir/netlist.cpp.o.d"
  "libtauhls_netlist.a"
  "libtauhls_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
