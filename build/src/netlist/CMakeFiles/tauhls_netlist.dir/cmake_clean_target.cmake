file(REMOVE_RECURSE
  "libtauhls_netlist.a"
)
