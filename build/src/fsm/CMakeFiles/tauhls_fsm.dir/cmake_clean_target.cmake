file(REMOVE_RECURSE
  "libtauhls_fsm.a"
)
