# Empty compiler generated dependencies file for tauhls_fsm.
# This may be replaced when dependencies are built.
