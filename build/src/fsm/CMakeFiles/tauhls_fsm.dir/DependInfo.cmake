
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fsm/cent_sync.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/cent_sync.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/cent_sync.cpp.o.d"
  "/root/repo/src/fsm/distributed.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/distributed.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/distributed.cpp.o.d"
  "/root/repo/src/fsm/dot.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/dot.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/dot.cpp.o.d"
  "/root/repo/src/fsm/guard.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/guard.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/guard.cpp.o.d"
  "/root/repo/src/fsm/kiss.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/kiss.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/kiss.cpp.o.d"
  "/root/repo/src/fsm/machine.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/machine.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/machine.cpp.o.d"
  "/root/repo/src/fsm/minimize.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/minimize.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/minimize.cpp.o.d"
  "/root/repo/src/fsm/product.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/product.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/product.cpp.o.d"
  "/root/repo/src/fsm/signal.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/signal.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/signal.cpp.o.d"
  "/root/repo/src/fsm/signal_opt.cpp" "src/fsm/CMakeFiles/tauhls_fsm.dir/signal_opt.cpp.o" "gcc" "src/fsm/CMakeFiles/tauhls_fsm.dir/signal_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/tauhls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tauhls_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
