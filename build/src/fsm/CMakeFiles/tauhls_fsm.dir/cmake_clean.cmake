file(REMOVE_RECURSE
  "CMakeFiles/tauhls_fsm.dir/cent_sync.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/cent_sync.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/distributed.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/distributed.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/dot.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/dot.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/guard.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/guard.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/kiss.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/kiss.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/machine.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/machine.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/minimize.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/minimize.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/product.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/product.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/signal.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/signal.cpp.o.d"
  "CMakeFiles/tauhls_fsm.dir/signal_opt.cpp.o"
  "CMakeFiles/tauhls_fsm.dir/signal_opt.cpp.o.d"
  "libtauhls_fsm.a"
  "libtauhls_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
