file(REMOVE_RECURSE
  "libtauhls_regalloc.a"
)
