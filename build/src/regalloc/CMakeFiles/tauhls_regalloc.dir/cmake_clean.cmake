file(REMOVE_RECURSE
  "CMakeFiles/tauhls_regalloc.dir/leftedge.cpp.o"
  "CMakeFiles/tauhls_regalloc.dir/leftedge.cpp.o.d"
  "CMakeFiles/tauhls_regalloc.dir/lifetime.cpp.o"
  "CMakeFiles/tauhls_regalloc.dir/lifetime.cpp.o.d"
  "libtauhls_regalloc.a"
  "libtauhls_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
