# Empty compiler generated dependencies file for tauhls_regalloc.
# This may be replaced when dependencies are built.
