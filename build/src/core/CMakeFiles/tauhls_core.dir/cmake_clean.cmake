file(REMOVE_RECURSE
  "CMakeFiles/tauhls_core.dir/cli.cpp.o"
  "CMakeFiles/tauhls_core.dir/cli.cpp.o.d"
  "CMakeFiles/tauhls_core.dir/flow.cpp.o"
  "CMakeFiles/tauhls_core.dir/flow.cpp.o.d"
  "CMakeFiles/tauhls_core.dir/json.cpp.o"
  "CMakeFiles/tauhls_core.dir/json.cpp.o.d"
  "CMakeFiles/tauhls_core.dir/report.cpp.o"
  "CMakeFiles/tauhls_core.dir/report.cpp.o.d"
  "libtauhls_core.a"
  "libtauhls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
