file(REMOVE_RECURSE
  "libtauhls_core.a"
)
