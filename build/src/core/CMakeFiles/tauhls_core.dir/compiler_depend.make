# Empty compiler generated dependencies file for tauhls_core.
# This may be replaced when dependencies are built.
