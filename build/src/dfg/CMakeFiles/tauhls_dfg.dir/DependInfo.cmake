
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/analysis.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/analysis.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/analysis.cpp.o.d"
  "/root/repo/src/dfg/benchmarks.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/benchmarks.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/benchmarks.cpp.o.d"
  "/root/repo/src/dfg/dot.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/dot.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/dot.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/op.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/op.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/op.cpp.o.d"
  "/root/repo/src/dfg/random.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/random.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/random.cpp.o.d"
  "/root/repo/src/dfg/textio.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/textio.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/textio.cpp.o.d"
  "/root/repo/src/dfg/transform.cpp" "src/dfg/CMakeFiles/tauhls_dfg.dir/transform.cpp.o" "gcc" "src/dfg/CMakeFiles/tauhls_dfg.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
