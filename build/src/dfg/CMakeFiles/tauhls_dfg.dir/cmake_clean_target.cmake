file(REMOVE_RECURSE
  "libtauhls_dfg.a"
)
