# Empty dependencies file for tauhls_dfg.
# This may be replaced when dependencies are built.
