file(REMOVE_RECURSE
  "CMakeFiles/tauhls_dfg.dir/analysis.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/analysis.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/benchmarks.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/benchmarks.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/dot.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/dot.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/graph.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/op.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/op.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/random.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/random.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/textio.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/textio.cpp.o.d"
  "CMakeFiles/tauhls_dfg.dir/transform.cpp.o"
  "CMakeFiles/tauhls_dfg.dir/transform.cpp.o.d"
  "libtauhls_dfg.a"
  "libtauhls_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
