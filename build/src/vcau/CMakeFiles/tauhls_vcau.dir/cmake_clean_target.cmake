file(REMOVE_RECURSE
  "libtauhls_vcau.a"
)
