file(REMOVE_RECURSE
  "CMakeFiles/tauhls_vcau.dir/controller.cpp.o"
  "CMakeFiles/tauhls_vcau.dir/controller.cpp.o.d"
  "CMakeFiles/tauhls_vcau.dir/interp.cpp.o"
  "CMakeFiles/tauhls_vcau.dir/interp.cpp.o.d"
  "CMakeFiles/tauhls_vcau.dir/makespan.cpp.o"
  "CMakeFiles/tauhls_vcau.dir/makespan.cpp.o.d"
  "CMakeFiles/tauhls_vcau.dir/stats.cpp.o"
  "CMakeFiles/tauhls_vcau.dir/stats.cpp.o.d"
  "CMakeFiles/tauhls_vcau.dir/unit.cpp.o"
  "CMakeFiles/tauhls_vcau.dir/unit.cpp.o.d"
  "libtauhls_vcau.a"
  "libtauhls_vcau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_vcau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
