# Empty dependencies file for tauhls_vcau.
# This may be replaced when dependencies are built.
