file(REMOVE_RECURSE
  "CMakeFiles/tauhls_logic.dir/cover.cpp.o"
  "CMakeFiles/tauhls_logic.dir/cover.cpp.o.d"
  "CMakeFiles/tauhls_logic.dir/cube.cpp.o"
  "CMakeFiles/tauhls_logic.dir/cube.cpp.o.d"
  "CMakeFiles/tauhls_logic.dir/minimize.cpp.o"
  "CMakeFiles/tauhls_logic.dir/minimize.cpp.o.d"
  "CMakeFiles/tauhls_logic.dir/truth_table.cpp.o"
  "CMakeFiles/tauhls_logic.dir/truth_table.cpp.o.d"
  "libtauhls_logic.a"
  "libtauhls_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
