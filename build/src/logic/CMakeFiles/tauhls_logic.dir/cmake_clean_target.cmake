file(REMOVE_RECURSE
  "libtauhls_logic.a"
)
