# Empty compiler generated dependencies file for tauhls_logic.
# This may be replaced when dependencies are built.
