
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/cover.cpp" "src/logic/CMakeFiles/tauhls_logic.dir/cover.cpp.o" "gcc" "src/logic/CMakeFiles/tauhls_logic.dir/cover.cpp.o.d"
  "/root/repo/src/logic/cube.cpp" "src/logic/CMakeFiles/tauhls_logic.dir/cube.cpp.o" "gcc" "src/logic/CMakeFiles/tauhls_logic.dir/cube.cpp.o.d"
  "/root/repo/src/logic/minimize.cpp" "src/logic/CMakeFiles/tauhls_logic.dir/minimize.cpp.o" "gcc" "src/logic/CMakeFiles/tauhls_logic.dir/minimize.cpp.o.d"
  "/root/repo/src/logic/truth_table.cpp" "src/logic/CMakeFiles/tauhls_logic.dir/truth_table.cpp.o" "gcc" "src/logic/CMakeFiles/tauhls_logic.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
