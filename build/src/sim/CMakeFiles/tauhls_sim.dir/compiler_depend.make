# Empty compiler generated dependencies file for tauhls_sim.
# This may be replaced when dependencies are built.
