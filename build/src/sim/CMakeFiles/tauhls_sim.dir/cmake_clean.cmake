file(REMOVE_RECURSE
  "CMakeFiles/tauhls_sim.dir/classes.cpp.o"
  "CMakeFiles/tauhls_sim.dir/classes.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/distribution.cpp.o"
  "CMakeFiles/tauhls_sim.dir/distribution.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/gantt.cpp.o"
  "CMakeFiles/tauhls_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/interp.cpp.o"
  "CMakeFiles/tauhls_sim.dir/interp.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/makespan.cpp.o"
  "CMakeFiles/tauhls_sim.dir/makespan.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/stats.cpp.o"
  "CMakeFiles/tauhls_sim.dir/stats.cpp.o.d"
  "CMakeFiles/tauhls_sim.dir/streaming.cpp.o"
  "CMakeFiles/tauhls_sim.dir/streaming.cpp.o.d"
  "libtauhls_sim.a"
  "libtauhls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
