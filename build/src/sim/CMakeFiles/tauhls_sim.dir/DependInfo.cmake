
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/classes.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/classes.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/classes.cpp.o.d"
  "/root/repo/src/sim/distribution.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/distribution.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/distribution.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/interp.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/interp.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/interp.cpp.o.d"
  "/root/repo/src/sim/makespan.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/makespan.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/makespan.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/stats.cpp.o.d"
  "/root/repo/src/sim/streaming.cpp" "src/sim/CMakeFiles/tauhls_sim.dir/streaming.cpp.o" "gcc" "src/sim/CMakeFiles/tauhls_sim.dir/streaming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fsm/CMakeFiles/tauhls_fsm.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/tauhls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tauhls_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
