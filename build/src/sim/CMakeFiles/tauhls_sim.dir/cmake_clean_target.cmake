file(REMOVE_RECURSE
  "libtauhls_sim.a"
)
