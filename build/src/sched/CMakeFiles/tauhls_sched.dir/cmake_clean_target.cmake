file(REMOVE_RECURSE
  "libtauhls_sched.a"
)
