# Empty compiler generated dependencies file for tauhls_sched.
# This may be replaced when dependencies are built.
