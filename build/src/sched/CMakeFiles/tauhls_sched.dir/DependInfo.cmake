
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocation.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/allocation.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/allocation.cpp.o.d"
  "/root/repo/src/sched/binding.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/binding.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/binding.cpp.o.d"
  "/root/repo/src/sched/clique.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/clique.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/clique.cpp.o.d"
  "/root/repo/src/sched/scheduled_dfg.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/scheduled_dfg.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/scheduled_dfg.cpp.o.d"
  "/root/repo/src/sched/steps.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/steps.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/steps.cpp.o.d"
  "/root/repo/src/sched/taubm_dfg.cpp" "src/sched/CMakeFiles/tauhls_sched.dir/taubm_dfg.cpp.o" "gcc" "src/sched/CMakeFiles/tauhls_sched.dir/taubm_dfg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/tau/CMakeFiles/tauhls_tau.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
