file(REMOVE_RECURSE
  "CMakeFiles/tauhls_sched.dir/allocation.cpp.o"
  "CMakeFiles/tauhls_sched.dir/allocation.cpp.o.d"
  "CMakeFiles/tauhls_sched.dir/binding.cpp.o"
  "CMakeFiles/tauhls_sched.dir/binding.cpp.o.d"
  "CMakeFiles/tauhls_sched.dir/clique.cpp.o"
  "CMakeFiles/tauhls_sched.dir/clique.cpp.o.d"
  "CMakeFiles/tauhls_sched.dir/scheduled_dfg.cpp.o"
  "CMakeFiles/tauhls_sched.dir/scheduled_dfg.cpp.o.d"
  "CMakeFiles/tauhls_sched.dir/steps.cpp.o"
  "CMakeFiles/tauhls_sched.dir/steps.cpp.o.d"
  "CMakeFiles/tauhls_sched.dir/taubm_dfg.cpp.o"
  "CMakeFiles/tauhls_sched.dir/taubm_dfg.cpp.o.d"
  "libtauhls_sched.a"
  "libtauhls_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
