file(REMOVE_RECURSE
  "libtauhls_common.a"
)
