# Empty dependencies file for tauhls_common.
# This may be replaced when dependencies are built.
