file(REMOVE_RECURSE
  "CMakeFiles/tauhls_common.dir/error.cpp.o"
  "CMakeFiles/tauhls_common.dir/error.cpp.o.d"
  "CMakeFiles/tauhls_common.dir/strings.cpp.o"
  "CMakeFiles/tauhls_common.dir/strings.cpp.o.d"
  "libtauhls_common.a"
  "libtauhls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
