file(REMOVE_RECURSE
  "libtauhls_datapath.a"
)
