file(REMOVE_RECURSE
  "CMakeFiles/tauhls_datapath.dir/engine.cpp.o"
  "CMakeFiles/tauhls_datapath.dir/engine.cpp.o.d"
  "CMakeFiles/tauhls_datapath.dir/units.cpp.o"
  "CMakeFiles/tauhls_datapath.dir/units.cpp.o.d"
  "CMakeFiles/tauhls_datapath.dir/value.cpp.o"
  "CMakeFiles/tauhls_datapath.dir/value.cpp.o.d"
  "libtauhls_datapath.a"
  "libtauhls_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
