# Empty compiler generated dependencies file for tauhls_datapath.
# This may be replaced when dependencies are built.
