file(REMOVE_RECURSE
  "CMakeFiles/tauhls_rtl.dir/testbench.cpp.o"
  "CMakeFiles/tauhls_rtl.dir/testbench.cpp.o.d"
  "CMakeFiles/tauhls_rtl.dir/verilog.cpp.o"
  "CMakeFiles/tauhls_rtl.dir/verilog.cpp.o.d"
  "libtauhls_rtl.a"
  "libtauhls_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
