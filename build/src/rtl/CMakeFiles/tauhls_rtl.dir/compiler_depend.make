# Empty compiler generated dependencies file for tauhls_rtl.
# This may be replaced when dependencies are built.
