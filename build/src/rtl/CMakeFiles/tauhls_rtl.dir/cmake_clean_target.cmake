file(REMOVE_RECURSE
  "libtauhls_rtl.a"
)
