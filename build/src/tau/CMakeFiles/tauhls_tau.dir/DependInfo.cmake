
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tau/clocking.cpp" "src/tau/CMakeFiles/tauhls_tau.dir/clocking.cpp.o" "gcc" "src/tau/CMakeFiles/tauhls_tau.dir/clocking.cpp.o.d"
  "/root/repo/src/tau/library.cpp" "src/tau/CMakeFiles/tauhls_tau.dir/library.cpp.o" "gcc" "src/tau/CMakeFiles/tauhls_tau.dir/library.cpp.o.d"
  "/root/repo/src/tau/unit.cpp" "src/tau/CMakeFiles/tauhls_tau.dir/unit.cpp.o" "gcc" "src/tau/CMakeFiles/tauhls_tau.dir/unit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfg/CMakeFiles/tauhls_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tauhls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
