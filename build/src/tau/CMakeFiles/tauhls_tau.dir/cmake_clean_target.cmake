file(REMOVE_RECURSE
  "libtauhls_tau.a"
)
