# Empty dependencies file for tauhls_tau.
# This may be replaced when dependencies are built.
