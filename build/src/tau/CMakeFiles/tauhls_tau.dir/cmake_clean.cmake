file(REMOVE_RECURSE
  "CMakeFiles/tauhls_tau.dir/clocking.cpp.o"
  "CMakeFiles/tauhls_tau.dir/clocking.cpp.o.d"
  "CMakeFiles/tauhls_tau.dir/library.cpp.o"
  "CMakeFiles/tauhls_tau.dir/library.cpp.o.d"
  "CMakeFiles/tauhls_tau.dir/unit.cpp.o"
  "CMakeFiles/tauhls_tau.dir/unit.cpp.o.d"
  "libtauhls_tau.a"
  "libtauhls_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tauhls_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
