# Empty dependencies file for rtl_cosim.
# This may be replaced when dependencies are built.
