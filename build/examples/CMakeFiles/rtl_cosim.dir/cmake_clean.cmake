file(REMOVE_RECURSE
  "CMakeFiles/rtl_cosim.dir/rtl_cosim.cpp.o"
  "CMakeFiles/rtl_cosim.dir/rtl_cosim.cpp.o.d"
  "rtl_cosim"
  "rtl_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
