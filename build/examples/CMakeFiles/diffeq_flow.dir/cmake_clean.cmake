file(REMOVE_RECURSE
  "CMakeFiles/diffeq_flow.dir/diffeq_flow.cpp.o"
  "CMakeFiles/diffeq_flow.dir/diffeq_flow.cpp.o.d"
  "diffeq_flow"
  "diffeq_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffeq_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
