# Empty dependencies file for diffeq_flow.
# This may be replaced when dependencies are built.
