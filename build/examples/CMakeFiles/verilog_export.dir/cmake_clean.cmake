file(REMOVE_RECURSE
  "CMakeFiles/verilog_export.dir/verilog_export.cpp.o"
  "CMakeFiles/verilog_export.dir/verilog_export.cpp.o.d"
  "verilog_export"
  "verilog_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verilog_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
