# Empty compiler generated dependencies file for verilog_export.
# This may be replaced when dependencies are built.
