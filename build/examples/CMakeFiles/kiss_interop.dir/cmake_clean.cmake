file(REMOVE_RECURSE
  "CMakeFiles/kiss_interop.dir/kiss_interop.cpp.o"
  "CMakeFiles/kiss_interop.dir/kiss_interop.cpp.o.d"
  "kiss_interop"
  "kiss_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kiss_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
