# Empty compiler generated dependencies file for kiss_interop.
# This may be replaced when dependencies are built.
