# Empty compiler generated dependencies file for fir_pipeline.
# This may be replaced when dependencies are built.
