# Empty dependencies file for explore_pareto.
# This may be replaced when dependencies are built.
