file(REMOVE_RECURSE
  "CMakeFiles/explore_pareto.dir/explore_pareto.cpp.o"
  "CMakeFiles/explore_pareto.dir/explore_pareto.cpp.o.d"
  "explore_pareto"
  "explore_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
