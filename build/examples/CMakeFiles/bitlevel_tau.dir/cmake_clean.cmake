file(REMOVE_RECURSE
  "CMakeFiles/bitlevel_tau.dir/bitlevel_tau.cpp.o"
  "CMakeFiles/bitlevel_tau.dir/bitlevel_tau.cpp.o.d"
  "bitlevel_tau"
  "bitlevel_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitlevel_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
