# Empty compiler generated dependencies file for bitlevel_tau.
# This may be replaced when dependencies are built.
