#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"
#include "rtl/verilog.hpp"
#include "testutil.hpp"

namespace tauhls::rtl {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

fsm::DistributedControlUnit diffeqDcu() {
  auto sdfg = sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary());
  return fsm::optimizeSignals(fsm::buildDistributed(sdfg));
}

TEST(Verilog, FsmModuleStructure) {
  fsm::DistributedControlUnit dcu = diffeqDcu();
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  std::string v = emitFsm(f, "ctrl0");
  EXPECT_NE(v.find("module ctrl0 ("), std::string::npos);
  EXPECT_NE(v.find("input  wire clk"), std::string::npos);
  EXPECT_NE(v.find("input  wire rst"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("always @*"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // Every state gets a localparam; every output a reg port.
  for (std::size_t s = 0; s < f.numStates(); ++s) {
    EXPECT_NE(v.find("ST_" + f.stateName(static_cast<int>(s))), std::string::npos);
  }
  for (const std::string& out : f.outputs()) {
    EXPECT_NE(v.find("output reg  " + out), std::string::npos);
  }
  // Default arm guards against illegal encodings.
  EXPECT_NE(v.find("default: state_next"), std::string::npos);
}

TEST(Verilog, GuardsBecomeBooleanExpressions) {
  fsm::DistributedControlUnit dcu = diffeqDcu();
  // A telescopic controller has a !C_mult transition.
  std::string v;
  for (const fsm::UnitController& c : dcu.controllers) {
    if (c.telescopic) {
      v = emitFsm(c.fsm, "m");
      break;
    }
  }
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.find("!C_mult"), std::string::npos);
  EXPECT_NE(v.find("if ("), std::string::npos);
  EXPECT_NE(v.find("else if ("), std::string::npos);
}

TEST(Verilog, LatchModuleSemantics) {
  std::string v = emitCompletionLatchModule();
  EXPECT_NE(v.find("module tauhls_completion_latch"), std::string::npos);
  EXPECT_NE(v.find("rst || restart"), std::string::npos);
  EXPECT_NE(v.find("held | pulse"), std::string::npos);
}

TEST(Verilog, TopWiresLatchesAndControllers) {
  fsm::DistributedControlUnit dcu = diffeqDcu();
  std::string v = emitDistributedTop(dcu, "dcu_top");
  EXPECT_NE(v.find("module dcu_top ("), std::string::npos);
  EXPECT_NE(v.find("input  wire restart"), std::string::npos);
  // One latch instance per consumed completion signal.
  std::size_t latchCount = 0;
  std::size_t pos = 0;
  while ((pos = v.find("tauhls_completion_latch u_latch_", pos)) !=
         std::string::npos) {
    ++latchCount;
    pos += 1;
  }
  EXPECT_EQ(latchCount, dcu.consumersOf.size());
  // Every controller is instantiated; consumed inputs ride the _level wires.
  for (const fsm::UnitController& c : dcu.controllers) {
    EXPECT_NE(v.find(c.fsm.name() + " u_" + c.fsm.name()), std::string::npos);
  }
  EXPECT_NE(v.find("_level)"), std::string::npos);
  EXPECT_NE(v.find("_pulse)"), std::string::npos);
  // External completion inputs are ports.
  for (const std::string& in : dcu.externalInputs) {
    EXPECT_NE(v.find("input  wire " + in), std::string::npos);
  }
}

TEST(Verilog, PackageIsSelfContained) {
  fsm::DistributedControlUnit dcu = diffeqDcu();
  std::string v = emitPackage(dcu, "dcu_diffeq");
  // Exactly one latch primitive definition, all controllers, one top.
  EXPECT_EQ(v.find("module tauhls_completion_latch"),
            v.rfind("module tauhls_completion_latch"));
  for (const fsm::UnitController& c : dcu.controllers) {
    EXPECT_NE(v.find("module " + c.fsm.name() + " ("), std::string::npos);
  }
  EXPECT_NE(v.find("module dcu_diffeq ("), std::string::npos);
  // Balanced module/endmodule counts.
  std::size_t modules = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = v.find("\nmodule ", pos)) != std::string::npos;
       ++pos) {
    ++modules;
  }
  for (std::size_t pos = 0; (pos = v.find("endmodule", pos)) != std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(ends, modules);
}

TEST(Verilog, UnconditionalTransitionHasNoIf) {
  // A one-op fixed-unit controller is a single unconditional self-loop.
  dfg::Dfg g("one_add");
  auto a = g.addInput("a");
  auto b = g.addInput("b");
  auto s = g.addOp(dfg::OpKind::Add, {a, b}, "s0");
  g.markOutput(s);
  auto sdfg = sched::scheduleAndBind(g, Allocation{{ResourceClass::Adder, 1}},
                                     tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(sdfg);
  std::string v = emitFsm(dcu.controllers[0].fsm, "adder_ctrl");
  // The combinational block (after "always @*") needs no guard at all; the
  // only "if" in the module is the reset in the sequential block.
  EXPECT_EQ(v.find("if (", v.find("always @*")), std::string::npos);
  EXPECT_NE(v.find("RE_s0 = 1'b1;"), std::string::npos);
}

}  // namespace
}  // namespace tauhls::rtl
