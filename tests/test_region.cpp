// Hierarchical regions: textio round-trips, activation traces, composed
// scheduling/control/simulation cross-checks against the flat-inlined
// unrolled reference, the new verify rules (DFG009/DFG010, SCH012,
// MDL009/MDL010), the hierarchical flow, and the CLI routing.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/cli.hpp"
#include "core/hier_flow.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/dot.hpp"
#include "dfg/random.hpp"
#include "dfg/region.hpp"
#include "dfg/textio.hpp"
#include "fsm/hierarchical.hpp"
#include "sched/region_schedule.hpp"
#include "sim/region_sim.hpp"
#include "verify/region_check.hpp"

namespace tauhls {
namespace {

using dfg::BranchChoices;
using dfg::RegionProgram;
using dfg::ResourceClass;

// ---------------------------------------------------------------- textio --

TEST(RegionTextio, RoundTrip) {
  RegionProgram p = dfg::parseProgram(dfg::firIirLoopText(), "fir_iir_loop");
  const std::string printed = dfg::printProgram(p);
  RegionProgram q = dfg::parseProgram(printed, "fir_iir_loop");
  EXPECT_EQ(printed, dfg::printProgram(q));
  EXPECT_NO_THROW(dfg::validateRegionProgram(q));
}

TEST(RegionTextio, BlockFreeInputStaysFlat) {
  const std::string text = "in a, b\nm = a * b\ns = m + a\nout s\n";
  RegionProgram p = dfg::parseProgram(text, "flat");
  EXPECT_TRUE(p.isFlat());
  dfg::Dfg g = dfg::parseDfg(text, "flat");
  EXPECT_EQ(dfg::printDfg(p.root.body), dfg::printDfg(g));
  EXPECT_EQ(dfg::printProgram(p), dfg::printDfg(g));
}

TEST(RegionTextio, RejectsMalformedBlocks) {
  EXPECT_THROW(dfg::parseProgram("in a\n{\nx = a + a\n}\nout x\n"), Error);
  EXPECT_THROW(dfg::parseProgram("in a\nloop {\nx = a + a\n}\nout x\n"), Error);
  // `if` requires an explicit else branch.
  EXPECT_THROW(dfg::parseProgram("in a, c\nif c {\nx = a + a\n}\nout x\n"),
               Error);
}

// ------------------------------------------------------- structure & paths --

TEST(RegionStructure, FirIirLoopShape) {
  RegionProgram p = dfg::firIirLoop();
  std::vector<std::string> paths;
  for (const dfg::LeafRef& leaf : dfg::collectLeaves(p)) paths.push_back(leaf.path);
  EXPECT_EQ(paths, (std::vector<std::string>{"s0", "s1_l_s0", "s2", "s3_t_s0",
                                             "s3_e_s0"}));
  EXPECT_EQ(dfg::condRegionPaths(p), std::vector<std::string>{"s3"});

  // Both branches appear in the sequencer's static activation list; the
  // dynamic trace under the default (then) choices runs exactly one of them.
  EXPECT_EQ(fsm::sequencerActivations(p).size(), 8u);
  BranchChoices then = dfg::completeBranchChoices(p, {});
  ASSERT_EQ(then.size(), 1u);
  EXPECT_TRUE(then.at("s3"));
  std::vector<std::string> trace = dfg::activationTrace(p, then);
  EXPECT_EQ(trace,
            (std::vector<std::string>{"s0", "s1_l_s0", "s1_l_s0", "s1_l_s0",
                                      "s1_l_s0", "s2", "s3_t_s0"}));
  std::vector<std::string> other = dfg::activationTrace(p, {{"s3", false}});
  EXPECT_EQ(other.back(), "s3_e_s0");
}

TEST(RegionStructure, FlattenMatchesTrace) {
  RegionProgram p = dfg::firIirLoop();
  BranchChoices choices = dfg::completeBranchChoices(p, {});
  dfg::Dfg flat = dfg::flattenProgram(p, choices);
  EXPECT_NO_THROW(flat.validate());
  // 17 TAU multiplications along the then-trace: 1 + 4*3 + 3 + 1.
  EXPECT_EQ(flat.opsOfClass(ResourceClass::Multiplier).size(), 17u);
  // Every activation contributes its ops under a distinct a<k>_ prefix.
  std::size_t total = 0;
  for (const std::string& path : dfg::activationTrace(p, choices)) {
    for (const dfg::LeafRef& leaf : dfg::collectLeaves(p)) {
      if (leaf.path == path) total += leaf.region->body.numOps();
    }
  }
  EXPECT_EQ(flat.numOps(), total);
}

// ------------------------------------------------ composed vs flat (sim) --

TEST(RegionSim, ComposedHistogramMatchesFlatReference) {
  RegionProgram p = dfg::firIirLoop();
  const dfg::Allocation alloc = dfg::firIirLoopAllocation();
  const tau::ResourceLibrary lib = tau::paperLibrary();
  for (sched::BindingStrategy strategy :
       {sched::BindingStrategy::LeftEdge, sched::BindingStrategy::CliqueCover}) {
    sched::RegionSchedule rs = sched::scheduleRegions(p, alloc, lib, strategy);
    for (bool thenBranch : {true, false}) {
      BranchChoices choices = {{"s3", thenBranch}};
      sched::ScheduledDfg flat = sched::flattenScheduled(rs, choices);
      for (sim::ControlStyle style :
           {sim::ControlStyle::Distributed, sim::ControlStyle::CentSync}) {
        sim::MakespanHistogram composed = sim::composedHistogram(rs, style, choices);
        sim::MakespanHistogram reference = sim::makespanHistogram(flat, style);
        EXPECT_EQ(composed.tauCount, reference.tauCount);
        // Bucket-for-bucket integer identity => every statistic derived
        // through the shared weighting function is bit-identical.
        EXPECT_EQ(composed.buckets, reference.buckets);
        for (double P : {0.9, 0.7, 0.5}) {
          EXPECT_EQ(sim::histogramAverageCycles(composed, P),
                    sim::histogramAverageCycles(reference, P));
        }
        EXPECT_EQ(sim::histogramBestCycles(composed),
                  sim::histogramBestCycles(reference));
        EXPECT_EQ(sim::histogramWorstCycles(composed),
                  sim::histogramWorstCycles(reference));
      }
    }
  }
}

TEST(RegionSim, BitIdenticalAcrossThreadCounts) {
  RegionProgram p = dfg::firIirLoop();
  sched::RegionSchedule rs = sched::scheduleRegions(
      p, dfg::firIirLoopAllocation(), tau::paperLibrary());
  BranchChoices choices = dfg::completeBranchChoices(p, {});
  sched::ScheduledDfg flat = sched::flattenScheduled(rs, choices);
  const std::vector<double> ps = {0.9, 0.7, 0.5};

  std::vector<sim::MakespanHistogram> flatHists;
  std::vector<sim::LatencyComparison> latencies;
  for (int threads : {1, 2, 8}) {
    common::setGlobalThreadCount(threads);
    flatHists.push_back(
        sim::makespanHistogram(flat, sim::ControlStyle::Distributed));
    latencies.push_back(sim::composedLatency(rs, choices, ps));
  }
  common::setGlobalThreadCount(common::configuredThreadCount());

  for (std::size_t i = 1; i < flatHists.size(); ++i) {
    EXPECT_EQ(flatHists[i].buckets, flatHists[0].buckets);
    EXPECT_EQ(latencies[i].tau.averageNs, latencies[0].tau.averageNs);
    EXPECT_EQ(latencies[i].dist.averageNs, latencies[0].dist.averageNs);
    EXPECT_EQ(latencies[i].enhancementPercent, latencies[0].enhancementPercent);
  }
  EXPECT_EQ(latencies[0].dist.bestNs, latencies[0].tau.bestNs);  // all-SD case
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_LE(latencies[0].dist.averageNs[i], latencies[0].tau.averageNs[i]);
  }
}

// --------------------------------------------------------- sequencer FSM --

TEST(RegionSequencer, WaitStatesAndHandshake) {
  RegionProgram p = dfg::firIirLoop();
  fsm::Fsm seq = fsm::buildRegionSequencer(p);
  std::vector<std::string> acts = fsm::sequencerActivations(p);
  EXPECT_EQ(seq.numStates(), acts.size() + 1);  // INIT + one wait per activation
  for (std::size_t k = 0; k < acts.size(); ++k) {
    EXPECT_GE(seq.findState("W" + std::to_string(k) + "_" + acts[k]), 0)
        << "missing wait state for activation " << k;
  }
  EXPECT_EQ(fsm::regionStartSignal("s1_l"), "ST_s1_l");
  EXPECT_EQ(fsm::regionDoneSignal("s1_l"), "DN_s1_l");
  EXPECT_EQ(fsm::branchSelectSignal("s3"), "SEL_s3");
}

TEST(RegionSequencer, CondFirstProgram) {
  RegionProgram p = dfg::parseProgram(
      "in a, b, s\nif s {\nx = a * b\n} else {\nx = a + b\n}\nout x\n", "pick");
  dfg::validateRegionProgram(p);
  EXPECT_NO_THROW(fsm::buildRegionSequencer(p));
  std::vector<std::string> cond = dfg::condRegionPaths(p);
  ASSERT_EQ(cond.size(), 1u);
  std::vector<std::string> trace = dfg::activationTrace(p, {{cond[0], false}});
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_NE(trace[0].find("_e"), std::string::npos) << trace[0];
}

// ------------------------------------------------------- new verify rules --

TEST(RegionVerify, Dfg009FiresOnBadStructure) {
  RegionProgram p = dfg::firIirLoop();
  p.outputs.push_back("never_defined");
  EXPECT_THROW(dfg::validateRegionProgram(p), Error);
  verify::Report report;
  verify::checkRegionProgram(p, report);
  EXPECT_TRUE(report.has("DFG009"));
  EXPECT_TRUE(report.hasErrors());

  // Bad conditional arity is also DFG009.
  RegionProgram q = dfg::firIirLoop();
  q.root.children[3].children.pop_back();
  verify::Report report2;
  verify::checkRegionProgram(q, report2);
  EXPECT_TRUE(report2.has("DFG009"));
}

TEST(RegionVerify, Dfg010FiresOnBadTripCount) {
  RegionProgram p = dfg::firIirLoop();
  p.root.children[1].tripCount = 0;
  verify::Report report;
  verify::checkRegionProgram(p, report);
  EXPECT_TRUE(report.has("DFG010"));
}

TEST(RegionVerify, CleanProgramHasNoStructureErrors) {
  verify::Report report;
  verify::checkRegionProgram(dfg::firIirLoop(), report);
  EXPECT_FALSE(report.has("DFG009"));
  EXPECT_FALSE(report.has("DFG010"));
  EXPECT_FALSE(report.hasErrors());
}

TEST(RegionVerify, Sch012FiresOnSharedHardwareMismatch) {
  RegionProgram p = dfg::firIirLoop();
  sched::RegionSchedule rs = sched::scheduleRegions(
      p, dfg::firIirLoopAllocation(), tau::paperLibrary());
  {
    verify::Report report;
    verify::checkRegionSchedule(rs, report);
    EXPECT_FALSE(report.has("SCH012")) << renderText(report);
  }
  {
    // One leaf claiming a different clock period breaks the shared clock.
    sched::RegionSchedule bad = rs;
    bad.leaves.begin()->second.clockNs += 1.0;
    verify::Report report;
    verify::checkRegionSchedule(bad, report);
    EXPECT_TRUE(report.has("SCH012"));
  }
  {
    // A binding using more units than the shared allocation provides.
    sched::RegionSchedule bad = rs;
    bad.allocation[ResourceClass::Multiplier] = 1;
    verify::Report report;
    verify::checkRegionSchedule(bad, report);
    EXPECT_TRUE(report.has("SCH012"));
  }
}

TEST(RegionVerify, Mdl009FiresOnBrokenHandshake) {
  RegionProgram p = dfg::firIirLoop();
  sched::RegionSchedule rs = sched::scheduleRegions(
      p, dfg::firIirLoopAllocation(), tau::paperLibrary());
  fsm::HierarchicalControlUnit hcu = fsm::buildHierarchicalControl(rs);
  {
    verify::Report report;
    verify::checkComposedControl(hcu, p, report);
    EXPECT_FALSE(report.has("MDL009")) << renderText(report);
    ASSERT_TRUE(report.has("MDL010"));
    EXPECT_EQ(report.withCode("MDL010")[0].severity, verify::Severity::Info);
  }
  {
    // A sequencer built for a different program misses this program's wait
    // states entirely -- the handshake check must reject it.
    fsm::HierarchicalControlUnit broken = hcu;
    broken.sequencer = fsm::buildRegionSequencer(dfg::parseProgram(
        "in a\nloop 2 {\nx = a + a\n}\nout x\n", "other"));
    verify::Report report;
    verify::checkComposedControl(broken, p, report);
    EXPECT_TRUE(report.has("MDL009"));
  }
}

// ------------------------------------------------------------- hier flow --

core::FlowConfig regionFlowConfig() {
  core::FlowConfig cfg;
  cfg.allocation = dfg::firIirLoopAllocation();
  cfg.synthesizeArea = false;
  return cfg;
}

TEST(HierFlow, EndToEndOnFirIirLoop) {
  core::HierFlowResult r = core::runHierFlow(dfg::firIirLoop(), regionFlowConfig());
  EXPECT_EQ(r.schedule.leaves.size(), 5u);
  EXPECT_EQ(r.activations.size(), 8u);
  EXPECT_EQ(r.totalTauOps, 17);
  EXPECT_FALSE(r.diagnostics.hasErrors()) << renderText(r.diagnostics);
  EXPECT_TRUE(r.diagnostics.has("MDL010"));
  ASSERT_EQ(r.latency.enhancementPercent.size(), 3u);
  for (double e : r.latency.enhancementPercent) EXPECT_GE(e, 0.0);
  EXPECT_GT(r.latency.dist.worstNs, r.latency.dist.bestNs);
}

TEST(HierFlow, EditingOneLeafRecompilesOnlyThatRegion) {
  auto cache = std::make_shared<core::ArtifactCache>();
  core::FlowConfig cfg = regionFlowConfig();
  core::runHierFlow(dfg::firIirLoop(), cfg, {}, cache);
  const core::CacheStats first = cache->stats();
  EXPECT_GT(first.misses, 0u);

  // Same program again: everything is a cache hit.
  core::runHierFlow(dfg::firIirLoop(), cfg, {}, cache);
  const core::CacheStats second = cache->stats();
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_GT(second.hits, first.hits);

  // Edit only the else branch: the four untouched leaves stay cached, so the
  // recompile costs at most one leaf's share of the original pass runs.
  std::string text = dfg::firIirLoopText();
  const std::string from = "y = r1 + g0";
  text.replace(text.find(from), from.size(), "y = g0 + r1");
  RegionProgram edited = dfg::parseProgram(text, "fir_iir_loop");
  dfg::validateRegionProgram(edited);
  core::runHierFlow(edited, cfg, {}, cache);
  const core::CacheStats third = cache->stats();
  EXPECT_GT(third.misses, second.misses);
  EXPECT_LE(third.misses - second.misses, first.misses / 4);
}

TEST(HierFlow, ComposedLatencyMatchesFlatHistogramStatistics) {
  core::FlowConfig cfg = regionFlowConfig();
  core::HierFlowResult r = core::runHierFlow(dfg::firIirLoop(), cfg);
  sched::ScheduledDfg flat = sched::flattenScheduled(r.schedule, r.branches);
  sim::MakespanHistogram h =
      sim::makespanHistogram(flat, sim::ControlStyle::Distributed);
  const double clock = r.schedule.clockNs();
  for (std::size_t i = 0; i < cfg.ps.size(); ++i) {
    EXPECT_EQ(r.latency.dist.averageNs[i],
              sim::histogramAverageCycles(h, cfg.ps[i]) * clock);
  }
  EXPECT_EQ(r.latency.dist.bestNs, sim::histogramBestCycles(h) * clock);
  EXPECT_EQ(r.latency.dist.worstNs, sim::histogramWorstCycles(h) * clock);
}

// ------------------------------------------------------------------- CLI --

TEST(RegionCli, ParseBranchesSpec) {
  BranchChoices c = core::parseBranchesSpec("s3=else,s1_l_t0=then");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.at("s3"));
  EXPECT_TRUE(c.at("s1_l_t0"));
  EXPECT_TRUE(core::parseBranchesSpec("").empty());
  EXPECT_THROW(core::parseBranchesSpec("s3=maybe"), Error);
  EXPECT_THROW(core::parseBranchesSpec("s3"), Error);
}

class RegionCliFile : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "test_region_cli_tmp.dfg";
    std::ofstream out(path_);
    out << dfg::firIirLoopText();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  core::CliOptions baseOptions() {
    core::CliOptions o;
    o.inputPath = path_;
    o.allocation = core::parseAllocationSpec("mult=2,add=1");
    return o;
  }

  std::string path_;
};

TEST_F(RegionCliFile, FlowPrintsComposedSummary) {
  core::CliOptions o = baseOptions();
  std::ostringstream out, err;
  EXPECT_EQ(core::runCli(o, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("5 regions"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("LT_DIST"), std::string::npos);
}

TEST_F(RegionCliFile, UnsupportedOutputsAreRejectedWithDiagnostic) {
  core::CliOptions o = baseOptions();
  o.verilogPath = "never_written.v";
  std::ostringstream out, err;
  EXPECT_EQ(core::runCli(o, out, err), 1);
  EXPECT_NE(err.str().find("no composed form"), std::string::npos) << err.str();

  core::CliOptions lint = baseOptions();
  lint.lint = true;
  lint.lintTiming = true;
  std::ostringstream lout, lerr;
  EXPECT_EQ(core::runCli(lint, lout, lerr), 1);
  EXPECT_NE(lerr.str().find("no composed form"), std::string::npos);
}

TEST_F(RegionCliFile, LintAcceptsHierarchicalInput) {
  core::CliOptions o = baseOptions();
  o.lint = true;
  std::ostringstream out, err;
  EXPECT_EQ(core::runCli(o, out, err), 0) << out.str() << err.str();
  EXPECT_NE(out.str().find("MDL010"), std::string::npos) << out.str();
}

// ------------------------------------------------------------------- DOT --

TEST(RegionDot, HierarchicalProgramsRenderClusters) {
  RegionProgram p = dfg::firIirLoop();
  const std::string dot = dfg::toDot(p);
  EXPECT_NE(dot.find("compound=true"), std::string::npos);
  EXPECT_NE(dot.find("cluster_"), std::string::npos);
  EXPECT_NE(dot.find("loop x4"), std::string::npos);
  EXPECT_NE(dot.find("if sel"), std::string::npos);
}

TEST(RegionDot, FlatProgramsRenderUnchanged) {
  RegionProgram p = dfg::parseProgram("in a, b\nm = a * b\nout m\n", "flat");
  EXPECT_EQ(dfg::toDot(p), dfg::toDot(p.root.body));
}

// ---------------------------------------------------------------- random --

TEST(RandomRegions, DeterministicAndValid) {
  dfg::RandomRegionSpec spec;
  spec.leaf.numOps = 5;
  spec.leaf.numInputs = 3;
  spec.numBlocks = 4;
  EXPECT_EQ(dfg::printProgram(dfg::randomRegionProgram(spec)),
            dfg::printProgram(dfg::randomRegionProgram(spec)));
  bool sawHierarchy = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    spec.seed = seed;
    RegionProgram p = dfg::randomRegionProgram(spec);
    EXPECT_NO_THROW(dfg::validateRegionProgram(p)) << "seed " << seed;
    if (!p.isFlat() && p.root.children.size() > 0) {
      for (const dfg::LeafRef& leaf : dfg::collectLeaves(p)) {
        sawHierarchy |= leaf.path.find('_') != std::string::npos;
      }
    }
  }
  EXPECT_TRUE(sawHierarchy) << "no loop/cond produced across 8 seeds";
  // A random hierarchical program schedules end to end.
  spec.seed = 3;
  EXPECT_NO_THROW(sched::scheduleRegions(dfg::randomRegionProgram(spec), {},
                                         tau::paperLibrary()));
}

TEST(RandomRegions, LayeredLeafControls) {
  dfg::RandomDfgSpec spec;
  spec.numLayers = 3;
  spec.layerWidth = 4;
  dfg::Dfg g = dfg::randomDfg(spec);
  EXPECT_EQ(g.numOps(), 12u);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(dfg::printDfg(dfg::randomDfg(spec)), dfg::printDfg(g));

  dfg::RandomDfgSpec allAdd = spec;
  allAdd.mulPermille = 0;
  allAdd.addVsSubPermille = 1000;
  dfg::Dfg h = dfg::randomDfg(allAdd);
  EXPECT_EQ(h.opsOfClass(ResourceClass::Subtractor).size(), 0u);
  EXPECT_EQ(h.opsOfClass(ResourceClass::Multiplier).size(), 0u);
}

}  // namespace
}  // namespace tauhls
