// Multi-level VCAU extension tests: the generalized Algorithm 1, its
// latency engines, and the reduction to the paper's two-level case.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "sim/interp.hpp"
#include "sim/stats.hpp"
#include "testutil.hpp"
#include "vcau/controller.hpp"
#include "vcau/interp.hpp"
#include "vcau/stats.hpp"

namespace tauhls::vcau {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

/// Clock 10 ns: levels 10/20/30 ns -> 1/2/3 cycles.
tau::ResourceLibrary clock10Library() {
  tau::ResourceLibrary lib;
  // Surrogate two-level multiplier keeps scheduleAndBind happy; the vcau
  // overrides supply the real three-level behaviour.
  lib.registerType(
      tau::telescopicUnit("tau_mult", ResourceClass::Multiplier, 10, 20, 0.5));
  lib.registerType(tau::fixedUnit("adder", ResourceClass::Adder, 10.0));
  lib.registerType(tau::fixedUnit("subtractor", ResourceClass::Subtractor, 10.0));
  return lib;
}

MultiLevelLibrary threeLevelMult() {
  return {{ResourceClass::Multiplier,
           multiLevelUnit("tau3_mult", ResourceClass::Multiplier, {10, 20, 30},
                          {0.5, 0.3, 0.2})}};
}

TEST(Unit, ValidationRules) {
  EXPECT_NO_THROW(multiLevelUnit("u", ResourceClass::Multiplier, {10, 20},
                                 {0.7, 0.3}));
  EXPECT_THROW(multiLevelUnit("u", ResourceClass::Multiplier, {20, 10},
                              {0.5, 0.5}),
               Error);
  EXPECT_THROW(multiLevelUnit("u", ResourceClass::Multiplier, {10, 20},
                              {0.5, 0.4}),
               Error);
  EXPECT_THROW(multiLevelUnit("u", ResourceClass::Multiplier, {}, {}), Error);
  // Cycle contract: 25 ns at a 10 ns clock needs 3 cycles, not 2.
  MultiLevelUnitType bad = multiLevelUnit("u", ResourceClass::Multiplier,
                                          {10, 25}, {0.5, 0.5});
  EXPECT_THROW(validateMultiLevelUnit(bad, 10.0), Error);
}

TEST(Controller, TwoLevelReducesToPaperAlgorithm) {
  // A two-level override must produce machines identical (same states,
  // behaviour) to the standard Algorithm 1 generator.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  MultiLevelLibrary two{{ResourceClass::Multiplier,
                         multiLevelUnit("tau2", ResourceClass::Multiplier,
                                        {15, 20}, {0.5, 0.5})}};
  fsm::DistributedControlUnit a = fsm::buildDistributed(s);
  fsm::DistributedControlUnit b = buildMultiLevelDistributed(s, two);
  ASSERT_EQ(a.controllers.size(), b.controllers.size());
  for (std::size_t c = 0; c < a.controllers.size(); ++c) {
    EXPECT_EQ(a.controllers[c].fsm.numStates(),
              b.controllers[c].fsm.numStates());
    EXPECT_EQ(sim::compareOnRandomTraces(a.controllers[c].fsm,
                                         b.controllers[c].fsm, 5, 6, 40),
              -1)
        << a.controllers[c].fsm.name();
  }
}

TEST(Controller, ThreeLevelStateChain) {
  dfg::Dfg g = test::parallelMuls(1);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 1}},
                                  clock10Library());
  fsm::DistributedControlUnit dcu = buildMultiLevelDistributed(s, threeLevelMult());
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  EXPECT_EQ(f.numStates(), 3u);  // S0, S0p, S0pp
  EXPECT_NE(f.findState("S0pp"), -1);
  // Level 0: complete from S0 when C is up.
  auto r = f.step(f.findState("S0"), {"C_mult1"});
  EXPECT_EQ(r.nextState, f.findState("S0"));
  // Level 2: two misses then unconditional completion.
  auto r1 = f.step(f.findState("S0"), {});
  EXPECT_EQ(r1.nextState, f.findState("S0p"));
  auto r2 = f.step(r1.nextState, {});
  EXPECT_EQ(r2.nextState, f.findState("S0pp"));
  auto r3 = f.step(r2.nextState, {});
  EXPECT_EQ(r3.nextState, f.findState("S0"));
  EXPECT_EQ(r3.outputs.size(), 3u);  // OF, RE, CCO
}

TEST(Controller, RejectsWrongClockContract) {
  dfg::Dfg g = test::parallelMuls(1);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 1}},
                                  tau::paperLibrary());  // 15 ns clock
  // 10/20/30 at a 15 ns clock: level 1 fits in 2 cycles but level 0's
  // 10 ns < 15 ns is fine; 30 ns needs exactly 2 cycles, not 3 -> reject.
  EXPECT_THROW(buildMultiLevelDistributed(s, threeLevelMult()), Error);
}

TEST(Makespan, LevelDurations) {
  dfg::Dfg g = test::mulChain(3);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 1}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  EXPECT_EQ(distributedMakespanCycles(s, lib, allFastest(s, lib)), 3);
  EXPECT_EQ(distributedMakespanCycles(s, lib, allSlowest(s, lib)), 9);
  LevelClasses mixed = allFastest(s, lib);
  mixed.levelOf[g.findByName("m1")] = 2;
  EXPECT_EQ(distributedMakespanCycles(s, lib, mixed), 5);
}

TEST(Makespan, SyncChargesStepMaximum) {
  dfg::Dfg g = test::parallelMuls(2);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 2}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  LevelClasses c = allFastest(s, lib);
  c.levelOf[g.findByName("m1")] = 2;
  EXPECT_EQ(syncMakespanCycles(s, lib, c), 3);        // whole step waits
  EXPECT_EQ(distributedMakespanCycles(s, lib, c), 3);  // the slow op itself
}

TEST(Interp, MatchesMakespanOnDiffeq) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  fsm::DistributedControlUnit dcu = buildMultiLevelDistributed(s, lib);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    LevelClasses classes = randomLevels(s, lib, seed);
    sim::SimTrace trace = runDistributed(dcu, s, lib, classes);
    EXPECT_EQ(trace.latencyCycles,
              distributedMakespanCycles(s, lib, classes))
        << "seed=" << seed;
  }
}

TEST(Stats, ExactMatchesTwoLevelEngineOnPaperCase) {
  // With a two-level override matching the paper library, the vcau exact
  // expectation must equal the sim module's.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary(0.7));
  MultiLevelLibrary two{{ResourceClass::Multiplier,
                         multiLevelUnit("tau2", ResourceClass::Multiplier,
                                        {15, 20}, {0.7, 0.3})}};
  EXPECT_NEAR(averageCyclesExact(s, two, ControlStyle::Distributed),
              sim::averageCyclesExact(s, sim::ControlStyle::Distributed, 0.7),
              1e-9);
  EXPECT_NEAR(averageCyclesExact(s, two, ControlStyle::CentSync),
              sim::averageCyclesExact(s, sim::ControlStyle::CentSync, 0.7),
              1e-9);
}

TEST(Stats, ExactMatchesMonteCarlo) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  const double exact = averageCyclesExact(s, lib, ControlStyle::Distributed);
  const double mc =
      averageCyclesMonteCarlo(s, lib, ControlStyle::Distributed, 30000, 11);
  EXPECT_NEAR(mc, exact, 0.05);
}

TEST(Stats, DistributedNeverSlowerThanSync) {
  auto s = sched::scheduleAndBind(dfg::fir(5),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  EXPECT_LE(averageCyclesExact(s, lib, ControlStyle::Distributed),
            averageCyclesExact(s, lib, ControlStyle::CentSync));
}

class VcauProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcauProperty, InterpEqualsMakespanOnRandomGraphs) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 613;
  spec.numOps = 5 + static_cast<int>(GetParam() % 8);
  dfg::Dfg g = dfg::randomDfg(spec);
  auto s = sched::scheduleAndBind(g,
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  clock10Library());
  MultiLevelLibrary lib = threeLevelMult();
  fsm::DistributedControlUnit dcu = buildMultiLevelDistributed(s, lib);
  for (std::uint64_t trial = 0; trial < 6; ++trial) {
    LevelClasses classes = randomLevels(s, lib, GetParam() * 50 + trial);
    EXPECT_EQ(runDistributed(dcu, s, lib, classes).latencyCycles,
              distributedMakespanCycles(s, lib, classes));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcauProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tauhls::vcau
