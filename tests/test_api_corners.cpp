// Odds-and-ends coverage for public API corners not exercised elsewhere:
// string renderings, enum name tables, default arguments, and small
// accessors that reports and debuggers rely on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/textio.hpp"
#include "fsm/guard.hpp"
#include "logic/cover.hpp"
#include "netlist/netlist.hpp"
#include "sched/steps.hpp"
#include "sim/interp.hpp"
#include "sim/makespan.hpp"
#include "testutil.hpp"

namespace tauhls {
namespace {

TEST(ApiCorners, OpKindSymbolsAndNames) {
  using dfg::OpKind;
  EXPECT_STREQ(dfg::opKindSymbol(OpKind::Add), "+");
  EXPECT_STREQ(dfg::opKindSymbol(OpKind::Compare), "<");
  EXPECT_STREQ(dfg::opKindSymbol(OpKind::Neg), "neg");  // falls back to name
  EXPECT_STREQ(dfg::opKindSymbol(OpKind::Shift), "<<");
  EXPECT_STREQ(dfg::opKindSymbol(OpKind::And), "&");
  EXPECT_STREQ(dfg::resourceClassName(dfg::ResourceClass::Logic), "logic");
  EXPECT_STREQ(dfg::resourceClassName(dfg::ResourceClass::Divider), "divider");
}

TEST(ApiCorners, TextioLogicOperators) {
  // The &, |, ^, << operators parse and round-trip.
  dfg::Dfg g = dfg::parseDfg(
      "in a, b\n"
      "x1 = a & b\n"
      "x2 = a | b\n"
      "x3 = a ^ b\n"
      "x4 = a << b\n"
      "out x1, x2, x3, x4\n");
  EXPECT_EQ(g.opsOfClass(dfg::ResourceClass::Logic).size(), 4u);
  dfg::Dfg round = dfg::parseDfg(dfg::printDfg(g), "round");
  EXPECT_EQ(dfg::printDfg(round), dfg::printDfg(g));
}

TEST(ApiCorners, CoverToString) {
  logic::Cover cov(3);
  logic::Cube a = logic::Cube::full(3);
  a.setLiteral(0, true);
  a.setLiteral(2, false);
  cov.add(a);
  cov.add(logic::Cube::minterm(3, 0b101));
  EXPECT_EQ(cov.toString(), "1-0\n101\n");
}

TEST(ApiCorners, GateKindNames) {
  using netlist::GateKind;
  EXPECT_STREQ(netlist::gateKindName(GateKind::Input), "input");
  EXPECT_STREQ(netlist::gateKindName(GateKind::Inv), "inv");
  EXPECT_STREQ(netlist::gateKindName(GateKind::And), "and");
  EXPECT_STREQ(netlist::gateKindName(GateKind::Or), "or");
  EXPECT_STREQ(netlist::gateKindName(GateKind::Const0), "const0");
  EXPECT_STREQ(netlist::gateKindName(GateKind::Const1), "const1");
}

TEST(ApiCorners, AlapDefaultBudgetEqualsAsap) {
  dfg::Dfg g = dfg::fir(4);
  sched::StepSchedule a = sched::asap(g);
  sched::StepSchedule l = sched::alap(g);  // budget 0 => ASAP length
  EXPECT_EQ(l.numSteps, a.numSteps);
  sched::validateStepSchedule(g, l);
}

TEST(ApiCorners, GuardConjoinWithNeverAndAlways) {
  fsm::Guard g = fsm::Guard::literal("x", true);
  EXPECT_TRUE(g.conjoin(fsm::Guard::never()).isNever());
  EXPECT_EQ(g.conjoin(fsm::Guard::always()).toString(), g.toString());
  EXPECT_TRUE(fsm::Guard::never().disjoin(fsm::Guard::never()).isNever());
}

TEST(ApiCorners, SimTraceLookupsOutOfRange) {
  sim::SimTrace t;
  t.outputsPerCycle = {{"RE_a"}, {}};
  EXPECT_TRUE(t.asserted(0, "RE_a"));
  EXPECT_FALSE(t.asserted(1, "RE_a"));
  EXPECT_FALSE(t.asserted(-1, "RE_a"));
  EXPECT_FALSE(t.asserted(5, "RE_a"));
  EXPECT_EQ(t.firstCycle("RE_a"), 0);
  EXPECT_EQ(t.firstCycle("RE_missing"), -1);
}

TEST(ApiCorners, BindingUnitsOfClassOrdering) {
  sched::Binding b;
  int m0 = b.addUnit(dfg::ResourceClass::Multiplier, 0);
  int a0 = b.addUnit(dfg::ResourceClass::Adder, 0);
  int m1 = b.addUnit(dfg::ResourceClass::Multiplier, 1);
  EXPECT_EQ(b.unitsOfClass(dfg::ResourceClass::Multiplier),
            (std::vector<int>{m0, m1}));
  EXPECT_EQ(b.unitsOfClass(dfg::ResourceClass::Adder), (std::vector<int>{a0}));
  EXPECT_TRUE(b.unitsOfClass(dfg::ResourceClass::Divider).empty());
  EXPECT_EQ(b.unit(m1).name, "mult2");  // 1-based names as in the paper
  EXPECT_EQ(b.unitOf(dfg::NodeId{0}), -1);
}

TEST(ApiCorners, TaubmCycleBoundsWithoutTelescopicUnits) {
  dfg::Dfg g = dfg::fir(3);
  tau::ResourceLibrary lib;
  lib.registerType(tau::fixedUnit("mult", dfg::ResourceClass::Multiplier, 20));
  lib.registerType(tau::fixedUnit("adder", dfg::ResourceClass::Adder, 20));
  auto s = sched::scheduleAndBind(
      g, {{dfg::ResourceClass::Multiplier, 2}, {dfg::ResourceClass::Adder, 1}},
      lib);
  EXPECT_EQ(s.taubm.bestCaseCycles(), s.taubm.worstCaseCycles());
  // With no telescopic units, DIST and SYNC agree exactly.
  EXPECT_EQ(sim::distributedMakespanCycles(s, sim::allShort(s)),
            s.taubm.bestCaseCycles());
}

}  // namespace
}  // namespace tauhls
