#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "logic/minimize.hpp"
#include "synth/area.hpp"
#include "synth/encoding.hpp"
#include "synth/extract.hpp"
#include "testutil.hpp"

namespace tauhls::synth {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

fsm::Fsm toyCounter() {
  // 3-state counter with an enable input; S2 wraps and pulses "done".
  fsm::Fsm f("counter3");
  int s0 = f.addState("S0");
  int s1 = f.addState("S1");
  int s2 = f.addState("S2");
  f.addInput("en");
  f.addOutput("done");
  f.addTransition(s0, s1, fsm::Guard::literal("en", true), {});
  f.addTransition(s0, s0, fsm::Guard::literal("en", false), {});
  f.addTransition(s1, s2, fsm::Guard::literal("en", true), {});
  f.addTransition(s1, s1, fsm::Guard::literal("en", false), {});
  f.addTransition(s2, s0, fsm::Guard::always(), {"done"});
  f.setInitial(s0);
  return f;
}

TEST(Encoding, BinaryCompact) {
  fsm::Fsm f = toyCounter();
  Encoding e = encodeStates(f, EncodingStyle::Binary);
  EXPECT_EQ(e.bits, 2);
  EXPECT_EQ(e.codeOf, (std::vector<std::uint32_t>{0, 1, 2}));
  EXPECT_EQ(e.stateOf(1), 1);
  EXPECT_EQ(e.stateOf(3), -1);  // unused code
}

TEST(Encoding, OneHot) {
  fsm::Fsm f = toyCounter();
  Encoding e = encodeStates(f, EncodingStyle::OneHot);
  EXPECT_EQ(e.bits, 3);
  EXPECT_EQ(e.codeOf, (std::vector<std::uint32_t>{1, 2, 4}));
}

TEST(Extract, CounterLogicIsCorrect) {
  fsm::Fsm f = toyCounter();
  SynthesizedFsm s = synthesize(f);
  EXPECT_EQ(s.numStates, 3);
  EXPECT_EQ(s.flipFlops, 2);
  EXPECT_EQ(s.numInputs, 1);
  EXPECT_EQ(s.numOutputs, 1);
  ASSERT_EQ(s.nextStateLogic.size(), 2u);
  ASSERT_EQ(s.outputLogic.size(), 1u);
  // Evaluate the extracted network against the machine on all care rows.
  // Variable order: state bits (LSB first), then inputs.
  for (int state = 0; state < 3; ++state) {
    for (int en = 0; en < 2; ++en) {
      std::unordered_set<std::string> asserted;
      if (en) asserted.insert("en");
      auto ref = f.step(state, asserted);
      const std::uint64_t row =
          static_cast<std::uint64_t>(state) | (static_cast<std::uint64_t>(en) << 2);
      std::uint32_t nextCode = 0;
      for (int b = 0; b < 2; ++b) {
        if (s.nextStateLogic[b].evaluate(row)) nextCode |= 1u << b;
      }
      EXPECT_EQ(static_cast<int>(nextCode), ref.nextState);
      const bool done = !ref.outputs.empty();
      EXPECT_EQ(s.outputLogic[0].evaluate(row), done);
    }
  }
}

TEST(Extract, DontCaresReduceLiterals) {
  // With 3 states in 2 bits, code 3 is a don't-care; the minimized logic must
  // not exceed the 1-per-minterm upper bound and must use the slack.
  fsm::Fsm f = toyCounter();
  SynthesizedFsm s = synthesize(f);
  EXPECT_GT(s.totalLiterals(), 0);
  EXPECT_LE(s.totalLiterals(), 24);
}

TEST(Extract, DistributedControllersSynthesize) {
  auto sdfg = sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(sdfg);
  for (const fsm::UnitController& c : dcu.controllers) {
    SynthesizedFsm s = synthesize(c.fsm);
    EXPECT_GT(s.totalLiterals(), 0) << c.fsm.name();
    EXPECT_EQ(s.flipFlops, c.fsm.flipFlopCount());
  }
}

// The Fast regime compiles guards to bitmask terms for the truth-table row
// sweep (and runs the fast minimizer); the Reference regime steps the FSM
// row by row.  Both must extract identical covers on real controllers,
// under both encodings.
TEST(Extract, FastAndReferenceRegimesExtractIdenticalLogic) {
  auto sdfg = sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(sdfg);
  for (const fsm::UnitController& c : dcu.controllers) {
    for (const EncodingStyle style :
         {EncodingStyle::Binary, EncodingStyle::OneHot}) {
      logic::setMinimizerImpl(logic::MinimizerImpl::Reference);
      const SynthesizedFsm ref = synthesize(c.fsm, style);
      logic::setMinimizerImpl(logic::MinimizerImpl::Fast);
      const SynthesizedFsm fast = synthesize(c.fsm, style);
      ASSERT_EQ(fast.nextStateLogic.size(), ref.nextStateLogic.size());
      for (std::size_t i = 0; i < fast.nextStateLogic.size(); ++i) {
        EXPECT_EQ(fast.nextStateLogic[i].cubes(),
                  ref.nextStateLogic[i].cubes())
            << c.fsm.name() << " ns" << i;
      }
      ASSERT_EQ(fast.outputLogic.size(), ref.outputLogic.size());
      for (std::size_t i = 0; i < fast.outputLogic.size(); ++i) {
        EXPECT_EQ(fast.outputLogic[i].cubes(), ref.outputLogic[i].cubes())
            << c.fsm.name() << " out" << i;
      }
      EXPECT_EQ(fast.totalLiterals(), ref.totalLiterals());
    }
  }
}

TEST(Area, RowBasics) {
  AreaRow row = areaRow("counter", toyCounter());
  EXPECT_EQ(row.name, "counter");
  EXPECT_EQ(row.states, 3);
  EXPECT_EQ(row.flipFlops, 2);
  EXPECT_EQ(row.seqArea, 2 * kAreaPerFlipFlop);
  EXPECT_EQ(row.seqArea, 44);  // the paper's 2-FF sequential area
  EXPECT_GT(row.combArea, 0);
  EXPECT_EQ(row.totalArea(), row.combArea + row.seqArea);
}

TEST(Area, PaperSequentialConstantReproduced) {
  // The paper's Table 1: 3 FFs -> 66, 5 FFs -> 110.
  EXPECT_EQ(3 * kAreaPerFlipFlop, 66);
  EXPECT_EQ(5 * kAreaPerFlipFlop, 110);
}

TEST(Area, DistributedReportAggregates) {
  auto sdfg = sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(sdfg);
  DistributedAreaReport report = distributedArea(dcu);
  ASSERT_EQ(report.perController.size(), 4u);
  int combSum = 0;
  int ffSum = 0;
  for (const AreaRow& row : report.perController) {
    combSum += row.combArea;
    ffSum += row.flipFlops;
  }
  EXPECT_EQ(report.total.combArea, combSum);
  EXPECT_EQ(report.total.flipFlops, ffSum + report.completionLatches);
  EXPECT_EQ(report.total.seqArea,
            (ffSum + report.completionLatches) * kAreaPerFlipFlop);
  EXPECT_GT(report.completionLatches, 0);
}

TEST(Area, Table1Shape) {
  // The paper's area claims on the Diff. benchmark with {*:2, +:1, -:1}:
  //   (a) CENT-SYNC-FSM is the smallest machine;
  //   (b) DIST-FSM total is larger than CENT-SYNC (redundancy + comm);
  //   (c) CENT-FSM (full product) has far more states than CENT-SYNC and
  //       more combinational area than any single unit controller.
  auto sdfg = sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(sdfg);
  fsm::Fsm centSync = fsm::buildCentSync(sdfg);
  fsm::Fsm product = fsm::buildProduct(dcu);

  AreaRow sync = areaRow("CENT-SYNC-FSM", centSync);
  AreaRow cent = areaRow("CENT-FSM", product);
  DistributedAreaReport dist = distributedArea(dcu);

  EXPECT_GT(dist.total.totalArea(), sync.totalArea());
  EXPECT_GT(cent.states, sync.states);
  EXPECT_GT(cent.states, static_cast<int>(dcu.totalStates()));
  for (const AreaRow& row : dist.perController) {
    EXPECT_GT(cent.combArea, row.combArea);
  }
}

TEST(Extract, OversizedFsmRejected) {
  // 40 inputs would blow the explicit truth-table bound.
  fsm::Fsm f("wide");
  int s0 = f.addState("S0");
  for (int i = 0; i < 23; ++i) f.addInput("i" + std::to_string(i));
  f.addTransition(s0, s0, fsm::Guard::always(), {});
  f.setInitial(s0);
  EXPECT_THROW(synthesize(f), Error);
}

}  // namespace
}  // namespace tauhls::synth
