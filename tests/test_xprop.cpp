// Tests for the X-propagation / reset-robustness checker
// (verify/xprop_check.hpp) and the don't-care soundness checker
// (verify/dcs_check.hpp).
//
// Four families:
//   - clean sweeps: every paper benchmark under both binding strategies and
//     both state encodings proves XPR001/XPR002 and DCS001/DCS002, and the
//     composed fir_iir_loop proves XPR003 on top;
//   - mutations: each injected fault (model latch without reset, controller
//     without state reset, RTL latch without a reset arc, sequencer done
//     latch without init, don't-care-abusing minimizer) is caught by exactly
//     its rule, with a decodable per-cycle waveform;
//   - determinism: verdicts and waveforms are bit-identical across thread
//     counts;
//   - caching: the XCheck artifact is served from the artifact cache on a
//     warm re-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/flow.hpp"
#include "core/hier_flow.hpp"
#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/hierarchical.hpp"
#include "fsm/signal_opt.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "rtl/verilog.hpp"
#include "sched/scheduled_dfg.hpp"
#include "synth/extract.hpp"
#include "tau/library.hpp"
#include "verify/dcs_check.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls::verify {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

fsm::DistributedControlUnit fig2Dcu() {
  const sched::ScheduledDfg s = sched::scheduleAndBind(
      dfg::paperFig2(),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  return fsm::optimizeSignals(fsm::buildDistributed(s));
}

core::FlowConfig regionFlowConfig() {
  core::FlowConfig cfg;
  cfg.allocation = dfg::firIirLoopAllocation();
  cfg.synthesizeArea = false;
  return cfg;
}

/// Error/warning codes of a report.
std::set<std::string> errorCodes(const Report& r) {
  std::set<std::string> out;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.severity != Severity::Info) out.insert(d.code);
  }
  return out;
}

const XpropPropertyStat* rowOf(const std::vector<XpropPropertyStat>& rows,
                               const std::string& rule) {
  for (const XpropPropertyStat& r : rows) {
    if (r.rule == rule) return &r;
  }
  return nullptr;
}

// ---- clean sweeps ----------------------------------------------------------

TEST(XpropClean, AllPaperBenchmarksBothStrategiesBothEncodings) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (const sched::BindingStrategy strategy :
         {sched::BindingStrategy::LeftEdge,
          sched::BindingStrategy::CliqueCover}) {
      for (const synth::EncodingStyle style :
           {synth::EncodingStyle::Binary, synth::EncodingStyle::OneHot}) {
        const sched::ScheduledDfg s = sched::scheduleAndBind(
            b.graph, b.allocation, tau::paperLibrary(), strategy);
        const fsm::DistributedControlUnit dcu =
            fsm::optimizeSignals(fsm::buildDistributed(s));
        const std::string label =
            b.name + " strategy " + std::to_string(static_cast<int>(strategy)) +
            (style == synth::EncodingStyle::OneHot ? " onehot" : " binary");

        XprOptions xo;
        xo.style = style;
        Report report;
        const XpropStats xs = checkXprop(dcu, "dcu " + s.graph.name(), report, xo);
        EXPECT_FALSE(report.hasErrors()) << label << ":\n" << renderText(report);
        EXPECT_EQ(xs.resetDepth, 1) << label;
        EXPECT_TRUE(report.has("XPR004")) << label;
        const XpropPropertyStat* xpr1 = rowOf(xs.properties, "XPR001");
        const XpropPropertyStat* xpr2 = rowOf(xs.properties, "XPR002");
        ASSERT_NE(xpr1, nullptr) << label;
        ASSERT_NE(xpr2, nullptr) << label;
        EXPECT_EQ(xpr1->verdict, "PROVED") << label;
        EXPECT_EQ(xpr2->verdict, "PROVED") << label;
        EXPECT_GT(xs.instances, 0u) << label;
        EXPECT_GT(xs.gateEvals, 0u) << label;

        DcsOptions dco;
        dco.style = style;
        Report dcsReport;
        const DcsStats ds = checkDcs(dcu, "dcu " + s.graph.name(), dcsReport, dco);
        EXPECT_FALSE(dcsReport.hasErrors())
            << label << ":\n" << renderText(dcsReport);
        EXPECT_GT(ds.functionsChecked, 0u) << label;
        for (const XpropPropertyStat& p : ds.properties) {
          EXPECT_EQ(p.verdict, "PROVED") << label << " " << p.rule;
        }
      }
    }
  }
}

TEST(XpropClean, ComposedFirIirLoopProvesXpr003) {
  const core::HierFlowResult r =
      core::runHierFlow(dfg::firIirLoop(), regionFlowConfig());
  Report report;
  const XpropStats xs = checkXpropHierarchical(
      r.control, "hier " + r.control.sequencer.name(), report, {});
  EXPECT_FALSE(report.hasErrors()) << renderText(report);
  const XpropPropertyStat* xpr3 = rowOf(xs.properties, "XPR003");
  ASSERT_NE(xpr3, nullptr);
  EXPECT_EQ(xpr3->verdict, "PROVED");
  // Every leaf was re-checked under its path anchor.
  EXPECT_TRUE(report.has("XPR004"));

  Report dcsReport;
  DcsStats ds = checkDcsFsm(r.control.sequencer,
                            "sequencer " + r.control.sequencer.name(),
                            dcsReport, {});
  for (const fsm::LeafControl& leaf : r.control.leaves) {
    ds += checkDcs(leaf.dcu, "leaf " + leaf.path, dcsReport, {});
  }
  EXPECT_FALSE(dcsReport.hasErrors()) << renderText(dcsReport);
}

// ---- mutations -------------------------------------------------------------

TEST(XpropMutation, LatchWithoutResetTripsXpr001) {
  const fsm::DistributedControlUnit dcu = fig2Dcu();
  ASSERT_FALSE(dcu.producerOf.empty());
  XprOptions xo;
  xo.latchesWithoutReset.insert(dcu.producerOf.begin()->first);
  Report report;
  checkXprop(dcu, "dcu fig2", report, xo);
  EXPECT_EQ(errorCodes(report), std::set<std::string>{"XPR001"})
      << renderText(report);
  // The diagnostic carries a decodable per-cycle waveform of the stuck latch.
  const std::string msg = report.withCode("XPR001").front().message;
  EXPECT_NE(msg.find('X'), std::string::npos) << msg;
  EXPECT_NE(msg.find("rst"), std::string::npos) << msg;
}

TEST(XpropMutation, ControllerWithoutStateResetTripsXpr001) {
  const fsm::DistributedControlUnit dcu = fig2Dcu();
  XprOptions xo;
  xo.controllersWithoutStateReset.insert(dcu.controllers.front().fsm.name());
  Report report;
  checkXprop(dcu, "dcu fig2", report, xo);
  EXPECT_TRUE(report.has("XPR001")) << renderText(report);
  EXPECT_FALSE(errorCodes(report).contains("XPR002")) << renderText(report);
}

TEST(XpropMutation, RtlLatchWithoutResetArcTripsXpr002) {
  const fsm::DistributedControlUnit dcu = fig2Dcu();
  // Drop the reset arc from the emitted completion latch: its held register
  // never drains the power-on X, so the RTL diverges from the (correct)
  // network model the moment the model proves determinacy.
  std::string source = rtl::emitPackage(dcu, "tauhls_xprop_top");
  const std::string from = "if (rst || restart)";
  const std::string to = "if (restart)";
  const std::size_t at = source.find(from);
  ASSERT_NE(at, std::string::npos);
  source.replace(at, from.size(), to);
  XprOptions xo;
  xo.rtlOverride = source;
  Report report;
  checkXprop(dcu, "dcu fig2", report, xo);
  EXPECT_EQ(errorCodes(report), std::set<std::string>{"XPR002"})
      << renderText(report);
  const std::string msg = report.withCode("XPR002").front().message;
  EXPECT_NE(msg.find('X'), std::string::npos) << msg;
}

TEST(XpropMutation, SequencerDoneLatchWithoutInitTripsXpr003) {
  const core::HierFlowResult r =
      core::runHierFlow(dfg::firIirLoop(), regionFlowConfig());
  // The *last* region's done latch: its rearm pulse (the sequencer entering
  // that region's activation state) cannot fire while reset pins the
  // sequencer to its initial state, so dropping the rst arc leaves the
  // power-on X in place past every candidate reset window.  (The first
  // region's latch would be masked -- the initial state re-arms it.)
  std::string dn;
  for (const std::string& in : r.control.sequencer.inputs()) {
    if (in.rfind("DN_", 0) == 0) dn = in;
  }
  ASSERT_FALSE(dn.empty());
  XprOptions xo;
  xo.doneLatchesWithoutInit.insert(dn);
  Report report;
  checkXpropHierarchical(r.control, "hier seq", report, xo);
  EXPECT_TRUE(errorCodes(report).contains("XPR003")) << renderText(report);
  const std::string msg = report.withCode("XPR003").front().message;
  EXPECT_NE(msg.find('X'), std::string::npos) << msg;
}

TEST(DcsMutation, DontCareAbusingMinimizerTripsDcs) {
  const fsm::DistributedControlUnit dcu = fig2Dcu();
  // Pick a controller whose binary encoding leaves undecodable codes (state
  // count below 2^bits) -- those codes are exactly the minimizer's
  // don't-care rows.  A "minimizer" that collapses every next-state function
  // to constant 1 steers the machine straight onto the all-ones don't-care
  // code, which is legal only if that row were unreachable.
  const fsm::Fsm* victim = nullptr;
  synth::SynthesizedFsm syn;
  for (const fsm::UnitController& c : dcu.controllers) {
    syn = synth::synthesize(c.fsm, synth::EncodingStyle::Binary);
    if ((std::size_t{1} << syn.flipFlops) > c.fsm.numStates()) {
      victim = &c.fsm;
      break;
    }
  }
  ASSERT_NE(victim, nullptr) << "no controller with don't-care rows";
  for (logic::Cover& cover : syn.nextStateLogic) {
    logic::Cover constantOne(cover.numVars());
    constantOne.add(logic::Cube::full(constantOne.numVars()));
    cover = constantOne;
  }
  DcsOptions dco;
  dco.coverOverrides.emplace(victim->name(), syn);
  Report report;
  checkDcs(dcu, "dcu fig2", report, dco);
  EXPECT_TRUE(report.has("DCS001")) << renderText(report);
  // The mutated covers also steer the implemented machine onto a don't-care
  // row, and the BMC counterexample decodes to named states.
  ASSERT_TRUE(report.has("DCS002")) << renderText(report);
  const std::string msg = report.withCode("DCS002").front().message;
  EXPECT_NE(msg.find("cycle 0: state="), std::string::npos) << msg;
}

// ---- determinism -----------------------------------------------------------

TEST(XpropDeterminism, BitIdenticalAcrossThreadCounts) {
  const fsm::DistributedControlUnit dcu = fig2Dcu();
  std::vector<XpropStats> stats;
  std::vector<Report> reports;
  for (const int threads : {1, 2, 8}) {
    common::setGlobalThreadCount(threads);
    Report report;
    stats.push_back(checkXprop(dcu, "dcu fig2", report, {}));
    reports.push_back(report);
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
  EXPECT_EQ(stats[0], stats[1]);
  EXPECT_EQ(stats[0], stats[2]);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

// ---- caching ---------------------------------------------------------------

TEST(XpropCache, XCheckArtifactServedFromCacheOnRerun) {
  const dfg::Dfg graph = dfg::paperFig2();
  core::FlowConfig cfg;
  cfg.allocation = Allocation{{ResourceClass::Multiplier, 2},
                              {ResourceClass::Adder, 1}};
  const auto cache = std::make_shared<core::ArtifactCache>();

  core::FlowPipeline cold(graph, cfg, cache);
  const XCheckArtifact first =
      cold.get<XCheckArtifact>(core::Artifact::XCheck);
  EXPECT_FALSE(first.report.hasErrors()) << renderText(first.report);
  const core::CacheStats coldStats = cache->stats();
  EXPECT_GT(coldStats.misses, 0u);

  core::FlowPipeline warm(graph, cfg, cache);
  const XCheckArtifact second =
      warm.get<XCheckArtifact>(core::Artifact::XCheck);
  const core::CacheStats warmStats = cache->stats();
  EXPECT_EQ(warmStats.misses, coldStats.misses) << "warm run recomputed a pass";
  EXPECT_GT(warmStats.hits, coldStats.hits);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tauhls::verify
