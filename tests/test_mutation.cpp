// Mutation tests: inject controlled faults into generated artifacts and
// assert that the repository's verification layers actually *detect* them --
// guarding against vacuous checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <string>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "fsm/signal.hpp"
#include "logic/minimize.hpp"
#include "netlist/build.hpp"
#include "rtl/verilog.hpp"
#include "sim/interp.hpp"
#include "synth/extract.hpp"
#include "testutil.hpp"
#include "verify/equiv_check.hpp"
#include "verify/symbolic_check.hpp"

namespace tauhls {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

sched::ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

/// Rebuild `fsm` with one transition's target redirected.
fsm::Fsm retargetTransition(const fsm::Fsm& original, std::size_t index,
                            int newTarget) {
  fsm::Fsm out(original.name());
  for (std::size_t s = 0; s < original.numStates(); ++s) {
    out.addState(original.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : original.inputs()) out.addInput(in);
  for (const std::string& o : original.outputs()) out.addOutput(o);
  const auto& ts = original.transitions();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    out.addTransition(ts[i].from, i == index ? newTarget : ts[i].to,
                      ts[i].guard, ts[i].outputs);
  }
  out.setInitial(original.initial());
  return out;
}

/// Rebuild `fsm` with one output signal stripped from every transition
/// (the register enable never fires on any path).
fsm::Fsm dropSignalEverywhere(const fsm::Fsm& original,
                              const std::string& signal) {
  fsm::Fsm out(original.name());
  for (std::size_t s = 0; s < original.numStates(); ++s) {
    out.addState(original.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : original.inputs()) out.addInput(in);
  for (const std::string& o : original.outputs()) out.addOutput(o);
  for (const fsm::Transition& t : original.transitions()) {
    std::vector<std::string> outputs;
    for (const std::string& o : t.outputs) {
      if (o != signal) outputs.push_back(o);
    }
    out.addTransition(t.from, t.to, t.guard, std::move(outputs));
  }
  out.setInitial(original.initial());
  return out;
}

TEST(Mutation, ProductComparisonCatchesRetargetedTransition) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  fsm::Fsm product = fsm::buildProduct(dcu);
  // Mutate: redirect the first completing transition (one with outputs) of
  // the first telescopic controller to its own source state.
  fsm::DistributedControlUnit mutated = dcu;
  for (fsm::UnitController& c : mutated.controllers) {
    if (!c.telescopic) continue;
    const auto& ts = c.fsm.transitions();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (!ts[i].outputs.empty() && ts[i].to != ts[i].from) {
        c.fsm = retargetTransition(c.fsm, i, ts[i].from);
        goto mutated_done;
      }
    }
  }
mutated_done:
  EXPECT_NE(sim::compareProductToDistributed(mutated, product, 3, 10, 40), -1)
      << "the trace comparison must notice the retargeted transition";
}

TEST(Mutation, InterpreterCatchesDroppedRegisterEnable) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // Strip one op's RE from every transition: it never fires on any path, so
  // one-iteration simulation cannot terminate and must report the stall.
  fsm::UnitController& victim = dcu.controllers.front();
  std::string reSignal;
  for (const std::string& o : victim.fsm.outputs()) {
    if (o.starts_with("RE_")) {
      reSignal = o;
      break;
    }
  }
  ASSERT_FALSE(reSignal.empty());
  victim.fsm = dropSignalEverywhere(victim.fsm, reSignal);
  EXPECT_THROW(sim::runDistributed(dcu, s, sim::allShort(s), 200), Error);
}

TEST(Mutation, NetlistVerifierCatchesCorruptedGate) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  netlist::ControllerNetlist cn = netlist::buildControllerNetlist(f);
  ASSERT_TRUE(netlist::verifyAgainstFsm(cn, f));
  // Corrupt: invert the first output's net.
  netlist::ControllerNetlist bad;
  bad.stateBits = cn.stateBits;
  bad.net = netlist::Netlist(cn.net.name());
  // Rebuild by copying gates then inverting the first output.
  std::vector<netlist::NetId> remap;
  for (netlist::NetId i = 0; i < cn.net.numGates(); ++i) {
    const netlist::Gate& g = cn.net.gate(i);
    switch (g.kind) {
      case netlist::GateKind::Input:
        remap.push_back(bad.net.addInput(g.name));
        break;
      case netlist::GateKind::Const0:
        remap.push_back(bad.net.constant(false));
        break;
      case netlist::GateKind::Const1:
        remap.push_back(bad.net.constant(true));
        break;
      case netlist::GateKind::Inv:
        remap.push_back(bad.net.addInv(remap[g.fanins[0]]));
        break;
      case netlist::GateKind::And:
      case netlist::GateKind::Or: {
        std::vector<netlist::NetId> fanins;
        for (netlist::NetId fin : g.fanins) fanins.push_back(remap[fin]);
        remap.push_back(g.kind == netlist::GateKind::And
                            ? bad.net.addAnd(std::move(fanins))
                            : bad.net.addOr(std::move(fanins)));
        break;
      }
    }
  }
  bool first = true;
  for (const auto& [name, net] : cn.net.outputs()) {
    bad.net.markOutput(name, first ? bad.net.addInv(remap[net]) : remap[net]);
    first = false;
  }
  EXPECT_FALSE(netlist::verifyAgainstFsm(bad, f));
}

TEST(Mutation, ImplementsCatchesCorruptedCover) {
  logic::TruthTable tt(4);
  for (std::uint64_t m : {1, 3, 7, 11, 15}) tt.set(m, logic::Ternary::One);
  logic::Cover good = logic::minimize(tt);
  ASSERT_TRUE(logic::implements(good, tt));
  // Drop one cube: some onset row goes uncovered.
  logic::Cover bad(4);
  for (std::size_t i = 1; i < good.cubes().size(); ++i) bad.add(good.cubes()[i]);
  EXPECT_FALSE(logic::implements(bad, tt));
  // Add a cube covering an offset row.
  logic::Cover tooBig = good;
  tooBig.add(logic::Cube::minterm(4, 0));
  EXPECT_FALSE(logic::implements(tooBig, tt));
}

/// Gate-by-gate copy of a controller netlist.  `remapFanin` may redirect any
/// gate's fanin; `finishOutput` may tamper with an output net before it is
/// marked.  Both default to the identity, giving a faithful clone.
netlist::ControllerNetlist cloneNetlist(
    const netlist::ControllerNetlist& cn,
    const std::function<netlist::NetId(netlist::NetId gate, std::size_t slot,
                                       netlist::NetId mapped)>& remapFanin,
    const std::function<netlist::NetId(netlist::Netlist&, netlist::NetId)>&
        finishOutput) {
  netlist::ControllerNetlist out;
  out.stateBits = cn.stateBits;
  out.net = netlist::Netlist(cn.net.name());
  std::vector<netlist::NetId> remap;
  for (netlist::NetId i = 0; i < cn.net.numGates(); ++i) {
    const netlist::Gate& g = cn.net.gate(i);
    std::vector<netlist::NetId> fanins;
    for (std::size_t slot = 0; slot < g.fanins.size(); ++slot) {
      fanins.push_back(remapFanin(i, slot, remap[g.fanins[slot]]));
    }
    switch (g.kind) {
      case netlist::GateKind::Input:
        remap.push_back(out.net.addInput(g.name));
        break;
      case netlist::GateKind::Const0:
        remap.push_back(out.net.constant(false));
        break;
      case netlist::GateKind::Const1:
        remap.push_back(out.net.constant(true));
        break;
      case netlist::GateKind::Inv:
        remap.push_back(out.net.addInv(fanins[0]));
        break;
      case netlist::GateKind::And:
        remap.push_back(out.net.addAnd(std::move(fanins)));
        break;
      case netlist::GateKind::Or:
        remap.push_back(out.net.addOr(std::move(fanins)));
        break;
    }
  }
  for (const auto& [name, net] : cn.net.outputs()) {
    out.net.markOutput(name, finishOutput(out.net, remap[net]));
  }
  return out;
}

const auto kKeepFanin = [](netlist::NetId, std::size_t, netlist::NetId m) {
  return m;
};
const auto kKeepOutput = [](netlist::Netlist&, netlist::NetId n) { return n; };

int countRule(const verify::Report& report, const std::string& rule) {
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.code == rule) ++n;
  }
  return n;
}

TEST(Mutation, EquivCatchesDroppedInverter) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  const netlist::ControllerNetlist cn = netlist::buildControllerNetlist(f);

  // Baseline: the faithful clone proves clean.
  verify::Report clean;
  verify::checkControllerNetlist(
      f, cloneNetlist(cn, kKeepFanin, kKeepOutput), clean);
  ASSERT_FALSE(clean.hasErrors());

  // Mutant: the first inverter becomes a wire (its users read the uninverted
  // net) -- the classic dropped-bubble fault.
  netlist::NetId invGate = netlist::kNoNet;
  for (netlist::NetId i = 0; i < cn.net.numGates(); ++i) {
    if (cn.net.gate(i).kind == netlist::GateKind::Inv) {
      invGate = i;
      break;
    }
  }
  ASSERT_NE(invGate, netlist::kNoNet);
  const netlist::NetId bypassed = cn.net.gate(invGate).fanins[0];
  // Rebuild with every fanin referencing the inverter redirected to its
  // input instead.  (Gate ids survive the clone: the copy is 1:1 in order,
  // so `mapped == invGate` identifies references to the inverter.)
  const netlist::ControllerNetlist dropped = cloneNetlist(
      cn,
      [&](netlist::NetId, std::size_t, netlist::NetId mapped) {
        return mapped == invGate ? bypassed : mapped;
      },
      kKeepOutput);
  verify::Report report;
  verify::checkControllerNetlist(f, dropped, report);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_GE(countRule(report, "EQV002"), 1);
}

TEST(Mutation, EquivCatchesSwappedFanin) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  const netlist::ControllerNetlist cn = netlist::buildControllerNetlist(f);

  // Mutant: one AND gate reads a different input net in its first slot --
  // a miswired fanin.  (Reordering fanins would be masked by commutativity,
  // so the fault substitutes a *different* net.)
  netlist::NetId victim = netlist::kNoNet;
  for (netlist::NetId i = 0; i < cn.net.numGates(); ++i) {
    if (cn.net.gate(i).kind == netlist::GateKind::And &&
        cn.net.gate(i).fanins.size() >= 2) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, netlist::kNoNet);
  // Substitute a state-register input net that is not already a fanin.
  const netlist::NetId substitute = cn.net.findInput("state0");
  ASSERT_NE(substitute, netlist::kNoNet);
  const netlist::ControllerNetlist swapped = cloneNetlist(
      cn,
      [&](netlist::NetId gate, std::size_t slot, netlist::NetId mapped) {
        if (gate == victim && slot == 0 && mapped != substitute) {
          return substitute;
        }
        return mapped;
      },
      kKeepOutput);
  verify::Report report;
  verify::checkControllerNetlist(f, swapped, report);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_GE(countRule(report, "EQV002"), 1);
}

TEST(Mutation, EquivCatchesEmitterTampering) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  const std::string good = rtl::emitFsm(f, "mut_ctrl");

  verify::Report clean;
  verify::checkControllerRtl(f, good, "mut_ctrl", clean);
  ASSERT_FALSE(clean.hasErrors());

  // Mutant: drop the first asserted output inside a case arm (the dead-code
  // default `state_next = state;` would be masked by the full case, so the
  // fault targets a live assignment).
  const std::string needle = "= 1'b1;";
  const auto pos = good.find(needle);
  ASSERT_NE(pos, std::string::npos) << good;
  std::string bad = good;
  bad.replace(pos, needle.size(), "= 1'b0;");
  verify::Report report;
  verify::checkControllerRtl(f, bad, "mut_ctrl", report);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_GE(countRule(report, "EQV003"), 1);
}

TEST(Mutation, EquivCatchesWrongLatchBypass) {
  auto s = scheduledDiffeq();
  const fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const std::string good = rtl::emitPackage(dcu, "mut_pkg");

  verify::Report clean;
  verify::checkCompletionLatch(good, clean);
  ASSERT_FALSE(clean.hasErrors());

  // Mutant 1: the level output loses the live-pulse bypass, delaying
  // same-cycle consumers by one cycle.
  const std::string bypass = "assign level = held | pulse;";
  auto pos = good.find(bypass);
  ASSERT_NE(pos, std::string::npos);
  std::string noBypass = good;
  noBypass.replace(pos, bypass.size(), "assign level = held;");
  verify::Report report1;
  verify::checkCompletionLatch(noBypass, report1);
  EXPECT_TRUE(report1.hasErrors());
  EXPECT_GE(countRule(report1, "EQV004"), 1);

  // Mutant 2: the hold register ignores the restart strobe.
  const std::string resetTerm = "if (rst || restart)";
  pos = good.find(resetTerm);
  ASSERT_NE(pos, std::string::npos);
  std::string noRestart = good;
  noRestart.replace(pos, resetTerm.size(), "if (rst)");
  verify::Report report2;
  verify::checkCompletionLatch(noRestart, report2);
  EXPECT_TRUE(report2.hasErrors());
  EXPECT_GE(countRule(report2, "EQV004"), 1);
}

TEST(Mutation, ValidateFsmCatchesGuardTampering) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  // Widen one guard to `always`: it now overlaps its sibling -> rejected.
  fsm::Fsm bad(f.name());
  for (std::size_t st = 0; st < f.numStates(); ++st) {
    bad.addState(f.stateName(static_cast<int>(st)));
  }
  for (const std::string& in : f.inputs()) bad.addInput(in);
  for (const std::string& o : f.outputs()) bad.addOutput(o);
  bool tampered = false;
  for (const fsm::Transition& t : f.transitions()) {
    if (!tampered && !t.guard.isAlways()) {
      bad.addTransition(t.from, t.to, fsm::Guard::always(), t.outputs);
      tampered = true;
    } else {
      bad.addTransition(t.from, t.to, t.guard, t.outputs);
    }
  }
  bad.setInitial(f.initial());
  ASSERT_TRUE(tampered);
  EXPECT_THROW(fsm::validateFsm(bad), Error);
}

// ---------------------------------------------------------------------------
// Controller-fault mutations against the symbolic model checker
// (verify/symbolic_check.hpp): each canonical controller bug class must
// produce a BMC counterexample under the right MDL rule, decodable to a
// per-cycle waveform.
// ---------------------------------------------------------------------------

fsm::Guard renameInGuard(const fsm::Guard& g, const std::string& from,
                         const std::string& to) {
  fsm::Guard out = fsm::Guard::never();
  for (const fsm::GuardTerm& term : g.terms()) {
    fsm::Guard product = fsm::Guard::always();
    for (const auto& [sig, positive] : term.literals) {
      product = product.conjoin(
          fsm::Guard::literal(sig == from ? to : sig, positive));
    }
    out = out.disjoin(product);
  }
  return out;
}

fsm::Fsm renameFsmInput(const fsm::Fsm& src, const std::string& from,
                        const std::string& to) {
  fsm::Fsm out(src.name());
  for (std::size_t s = 0; s < src.numStates(); ++s) {
    out.addState(src.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : src.inputs()) {
    out.addInput(in == from ? to : in);
  }
  for (const std::string& o : src.outputs()) out.addOutput(o);
  for (const fsm::Transition& t : src.transitions()) {
    out.addTransition(t.from, t.to, renameInGuard(t.guard, from, to),
                      t.outputs);
  }
  out.setInitial(src.initial());
  return out;
}

/// The CEX-verdict property for `rule`, with the waveform sanity-checked.
const verify::SymbolicProperty& expectCex(const verify::SymbolicArtifact& art,
                                          const std::string& rule) {
  const verify::SymbolicProperty* found = nullptr;
  for (const verify::SymbolicProperty& p : art.stats.properties) {
    if (p.rule == rule) found = &p;
  }
  EXPECT_NE(found, nullptr) << "no property " << rule;
  EXPECT_EQ(found->verdict, verify::PropertyVerdict::Counterexample) << rule;
  EXPECT_GE(found->cexLength, 1) << rule;
  bool decoded = false;
  for (const verify::Diagnostic& d : art.report.diagnostics()) {
    if (d.code != rule) continue;
    EXPECT_NE(d.message.find("BMC counterexample"), std::string::npos);
    EXPECT_NE(d.message.find("cycle 0:"), std::string::npos) << d.message;
    decoded = true;
  }
  EXPECT_TRUE(decoded) << "no decodable counterexample diagnostic for "
                       << rule;
  return *found;
}

TEST(Mutation, SymbolicCatchesDroppedCompletionPulseEdge) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // Silence one cross-controller completion signal at its producer: the
  // pulse edge disappears from every transition, so the consumer's latch is
  // never set and it waits forever.
  std::string victim;
  for (const auto& [signal, consumers] : dcu.consumersOf) {
    const auto producer = dcu.producerOf.find(signal);
    if (producer == dcu.producerOf.end()) continue;
    for (int c : consumers) {
      if (c != producer->second) {
        victim = signal;
        break;
      }
    }
    if (!victim.empty()) break;
  }
  ASSERT_FALSE(victim.empty());
  fsm::UnitController& producer = dcu.controllers[dcu.producerOf.at(victim)];
  producer.fsm = dropSignalEverywhere(producer.fsm, victim);

  const verify::SymbolicArtifact art =
      verify::symbolicModelCheck(dcu, s, nullptr);
  expectCex(art, "MDL002");  // circular/starved wait: progress dies
}

TEST(Mutation, SymbolicCatchesSwappedGuardLiterals) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // Find a controller whose guards test two different completion latches in
  // different states and swap the two literals: one wait is now satisfied by
  // the wrong producer, firing its op before the true data predecessor.
  fsm::UnitController* victim = nullptr;
  std::string a, b;
  for (fsm::UnitController& c : dcu.controllers) {
    std::map<std::string, std::set<int>> statesOf;
    for (const fsm::Transition& t : c.fsm.transitions()) {
      for (const fsm::GuardTerm& term : t.guard.terms()) {
        for (const auto& [sig, positive] : term.literals) {
          const auto& latched = c.latchedInputs;
          if (std::find(latched.begin(), latched.end(), sig) != latched.end()) {
            statesOf[sig].insert(t.from);
          }
        }
      }
    }
    for (auto i = statesOf.begin(); i != statesOf.end() && !victim; ++i) {
      for (auto j = std::next(i); j != statesOf.end(); ++j) {
        std::set<int> both;
        std::set_intersection(i->second.begin(), i->second.end(),
                              j->second.begin(), j->second.end(),
                              std::inserter(both, both.begin()));
        if (both.empty()) {
          victim = &c;
          a = i->first;
          b = j->first;
          break;
        }
      }
    }
    if (victim) break;
  }
  ASSERT_NE(victim, nullptr) << "no controller waits on two distinct latches";
  victim->fsm = renameFsmInput(
      renameFsmInput(renameFsmInput(victim->fsm, a, "__swap__"), b, a),
      "__swap__", b);

  const verify::SymbolicArtifact art =
      verify::symbolicModelCheck(dcu, s, nullptr);
  expectCex(art, "MDL004");  // causality: RE before its data predecessor
}

TEST(Mutation, SymbolicCatchesOffByOneRestartState) {
  auto s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // Retarget a non-wrap completing transition of a multi-op controller back
  // to the initial state: the controller restarts its sequence one op early
  // and re-fires an RE it already issued this iteration.  The source must
  // not itself be the initial state, or the loop-back is a no-op (the
  // initial state's completing pulse fires on every exit path anyway).
  fsm::UnitController* victim = nullptr;
  std::size_t index = 0;
  for (fsm::UnitController& c : dcu.controllers) {
    if (c.ops.size() < 2) continue;
    const std::string lastRe =
        fsm::registerEnableSignal(s.graph.node(c.ops.back()).name);
    const auto& ts = c.fsm.transitions();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      const bool wraps = std::find(ts[i].outputs.begin(), ts[i].outputs.end(),
                                   lastRe) != ts[i].outputs.end();
      if (!wraps && !ts[i].outputs.empty() &&
          ts[i].from != c.fsm.initial() && ts[i].to != ts[i].from &&
          ts[i].to != c.fsm.initial()) {
        victim = &c;
        index = i;
        break;
      }
    }
    if (victim) break;
  }
  ASSERT_NE(victim, nullptr) << "no retargetable completing transition";
  victim->fsm =
      retargetTransition(victim->fsm, index, victim->fsm.initial());

  const verify::SymbolicArtifact art =
      verify::symbolicModelCheck(dcu, s, nullptr);
  expectCex(art, "MDL003");  // lock-step: an RE fires twice in one iteration
}

}  // namespace
}  // namespace tauhls
