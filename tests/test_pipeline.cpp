// Tests for the declarative pass pipeline (core/pipeline.hpp): bit-identity
// of the pipelined flow against an inline replica of the pre-pipeline
// monolithic sequence, demand-driven (lazy) evaluation, content-addressed
// cache behaviour across thread counts and config changes, FlowConfig
// validation and the chrome://tracing export.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/json.hpp"
#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/kiss.hpp"
#include "fsm/product.hpp"
#include "fsm/signal_opt.hpp"
#include "rtl/verilog.hpp"
#include "verify/symbolic_check.hpp"
#include "verify/verify.hpp"

namespace tauhls::core {
namespace {

// The pre-pipeline runFlow, reproduced verbatim from the monolithic
// implementation: the reference the pipeline must match bit for bit.
FlowResult seedFlow(const dfg::Dfg& graph, const FlowConfig& config) {
  FlowResult r;
  r.scheduled = sched::scheduleAndBind(graph, config.allocation,
                                       config.library, config.strategy);
  common::parallelFor(3, [&](std::size_t task) {
    switch (task) {
      case 0: {
        fsm::DistributedControlUnit dcu = fsm::buildDistributed(r.scheduled);
        if (config.optimizeSignals) {
          r.distributed = fsm::optimizeSignals(dcu, &r.signalStats);
        } else {
          r.distributed = std::move(dcu);
        }
        break;
      }
      case 1:
        r.centSync = fsm::buildCentSync(r.scheduled);
        break;
      case 2:
        r.latency =
            sim::compareLatencies(r.scheduled, config.ps, config.mcSamples);
        break;
    }
  });
  if (config.verify) {
    verify::VerifyOptions vo;
    vo.requestedAllocation = &config.allocation;
    vo.centSync = &r.centSync;
    vo.modelCheckMaxStates = config.verifyMaxStates;
    r.diagnostics = verify::verifyFlow(r.scheduled, r.distributed, vo);
    if (r.diagnostics.hasErrors()) {
      throw Error("static verification failed:\n" +
                  verify::renderText(r.diagnostics));
    }
  }
  if (config.buildCentFsm) {
    fsm::ProductOptions opt;
    opt.maxStates = config.centFsmMaxStates;
    r.centFsm = fsm::buildProduct(r.distributed, opt);
  }
  if (config.synthesizeArea) {
    const std::size_t rows = r.centFsm ? 3 : 2;
    common::parallelFor(rows, [&](std::size_t row) {
      switch (row) {
        case 0:
          r.distArea = synth::distributedArea(r.distributed, config.encoding);
          break;
        case 1:
          r.centSyncArea =
              synth::areaRow("CENT-SYNC-FSM", r.centSync, config.encoding);
          break;
        case 2:
          r.centFsmArea =
              synth::areaRow("CENT-FSM", *r.centFsm, config.encoding);
          break;
      }
    });
  }
  return r;
}

void expectSameRow(const sim::LatencyRow& a, const sim::LatencyRow& b) {
  EXPECT_EQ(a.bestNs, b.bestNs);
  EXPECT_EQ(a.worstNs, b.worstNs);
  EXPECT_EQ(a.averageNs, b.averageNs);  // exact double equality
}

void expectSameArea(const synth::AreaRow& a, const synth::AreaRow& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.states, b.states);
  EXPECT_EQ(a.flipFlops, b.flipFlops);
  EXPECT_EQ(a.combArea, b.combArea);
  EXPECT_EQ(a.seqArea, b.seqArea);
}

void expectSameFlowResult(const FlowResult& a, const FlowResult& b) {
  // Latency statistics, exact to the last bit.
  EXPECT_EQ(a.latency.ps, b.latency.ps);
  expectSameRow(a.latency.tau, b.latency.tau);
  expectSameRow(a.latency.dist, b.latency.dist);
  EXPECT_EQ(a.latency.enhancementPercent, b.latency.enhancementPercent);
  // Controllers: the emitted RTL and KISS2 renderings are complete
  // serializations, so string equality is structural equality.
  EXPECT_EQ(rtl::emitPackage(a.distributed, "eq"),
            rtl::emitPackage(b.distributed, "eq"));
  EXPECT_EQ(fsm::toKiss2(a.centSync), fsm::toKiss2(b.centSync));
  ASSERT_EQ(a.centFsm.has_value(), b.centFsm.has_value());
  if (a.centFsm) EXPECT_EQ(fsm::toKiss2(*a.centFsm), fsm::toKiss2(*b.centFsm));
  EXPECT_EQ(a.signalStats.removedOutputs, b.signalStats.removedOutputs);
  EXPECT_EQ(a.signalStats.keptOutputs, b.signalStats.keptOutputs);
  EXPECT_EQ(verify::renderText(a.diagnostics),
            verify::renderText(b.diagnostics));
  ASSERT_EQ(a.distArea.has_value(), b.distArea.has_value());
  if (a.distArea) {
    ASSERT_EQ(a.distArea->perController.size(),
              b.distArea->perController.size());
    for (std::size_t i = 0; i < a.distArea->perController.size(); ++i) {
      expectSameArea(a.distArea->perController[i],
                     b.distArea->perController[i]);
    }
    expectSameArea(a.distArea->total, b.distArea->total);
    EXPECT_EQ(a.distArea->completionLatches, b.distArea->completionLatches);
  }
  ASSERT_EQ(a.centSyncArea.has_value(), b.centSyncArea.has_value());
  if (a.centSyncArea) expectSameArea(*a.centSyncArea, *b.centSyncArea);
  ASSERT_EQ(a.centFsmArea.has_value(), b.centFsmArea.has_value());
  if (a.centFsmArea) expectSameArea(*a.centFsmArea, *b.centFsmArea);
  // Belt and braces: the public JSON report agrees too.
  EXPECT_EQ(toJson(a), toJson(b));
}

TEST(Pipeline, BitIdenticalToSeedPathForPaperSuite) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (sched::BindingStrategy strategy :
         {sched::BindingStrategy::LeftEdge,
          sched::BindingStrategy::CliqueCover}) {
      FlowConfig cfg;
      cfg.allocation = b.allocation;
      cfg.strategy = strategy;
      const FlowResult seed = seedFlow(b.graph, cfg);
      const FlowResult piped = runFlow(b.graph, cfg);
      SCOPED_TRACE(b.name);
      expectSameFlowResult(seed, piped);
    }
  }
}

TEST(Pipeline, BitIdenticalAcrossToggles) {
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark* diff = nullptr;
  for (const auto& b : suite) {
    if (b.name == "Diff.") diff = &b;
  }
  ASSERT_NE(diff, nullptr);
  for (bool verifyOn : {true, false}) {
    for (bool signalOpt : {true, false}) {
      FlowConfig cfg;
      cfg.allocation = diff->allocation;
      cfg.verify = verifyOn;
      cfg.optimizeSignals = signalOpt;
      cfg.buildCentFsm = true;  // exercise the product machine + its area row
      SCOPED_TRACE(::testing::Message()
                   << "verify=" << verifyOn << " signalOpt=" << signalOpt);
      expectSameFlowResult(seedFlow(diff->graph, cfg),
                           runFlow(diff->graph, cfg));
    }
  }
}

TEST(Pipeline, CacheHitDeterminismAcrossThreadCounts) {
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.synthesizeArea = false;

  std::string referenceJson;
  for (int threads : {1, 2, 8}) {
    common::setGlobalThreadCount(threads);
    auto cache = std::make_shared<ArtifactCache>();
    FlowPipeline first(b.graph, cfg, cache);
    const FlowResult r1 = first.run();
    const CacheStats afterFirst = cache->stats();
    EXPECT_EQ(afterFirst.hits, 0u);
    EXPECT_GT(afterFirst.misses, 0u);

    FlowPipeline second(b.graph, cfg, cache);
    const FlowResult r2 = second.run();
    const CacheStats afterSecond = cache->stats();
    // The re-run is served entirely from the cache...
    EXPECT_EQ(afterSecond.misses, afterFirst.misses);
    EXPECT_EQ(afterSecond.hits, afterFirst.misses);
    // ...and produces the same bits.
    expectSameFlowResult(r1, r2);

    // Every thread count yields the same report, byte for byte.
    if (referenceJson.empty()) {
      referenceJson = toJson(r1);
    } else {
      EXPECT_EQ(toJson(r1), referenceJson) << "threads=" << threads;
    }
  }
  common::setGlobalThreadCount(common::configuredThreadCount());
}

TEST(Pipeline, LazyEvaluationRunsOnlyTheDemandClosure) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;

  {
    // Requesting the schedule alone must run exactly one pass.
    auto cache = std::make_shared<ArtifactCache>();
    FlowPipeline p(b.graph, cfg, cache);
    p.require({Artifact::Schedule});
    EXPECT_TRUE(p.has(Artifact::Schedule));
    EXPECT_FALSE(p.has(Artifact::Latency));
    EXPECT_FALSE(p.has(Artifact::Distributed));
    std::set<std::string> ran;
    for (const auto& [pass, runs] : cache->stats().runsPerPass) {
      if (runs > 0) ran.insert(pass);
    }
    EXPECT_EQ(ran, (std::set<std::string>{"schedule"}));
  }
  {
    // A lint-style demand (diagnostics only) must not touch latency
    // statistics, the product machine, the area model or the RTL emitter.
    auto cache = std::make_shared<ArtifactCache>();
    FlowPipeline p(b.graph, cfg, cache);
    p.require({Artifact::Diagnostics});
    std::set<std::string> ran;
    for (const auto& [pass, runs] : cache->stats().runsPerPass) {
      if (runs > 0) ran.insert(pass);
    }
    EXPECT_EQ(ran, (std::set<std::string>{"cent-sync", "distributed",
                                          "schedule", "signal-opt",
                                          "verify"}));
    EXPECT_FALSE(p.has(Artifact::Latency));
    EXPECT_FALSE(p.has(Artifact::DistArea));
    EXPECT_FALSE(p.has(Artifact::Rtl));
  }
}

TEST(Pipeline, VerifyRunsOncePerSchedulePairAcrossPSweep) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  auto cache = std::make_shared<ArtifactCache>();
  for (double p : {0.9, 0.7, 0.5, 0.3}) {
    FlowConfig cfg;
    cfg.allocation = b.allocation;
    cfg.ps = {p};
    cfg.synthesizeArea = false;
    FlowPipeline pipeline(b.graph, cfg, cache);
    pipeline.run();
  }
  const CacheStats stats = cache->stats();
  // The (schedule, controllers) pair is shared by all four P points, so
  // verification (and everything upstream of latency) executed exactly once.
  EXPECT_EQ(stats.runsPerPass.at("verify"), 1u);
  EXPECT_EQ(stats.hitsPerPass.at("verify"), 3u);
  EXPECT_EQ(stats.runsPerPass.at("schedule"), 1u);
  EXPECT_EQ(stats.runsPerPass.at("latency"), 4u);
  EXPECT_EQ(stats.hitsPerPass.count("latency"), 0u);
}

TEST(Pipeline, BoundedCacheEvictsLeastRecentlyUsedFirst) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  // Three distinct schedule artifacts (the allocation is part of the
  // schedule key) in a two-entry cache.
  auto makeConfig = [&](int extraMults) {
    FlowConfig cfg;
    cfg.allocation = b.allocation;
    cfg.allocation[dfg::ResourceClass::Multiplier] += extraMults;
    return cfg;
  };
  auto scheduleOnly = [&](std::shared_ptr<ArtifactCache> cache,
                          const FlowConfig& cfg) {
    FlowPipeline p(b.graph, cfg, std::move(cache));
    p.require({Artifact::Schedule});
  };
  const FlowConfig a = makeConfig(0), bCfg = makeConfig(1), c = makeConfig(2);

  auto cache = std::make_shared<ArtifactCache>(/*maxEntries=*/2);
  scheduleOnly(cache, a);     // miss: cache = {A}
  scheduleOnly(cache, bCfg);  // miss: cache = {A, B}, B most recent
  scheduleOnly(cache, a);     // hit refreshes A, so B is now the LRU entry
  scheduleOnly(cache, c);     // miss: evicts B (not A), cache = {A, C}

  CacheStats stats = cache->stats();
  EXPECT_EQ(stats.runsPerPass.at("schedule"), 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);

  scheduleOnly(cache, a);     // still cached -- LRU kept the refreshed entry
  scheduleOnly(cache, c);     // still cached
  scheduleOnly(cache, bCfg);  // evicted above, so this recomputes

  stats = cache->stats();
  EXPECT_EQ(stats.runsPerPass.at("schedule"), 4u);
  EXPECT_EQ(stats.hitsPerPass.at("schedule"), 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(Pipeline, ArtifactKeysTrackOnlyDeclaredConfigFields) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig base;
  base.allocation = b.allocation;
  FlowPipeline p0(b.graph, base);

  // The encoding style feeds the area passes only.
  FlowConfig enc = base;
  enc.encoding = synth::EncodingStyle::OneHot;
  FlowPipeline p1(b.graph, enc);
  EXPECT_EQ(p0.artifactKey(Artifact::Schedule),
            p1.artifactKey(Artifact::Schedule));
  EXPECT_EQ(p0.artifactKey(Artifact::Latency),
            p1.artifactKey(Artifact::Latency));
  EXPECT_NE(p0.artifactKey(Artifact::DistArea),
            p1.artifactKey(Artifact::DistArea));

  // The P list feeds latency only.
  FlowConfig ps = base;
  ps.ps = {0.25};
  FlowPipeline p2(b.graph, ps);
  EXPECT_EQ(p0.artifactKey(Artifact::Schedule),
            p2.artifactKey(Artifact::Schedule));
  EXPECT_EQ(p0.artifactKey(Artifact::Diagnostics),
            p2.artifactKey(Artifact::Diagnostics));
  EXPECT_NE(p0.artifactKey(Artifact::Latency),
            p2.artifactKey(Artifact::Latency));

  // The allocation invalidates everything downstream of the schedule.
  FlowConfig alloc = base;
  alloc.allocation[dfg::ResourceClass::Multiplier] += 1;
  FlowPipeline p3(b.graph, alloc);
  EXPECT_NE(p0.artifactKey(Artifact::Schedule),
            p3.artifactKey(Artifact::Schedule));
  EXPECT_NE(p0.artifactKey(Artifact::Latency),
            p3.artifactKey(Artifact::Latency));

  // A different graph invalidates everything.
  const dfg::NamedBenchmark& other = suiteCopy.back();
  FlowConfig otherCfg;
  otherCfg.allocation = other.allocation;
  FlowPipeline p4(other.graph, otherCfg);
  EXPECT_NE(p0.artifactKey(Artifact::Schedule),
            p4.artifactKey(Artifact::Schedule));
}

void expectConfigError(const FlowConfig& cfg, const std::string& needle) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  try {
    validateFlowConfig(cfg);
    FAIL() << "expected validation to reject: " << needle;
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
  // Every entry point shares the validator.
  EXPECT_THROW(runFlow(b.graph, cfg), Error);
}

TEST(Pipeline, ValidatesFlowConfigUpFront) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;

  FlowConfig emptyPs = cfg;
  emptyPs.ps.clear();
  expectConfigError(emptyPs, "FlowConfig.ps");

  FlowConfig zeroP = cfg;
  zeroP.ps = {0.9, 0.0};
  expectConfigError(zeroP, "outside (0, 1]");

  FlowConfig bigP = cfg;
  bigP.ps = {1.5};
  expectConfigError(bigP, "outside (0, 1]");

  FlowConfig negP = cfg;
  negP.ps = {-0.1};
  expectConfigError(negP, "outside (0, 1]");

  FlowConfig samples = cfg;
  samples.mcSamples = 0;
  expectConfigError(samples, "mcSamples");

  FlowConfig zeroUnits = cfg;
  zeroUnits.allocation[dfg::ResourceClass::Adder] = 0;
  expectConfigError(zeroUnits, "at least one unit");

  FlowConfig states = cfg;
  states.verifyMaxStates = 0;
  expectConfigError(states, "verifyMaxStates");

  // P = 1.0 is the inclusive upper edge and must stay legal.
  FlowConfig edge = cfg;
  edge.ps = {1.0};
  EXPECT_NO_THROW(validateFlowConfig(edge));
}

TEST(Pipeline, TraceExportIsChromeCompatible) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.synthesizeArea = false;
  auto cache = std::make_shared<ArtifactCache>();
  FlowPipeline pipeline(b.graph, cfg, cache);
  pipeline.run();
  ASSERT_FALSE(pipeline.traceEvents().empty());

  FlowPipeline rerun(b.graph, cfg, cache);
  rerun.run();
  const bool anyHit =
      std::any_of(rerun.traceEvents().begin(), rerun.traceEvents().end(),
                  [](const PassTraceEvent& e) { return e.cacheHit; });
  EXPECT_TRUE(anyHit);

  const std::string json = traceToChromeJson(
      {{"first", pipeline.traceEvents()}, {"rerun", rerun.traceEvents()}});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"hit\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"miss\""), std::string::npos);
  // Two runs, two trace processes.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
}

TEST(Pipeline, RtlArtifactMatchesEmitVerilog) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  FlowPipeline pipeline(b.graph, cfg);
  const FlowResult r = pipeline.run();
  EXPECT_EQ(pipeline.get<std::string>(Artifact::Rtl), emitVerilog(r));
}

TEST(Pipeline, AutoModeRetiresMdl007WithSymbolicVerdicts) {
  const auto suiteCopy = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suiteCopy.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.synthesizeArea = false;
  cfg.verifyMaxStates = 1;  // starve the explicit engine into MDL007

  // Explicit mode keeps the capitulation warning.
  FlowPipeline ex(b.graph, cfg);
  EXPECT_TRUE(ex.run().diagnostics.has("MDL007"));

  // Auto mode demands the symbolic pass and replaces MDL007 with verdicts.
  cfg.modelCheck = ModelCheckMode::Auto;
  FlowPipeline au(b.graph, cfg);
  const FlowResult auResult = au.run();
  EXPECT_FALSE(auResult.diagnostics.has("MDL007"));
  EXPECT_TRUE(auResult.diagnostics.has("MDL008"));
  EXPECT_FALSE(auResult.diagnostics.hasErrors());
  EXPECT_TRUE(au.has(Artifact::SymbolicCheck));

  // With a sufficient bound auto never pays for the symbolic pass.
  cfg.verifyMaxStates = 200000;
  FlowPipeline cheap(b.graph, cfg);
  const FlowResult cheapResult = cheap.run();
  EXPECT_FALSE(cheapResult.diagnostics.has("MDL007"));
  EXPECT_FALSE(cheapResult.diagnostics.has("MDL008"));
  EXPECT_FALSE(cheap.has(Artifact::SymbolicCheck));

  // Symbolic mode skips the explicit exploration outright: no MDL007 at any
  // bound, and every property closes by induction on a clean benchmark.
  cfg.modelCheck = ModelCheckMode::Symbolic;
  cfg.verifyMaxStates = 1;
  FlowPipeline sym(b.graph, cfg);
  const FlowResult symResult = sym.run();
  EXPECT_FALSE(symResult.diagnostics.has("MDL007"));
  EXPECT_TRUE(symResult.diagnostics.has("MDL008"));
  EXPECT_FALSE(symResult.diagnostics.hasErrors());
  const auto& art =
      sym.get<verify::SymbolicArtifact>(Artifact::SymbolicCheck);
  ASSERT_EQ(art.stats.properties.size(), 5u);
  for (const verify::SymbolicProperty& p : art.stats.properties) {
    EXPECT_EQ(p.verdict, verify::PropertyVerdict::Proved) << p.rule;
    EXPECT_GE(p.inductionK, 1) << p.rule;
  }
}

}  // namespace
}  // namespace tauhls::core
