// The parallel experiment engine: thread-pool semantics (coverage, exception
// propagation, nesting) and the determinism contract -- every latency
// statistic is bit-identical for TAUHLS_THREADS in {1, 2, 8}, on the paper's
// Diff. and 5th-order-FIR benchmarks, and the parallel exact and Monte-Carlo
// estimators still cross-validate like the serial paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "dfg/benchmarks.hpp"
#include "sim/stats.hpp"

namespace tauhls {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::ScheduledDfg;

class GlobalThreadCountGuard {
 public:
  ~GlobalThreadCountGuard() {
    common::setGlobalThreadCount(common::configuredThreadCount());
  }
};

TEST(ThreadPool, ForEachCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    common::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.forEach(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, EmptyAndSingleRegionsRunInline) {
  common::ThreadPool pool(4);
  int calls = 0;
  pool.forEach(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.forEach(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.forEach(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ThreadPool, NestedRegionsRunInlineWithoutDeadlock) {
  GlobalThreadCountGuard guard;
  common::setGlobalThreadCount(4);
  std::atomic<int> count{0};
  common::parallelFor(8, [&](std::size_t) {
    EXPECT_TRUE(common::ThreadPool::insideWorker());
    common::parallelFor(8, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ChunkGridIsAFunctionOfProblemSizeOnly) {
  EXPECT_EQ(common::chunkCountFor(0), 0u);
  EXPECT_EQ(common::chunkCountFor(1), 1u);
  EXPECT_EQ(common::chunkCountFor(200), 200u);
  EXPECT_EQ(common::chunkCountFor(256), 256u);
  EXPECT_EQ(common::chunkCountFor(1u << 20), 256u);
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  auto run = [] {
    return common::parallelReduce<double>(
        64, 0.0,
        [](std::size_t chunk) {
          double partial = 0.0;
          for (int i = 0; i < 100; ++i) {
            partial += std::sqrt(static_cast<double>(chunk * 100 + i) + 0.1);
          }
          return partial;
        },
        [](double acc, double partial) { return acc + partial; });
  };
  common::setGlobalThreadCount(1);
  const double serial = run();
  for (int threads : {2, 8}) {
    common::setGlobalThreadCount(threads);
    EXPECT_EQ(run(), serial) << threads << " threads";
  }
}

// -- determinism regressions on the paper benchmarks ------------------------

ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

ScheduledDfg scheduledFir5() {
  return sched::scheduleAndBind(dfg::fir(5),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1}},
                                tau::paperLibrary());
}

TEST(StatsDeterminism, ExactAverageBitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  for (const ScheduledDfg& s : {scheduledDiffeq(), scheduledFir5()}) {
    for (sim::ControlStyle style :
         {sim::ControlStyle::Distributed, sim::ControlStyle::CentSync}) {
      for (double p : {0.9, 0.5}) {
        common::setGlobalThreadCount(1);
        const double serial = sim::averageCyclesExact(s, style, p);
        for (int threads : {2, 8}) {
          common::setGlobalThreadCount(threads);
          // EXPECT_EQ on doubles is exact: any drift in summation order or
          // work partitioning fails here.
          EXPECT_EQ(sim::averageCyclesExact(s, style, p), serial)
              << s.graph.name() << " p=" << p << " threads=" << threads;
        }
      }
    }
  }
}

TEST(StatsDeterminism, MonteCarloBitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  for (const ScheduledDfg& s : {scheduledDiffeq(), scheduledFir5()}) {
    for (double p : {0.9, 0.5}) {
      common::setGlobalThreadCount(1);
      const double serial = sim::averageCyclesMonteCarlo(
          s, sim::ControlStyle::Distributed, p, 5000, 42);
      for (int threads : {2, 8}) {
        common::setGlobalThreadCount(threads);
        EXPECT_EQ(sim::averageCyclesMonteCarlo(s, sim::ControlStyle::Distributed,
                                               p, 5000, 42),
                  serial)
            << s.graph.name() << " p=" << p << " threads=" << threads;
      }
    }
  }
}

TEST(StatsDeterminism, CompareLatenciesBitIdenticalAcrossThreadCounts) {
  GlobalThreadCountGuard guard;
  const ScheduledDfg s = scheduledDiffeq();
  common::setGlobalThreadCount(1);
  const sim::LatencyComparison serial = sim::compareLatencies(s, {0.9, 0.7, 0.5});
  for (int threads : {2, 8}) {
    common::setGlobalThreadCount(threads);
    const sim::LatencyComparison parallel =
        sim::compareLatencies(s, {0.9, 0.7, 0.5});
    EXPECT_EQ(parallel.tau.bestNs, serial.tau.bestNs);
    EXPECT_EQ(parallel.tau.worstNs, serial.tau.worstNs);
    for (std::size_t i = 0; i < serial.ps.size(); ++i) {
      EXPECT_EQ(parallel.tau.averageNs[i], serial.tau.averageNs[i]) << i;
      EXPECT_EQ(parallel.dist.averageNs[i], serial.dist.averageNs[i]) << i;
      EXPECT_EQ(parallel.enhancementPercent[i], serial.enhancementPercent[i]);
    }
  }
}

TEST(StatsDeterminism, ParallelExactCrossValidatesMonteCarlo) {
  GlobalThreadCountGuard guard;
  common::setGlobalThreadCount(8);
  for (const ScheduledDfg& s : {scheduledDiffeq(), scheduledFir5()}) {
    for (double p : {0.9, 0.5}) {
      const double exact =
          sim::averageCyclesExact(s, sim::ControlStyle::Distributed, p);
      const double mc = sim::averageCyclesMonteCarlo(
          s, sim::ControlStyle::Distributed, p, 20000, 42);
      EXPECT_NEAR(mc, exact, 0.05) << s.graph.name() << " p=" << p;
    }
  }
}

TEST(StatsDeterminism, EngineOverloadsMatchRebuildPath) {
  const ScheduledDfg s = scheduledDiffeq();
  const sim::MakespanEngine engine(s);
  for (sim::ControlStyle style :
       {sim::ControlStyle::Distributed, sim::ControlStyle::CentSync}) {
    EXPECT_EQ(sim::averageCyclesExact(s, engine, style, 0.7),
              sim::averageCyclesExact(s, style, 0.7));
    EXPECT_EQ(sim::averageCyclesMonteCarlo(s, engine, style, 0.7, 1000, 9),
              sim::averageCyclesMonteCarlo(s, style, 0.7, 1000, 9));
  }
}

}  // namespace
}  // namespace tauhls
