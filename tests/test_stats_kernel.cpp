// Property tests for the rebuilt latency-statistics kernel: the closed-form
// CentSync expectation against full enumeration, the Gray-code incremental
// distributed sweep against the brute-force reference (bit-identical, at any
// thread count), the mask-native engine API against the OperandClasses path,
// and the raised 24-TAU-op exact-enumeration cap.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "dfg/benchmarks.hpp"
#include "sim/stats.hpp"
#include "tau/library.hpp"
#include "testutil.hpp"

namespace tauhls {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::ScheduledDfg;

class GlobalThreadCountGuard {
 public:
  ~GlobalThreadCountGuard() {
    common::setGlobalThreadCount(common::configuredThreadCount());
  }
};

std::vector<ScheduledDfg> paperBenchmarks() {
  std::vector<ScheduledDfg> out;
  out.push_back(sched::scheduleAndBind(
      dfg::diffeq(),
      Allocation{{ResourceClass::Multiplier, 2},
                 {ResourceClass::Adder, 1},
                 {ResourceClass::Subtractor, 1}},
      tau::paperLibrary()));
  out.push_back(sched::scheduleAndBind(
      dfg::fir(3),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary()));
  out.push_back(sched::scheduleAndBind(
      dfg::fir(5),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary()));
  out.push_back(sched::scheduleAndBind(
      dfg::arLattice(),
      Allocation{{ResourceClass::Multiplier, 4}, {ResourceClass::Adder, 2}},
      tau::paperLibrary()));
  return out;
}

/// A schedule with `n` TAU ops (independent multiplications on 3 units).
ScheduledDfg manyTauSchedule(int n) {
  return sched::scheduleAndBind(test::parallelMuls(n),
                                Allocation{{ResourceClass::Multiplier, 3}},
                                tau::paperLibrary());
}

// (a) Closed-form sync expectation equals the enumerated expectation on every
// paper benchmark, across the whole P range including both degenerate ends.
TEST(StatsKernel, ClosedFormSyncMatchesEnumeration) {
  for (const ScheduledDfg& s : paperBenchmarks()) {
    const sim::MakespanEngine engine(s);
    for (double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
      const double closed =
          sim::averageCyclesExact(s, engine, sim::ControlStyle::CentSync, p);
      const double enumerated = sim::averageCyclesExactReference(
          s, engine, sim::ControlStyle::CentSync, p);
      EXPECT_NEAR(closed, enumerated, 1e-9)
          << s.graph.name() << " p=" << p;
    }
  }
}

// (b) The Gray-code incremental sweep reproduces the naive full-sweep result
// EXACTLY (same accumulation order, same weights), at every thread count.
TEST(StatsKernel, GrayCodeSweepBitIdenticalToReference) {
  GlobalThreadCountGuard guard;
  for (const ScheduledDfg& s : paperBenchmarks()) {
    const sim::MakespanEngine engine(s);
    for (double p : {0.25, 0.7}) {
      for (int threads : {1, 2, 8}) {
        common::setGlobalThreadCount(threads);
        EXPECT_EQ(
            sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed,
                                    p),
            sim::averageCyclesExactReference(
                s, engine, sim::ControlStyle::Distributed, p))
            << s.graph.name() << " p=" << p << " threads=" << threads;
      }
    }
  }
}

// The shared-enumeration P-sweep returns, entry for entry, exactly what the
// standalone per-P calls return -- for both styles, at every thread count.
TEST(StatsKernel, SweepMatchesPerPointCallsBitForBit) {
  GlobalThreadCountGuard guard;
  const std::vector<double> ps = {1.0, 0.9, 0.7, 0.5, 0.25, 0.0};
  for (const ScheduledDfg& s : paperBenchmarks()) {
    const sim::MakespanEngine engine(s);
    for (sim::ControlStyle style :
         {sim::ControlStyle::Distributed, sim::ControlStyle::CentSync}) {
      for (int threads : {1, 2, 8}) {
        common::setGlobalThreadCount(threads);
        const std::vector<double> swept =
            sim::averageCyclesExactSweep(s, engine, style, ps);
        ASSERT_EQ(swept.size(), ps.size());
        for (std::size_t i = 0; i < ps.size(); ++i) {
          EXPECT_EQ(swept[i],
                    sim::averageCyclesExact(s, engine, style, ps[i]))
              << s.graph.name() << " p=" << ps[i] << " threads=" << threads;
        }
      }
    }
  }
}

// The mask-native evaluation path agrees with the OperandClasses path on
// every assignment, and maskOf inverts fromMask.
TEST(StatsKernel, MaskApiMatchesClassesApi) {
  for (const ScheduledDfg& s : paperBenchmarks()) {
    const sim::MakespanEngine engine(s);
    const int n = engine.numTauOps();
    if (n > 12) continue;  // exhaustive check only for small designs
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
      const sim::OperandClasses classes = sim::fromMask(s, mask);
      EXPECT_EQ(engine.maskOf(classes), mask);
      EXPECT_EQ(engine.distributedCycles(mask),
                engine.distributedCycles(classes))
          << s.graph.name() << " mask=" << mask;
      EXPECT_EQ(engine.syncCycles(mask), engine.syncCycles(classes))
          << s.graph.name() << " mask=" << mask;
    }
  }
}

// Incremental flipTau delta propagation never drifts from a from-scratch
// evaluation, across a full Gray-code tour of the diffeq mask space.
TEST(StatsKernel, IncrementalFlipMatchesFullEvaluation) {
  const ScheduledDfg s = paperBenchmarks().front();
  const sim::MakespanEngine engine(s);
  const int n = engine.numTauOps();
  sim::MakespanEngine::DistributedSweep sweep(engine);
  sweep.evalFull(0);
  for (std::uint64_t o = 1; o < (std::uint64_t{1} << n); ++o) {
    const int incremental = sweep.flipTau(std::countr_zero(o));
    EXPECT_EQ(incremental, engine.distributedCycles(sweep.mask()))
        << "mask=" << sweep.mask();
  }
}

// (c) The raised cap: a 22-TAU-op design enumerates exactly (the old 20-op
// cap rejected it), degenerate P hits the extremes exactly, and Monte-Carlo
// cross-validates the enumerated expectation.
TEST(StatsKernel, ExactEnumerationHandles22TauOps) {
  const ScheduledDfg s = manyTauSchedule(22);
  const sim::MakespanEngine engine(s);
  ASSERT_EQ(engine.numTauOps(), 22);
  ASSERT_GT(engine.numTauOps(), 20);  // beyond the old cap

  const int best = sim::bestCaseCycles(engine, sim::ControlStyle::Distributed);
  const int worst =
      sim::worstCaseCycles(engine, sim::ControlStyle::Distributed);
  EXPECT_EQ(sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed,
                                    1.0),
            best);
  EXPECT_EQ(sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed,
                                    0.0),
            worst);

  const double avg =
      sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed, 0.7);
  EXPECT_GE(avg, best);
  EXPECT_LE(avg, worst);
  const double mc = sim::averageCyclesMonteCarlo(
      s, engine, sim::ControlStyle::Distributed, 0.7, 20000, 42);
  EXPECT_NEAR(mc, avg, 0.05);
}

// Beyond the 24-op cap the Distributed enumeration refuses, while the
// closed-form CentSync expectation keeps working at any TAU count.
TEST(StatsKernel, SyncColumnHasNoCap) {
  const ScheduledDfg s = manyTauSchedule(25);
  const sim::MakespanEngine engine(s);
  ASSERT_GT(engine.numTauOps(), sim::kMaxExactTauOps);
  EXPECT_THROW(
      sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed, 0.5),
      Error);

  const double avg =
      sim::averageCyclesExact(s, engine, sim::ControlStyle::CentSync, 0.5);
  EXPECT_GE(avg, sim::bestCaseCycles(engine, sim::ControlStyle::CentSync));
  EXPECT_LE(avg, sim::worstCaseCycles(engine, sim::ControlStyle::CentSync));
  EXPECT_EQ(
      sim::averageCyclesExact(s, engine, sim::ControlStyle::CentSync, 1.0),
      sim::bestCaseCycles(engine, sim::ControlStyle::CentSync));
  EXPECT_EQ(
      sim::averageCyclesExact(s, engine, sim::ControlStyle::CentSync, 0.0),
      sim::worstCaseCycles(engine, sim::ControlStyle::CentSync));
}

// The buffered randomClasses overload and the mask sampler draw the very same
// Bernoulli sequence as the allocating overload.
TEST(StatsKernel, RandomSamplersAgreeBitForBit) {
  const ScheduledDfg s = paperBenchmarks().front();
  const std::vector<dfg::NodeId> taus = sim::tauOps(s);
  sim::OperandClasses buffered;
  for (std::uint64_t seed : {1ull, 42ull, 1234567ull}) {
    const sim::OperandClasses fresh = sim::randomClasses(s, 0.7, seed);
    sim::randomClasses(s, taus, 0.7, seed, buffered);
    EXPECT_EQ(fresh.shortClass, buffered.shortClass) << "seed=" << seed;
    const std::uint64_t mask =
        sim::randomClassMask(static_cast<int>(taus.size()), 0.7, seed);
    for (std::size_t i = 0; i < taus.size(); ++i) {
      EXPECT_EQ((mask >> i) & 1, fresh.shortClass[taus[i]] ? 1u : 0u)
          << "seed=" << seed << " tau=" << i;
    }
  }
}

// --- adaptive exact<->MC crossover ----------------------------------------

// With default options and a graph under the exact cap, the adaptive
// overload of compareLatencies is bit-identical to the legacy one.
TEST(StatsKernel, AdaptiveCompareLatenciesBitIdenticalUnderCap) {
  const std::vector<double> ps = {0.9, 0.7, 0.5};
  for (const ScheduledDfg& s : paperBenchmarks()) {
    const sim::LatencyComparison legacy = sim::compareLatencies(s, ps);
    std::vector<sim::McEstimate> info;
    const sim::LatencyComparison adaptive =
        sim::compareLatencies(s, ps, sim::LatencyOptions{}, &info);
    ASSERT_EQ(info.size(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_EQ(adaptive.tau.averageNs[i], legacy.tau.averageNs[i]);
      EXPECT_EQ(adaptive.dist.averageNs[i], legacy.dist.averageNs[i]);
      EXPECT_EQ(adaptive.enhancementPercent[i], legacy.enhancementPercent[i]);
      EXPECT_EQ(info[i].samples, 0u);  // the exact path ran, no MC spent
    }
    EXPECT_EQ(adaptive.dist.bestNs, legacy.dist.bestNs);
    EXPECT_EQ(adaptive.dist.worstNs, legacy.dist.worstNs);
  }
}

// A lowered exact cap forces the Monte-Carlo path on a graph whose exact
// value is still computable: the reported 95% confidence interval must
// cover the exact expectation, and the half-width must have reached the
// requested target (or exhausted the sample ceiling trying).
TEST(StatsKernel, McCrossoverIntervalCoversExactValue) {
  const ScheduledDfg s = manyTauSchedule(14);
  const sim::MakespanEngine engine(s);
  ASSERT_LE(engine.numTauOps(), sim::kMaxExactTauOps);
  for (const double p : {0.5, 0.8}) {
    const double exact =
        sim::averageCyclesExact(s, engine, sim::ControlStyle::Distributed, p);
    sim::LatencyOptions options;
    options.exactCap = 10;  // below the 14 TAU ops: forces MC
    options.mcSamples = 4000;
    options.mcTargetHalfWidth = 0.02;
    const sim::McEstimate est = sim::averageCyclesMonteCarloAdaptive(
        s, engine, sim::ControlStyle::Distributed, p, options);
    EXPECT_GE(est.samples, 4000u);
    EXPECT_TRUE(est.halfWidth <= options.mcTargetHalfWidth ||
                est.samples >=
                    static_cast<std::uint64_t>(options.mcMaxSamples));
    // Seeded and deterministic, so a covering interval stays covering.
    EXPECT_NEAR(est.mean, exact, 2.0 * est.halfWidth)
        << "p=" << p << " samples=" << est.samples;
  }
}

// The adaptive estimator is bit-identical across thread counts (counter
// seeds + fixed chunk grid + doubling rounds recomputed from scratch).
TEST(StatsKernel, AdaptiveMcDeterministicAcrossThreads) {
  GlobalThreadCountGuard guard;
  const ScheduledDfg s = manyTauSchedule(14);
  const sim::MakespanEngine engine(s);
  sim::LatencyOptions options;
  options.exactCap = 10;
  options.mcSamples = 2000;
  options.mcTargetHalfWidth = 0.05;
  common::setGlobalThreadCount(1);
  const sim::McEstimate reference = sim::averageCyclesMonteCarloAdaptive(
      s, engine, sim::ControlStyle::Distributed, 0.7, options);
  for (const int threads : {2, 8}) {
    common::setGlobalThreadCount(threads);
    const sim::McEstimate est = sim::averageCyclesMonteCarloAdaptive(
        s, engine, sim::ControlStyle::Distributed, 0.7, options);
    EXPECT_EQ(est.mean, reference.mean) << "threads=" << threads;
    EXPECT_EQ(est.halfWidth, reference.halfWidth) << "threads=" << threads;
    EXPECT_EQ(est.samples, reference.samples) << "threads=" << threads;
  }
}

// Past the hard 24-op enumeration cap the adaptive crossover no longer
// throws (the legacy fixed-sample path is the only alternative there): the
// column comes back seeded-MC with finite CI info.
TEST(StatsKernel, AdaptiveCrossoverHandlesGraphsPastTheHardCap) {
  const ScheduledDfg s = manyTauSchedule(25);
  const sim::MakespanEngine engine(s);
  ASSERT_GT(engine.numTauOps(), sim::kMaxExactTauOps);
  sim::LatencyOptions options;
  options.mcSamples = 2000;
  options.mcTargetHalfWidth = 0.05;
  std::vector<sim::McEstimate> info;
  const sim::LatencyComparison out =
      sim::compareLatencies(s, {0.9, 0.5}, options, &info);
  ASSERT_EQ(info.size(), 2u);
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_GT(info[i].samples, 0u);
    EXPECT_GT(info[i].halfWidth, 0.0);
    EXPECT_GE(out.dist.averageNs[i],
              out.dist.bestNs - 1e-9);
    EXPECT_LE(out.dist.averageNs[i],
              out.dist.worstNs + 1e-9);
  }
}

}  // namespace
}  // namespace tauhls
