#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace tauhls {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    TAUHLS_CHECK(false, "the message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("check"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(TAUHLS_CHECK(1 + 1 == 2, "never"));
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(TAUHLS_FAIL("boom"), Error);
}

TEST(Error, AssertReportsAssertKind) {
  try {
    TAUHLS_ASSERT(false, "inv");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("assert"), std::string::npos);
  }
}

TEST(Strings, JoinBasics) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitDropsEmptyByDefault) {
  EXPECT_EQ(split("a;;b;", ';'), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(split("a;;b", ';', true), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_TRUE(split("", ';').empty());
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(isIdentifier("a"));
  EXPECT_TRUE(isIdentifier("_x9"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("9x"));
  EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(Strings, ZeroPad) {
  EXPECT_EQ(zeroPad(7, 3), "007");
  EXPECT_EQ(zeroPad(1234, 3), "1234");
  EXPECT_EQ(zeroPad(0, 1), "0");
}

}  // namespace
}  // namespace tauhls
