#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/kiss.hpp"
#include "sim/interp.hpp"
#include "testutil.hpp"

namespace tauhls::fsm {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

Fsm sampleMachine() {
  Fsm f("sample");
  int s0 = f.addState("S0");
  int s1 = f.addState("S1");
  f.addInput("c");
  f.addInput("d");
  f.addOutput("x");
  f.addOutput("y");
  f.addTransition(s0, s1, Guard::allOf({"c", "d"}), {"x", "y"});
  f.addTransition(s0, s0, Guard::notAllOf({"c", "d"}), {"x"});
  f.addTransition(s1, s0, Guard::always(), {});
  f.setInitial(s0);
  return f;
}

TEST(Kiss, HeaderAndRows) {
  std::string k = toKiss2(sampleMachine());
  EXPECT_NE(k.find(".i 2"), std::string::npos);
  EXPECT_NE(k.find(".o 2"), std::string::npos);
  EXPECT_NE(k.find(".s 2"), std::string::npos);
  EXPECT_NE(k.find(".r S0"), std::string::npos);
  // notAllOf({c,d}) expands into two product-term rows.
  EXPECT_NE(k.find(".p 4"), std::string::npos);
  EXPECT_NE(k.find("11 S0 S1 11"), std::string::npos);
  EXPECT_NE(k.find("0- S0 S0 10"), std::string::npos);
  EXPECT_NE(k.find("-0 S0 S0 10"), std::string::npos);
  EXPECT_NE(k.find("-- S1 S0 00"), std::string::npos);
  // Signal-name comments for lossless reimport.
  EXPECT_NE(k.find("#i c d"), std::string::npos);
  EXPECT_NE(k.find("#o x y"), std::string::npos);
}

TEST(Kiss, RoundTripPreservesBehaviour) {
  Fsm f = sampleMachine();
  Fsm back = fromKiss2(toKiss2(f), "back");
  EXPECT_EQ(back.numStates(), f.numStates());
  EXPECT_EQ(back.inputs(), f.inputs());
  EXPECT_EQ(back.outputs(), f.outputs());
  EXPECT_EQ(sim::compareOnRandomTraces(f, back, 3, 10, 60), -1);
}

TEST(Kiss, RoundTripForGeneratedControllers) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    Fsm back = fromKiss2(toKiss2(c.fsm), c.fsm.name());
    EXPECT_EQ(sim::compareOnRandomTraces(c.fsm, back, 7, 5, 40), -1)
        << c.fsm.name();
  }
  Fsm sync = buildCentSync(s);
  Fsm back = fromKiss2(toKiss2(sync), "sync");
  EXPECT_EQ(sim::compareOnRandomTraces(sync, back, 7, 5, 40), -1);
}

TEST(Kiss, ZeroInputMachine) {
  Fsm f("noin");
  int a = f.addState("A");
  int b = f.addState("B");
  f.addOutput("t");
  f.addTransition(a, b, Guard::always(), {"t"});
  f.addTransition(b, a, Guard::always(), {});
  f.setInitial(a);
  std::string k = toKiss2(f);
  EXPECT_NE(k.find(".i 0"), std::string::npos);
  Fsm back = fromKiss2(k);
  EXPECT_EQ(back.numStates(), 2u);
  EXPECT_EQ(sim::compareOnRandomTraces(f, back, 1, 3, 10), -1);
}

TEST(Kiss, ParserRejectsGarbage) {
  EXPECT_THROW(fromKiss2(""), Error);
  EXPECT_THROW(fromKiss2(".i 2\n.o 1\n"), Error);           // no rows
  EXPECT_THROW(fromKiss2(".i 2\n.o 1\n1 S0 S1 1\n"), Error);  // short cube
  EXPECT_THROW(fromKiss2(".i 1\n.o 1\nz S0 S1 1\n"), Error);  // bad char
}

TEST(Kiss, ParserSynthesizesNamesWithoutComments) {
  Fsm f = fromKiss2(".i 1\n.o 1\n.r A\n1 A B 1\n0 A A 0\n- B A 0\n");
  EXPECT_EQ(f.inputs(), (std::vector<std::string>{"in0"}));
  EXPECT_EQ(f.outputs(), (std::vector<std::string>{"out0"}));
  EXPECT_EQ(f.stateName(f.initial()), "A");
  validateFsm(f);
}

}  // namespace
}  // namespace tauhls::fsm
