#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "sim/stats.hpp"
#include "sim/streaming.hpp"
#include "testutil.hpp"

namespace tauhls::sim {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::ScheduledDfg;

ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

TEST(Streaming, SingleIterationEqualsMakespan) {
  ScheduledDfg s = scheduledDiffeq();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    OperandClasses c = randomClasses(s, 0.5, seed);
    StreamingResult r = streamingMakespan(s, {c});
    EXPECT_EQ(r.totalCycles, distributedMakespanCycles(s, c));
    EXPECT_EQ(r.avgInitiationInterval, r.totalCycles);
  }
}

TEST(Streaming, OverlapNeverHurts) {
  // Total cycles of R overlapped iterations <= R x single-iteration worst,
  // and the initiation interval <= the single-iteration makespan.
  ScheduledDfg s = scheduledDiffeq();
  const int R = 8;
  StreamingResult r = streamingMakespanRandom(s, R, 0.7, 3);
  const int single = worstCaseCycles(s, ControlStyle::Distributed);
  EXPECT_LE(r.totalCycles, R * single);
  EXPECT_LE(r.avgInitiationInterval, single + 1e-9);
  ASSERT_EQ(r.iterationFinish.size(), static_cast<std::size_t>(R));
  for (int k = 1; k < R; ++k) {
    EXPECT_GT(r.iterationFinish[k], r.iterationFinish[k - 1]);
  }
}

TEST(Streaming, SerialChainHasNoOverlap) {
  // One unit, fully serial chain: iteration k+1 starts only after k ends.
  dfg::Dfg g = test::mulChain(3);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 1}}, tau::paperLibrary());
  std::vector<OperandClasses> iters(4, allShort(s));
  StreamingResult r = streamingMakespan(s, iters);
  EXPECT_EQ(r.totalCycles, 4 * 3);
  EXPECT_DOUBLE_EQ(r.avgInitiationInterval, 3.0);
}

TEST(Streaming, UnbalancedUnitsOverlap) {
  // Two mults on one unit feed one add: the mult unit starts iteration 2
  // while the adder finishes iteration 1 -> II < single-iteration latency.
  dfg::Dfg g = test::diamond();
  ScheduledDfg s = sched::scheduleAndBind(
      g,
      Allocation{{ResourceClass::Multiplier, 1}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  std::vector<OperandClasses> iters(6, allShort(s));
  StreamingResult r = streamingMakespan(s, iters);
  const int single = distributedMakespanCycles(s, allShort(s));
  EXPECT_LT(r.avgInitiationInterval, single);
}

TEST(Streaming, MixedClassesPerIteration) {
  ScheduledDfg s = scheduledDiffeq();
  std::vector<OperandClasses> iters{allShort(s), allLong(s), allShort(s)};
  StreamingResult r = streamingMakespan(s, iters);
  // The all-LD middle iteration must push iteration 3 later than an all-SD
  // middle would.
  std::vector<OperandClasses> fast{allShort(s), allShort(s), allShort(s)};
  StreamingResult rf = streamingMakespan(s, fast);
  EXPECT_GT(r.totalCycles, rf.totalCycles);
}

TEST(Streaming, RejectsEmptyAndMismatched) {
  ScheduledDfg s = scheduledDiffeq();
  EXPECT_THROW(streamingMakespan(s, {}), Error);
  OperandClasses bad;
  bad.shortClass.assign(3, true);
  EXPECT_THROW(streamingMakespan(s, {bad}), Error);
  EXPECT_THROW(streamingMakespanRandom(s, 0, 0.5), Error);
}

class StreamingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingProperty, PrefixConsistencyOnRandomGraphs) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 53;
  spec.numOps = 6 + static_cast<int>(GetParam() % 10);
  dfg::Dfg g = dfg::randomDfg(spec);
  ScheduledDfg s = sched::scheduleAndBind(g,
                                          Allocation{{ResourceClass::Multiplier, 2},
                                                     {ResourceClass::Adder, 1},
                                                     {ResourceClass::Subtractor, 1}},
                                          tau::paperLibrary());
  // Running R iterations then truncating must match running R-1 directly:
  // the analysis is causal (later iterations cannot change earlier ones).
  std::vector<OperandClasses> iters;
  for (std::uint64_t k = 0; k < 5; ++k) {
    iters.push_back(randomClasses(s, 0.6, GetParam() * 10 + k));
  }
  StreamingResult full = streamingMakespan(s, iters);
  for (std::size_t r = 1; r < iters.size(); ++r) {
    std::vector<OperandClasses> prefix(iters.begin(),
                                       iters.begin() + static_cast<long>(r));
    StreamingResult part = streamingMakespan(s, prefix);
    ASSERT_EQ(part.iterationFinish.size(), r);
    for (std::size_t k = 0; k < r; ++k) {
      EXPECT_EQ(part.iterationFinish[k], full.iterationFinish[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tauhls::sim
