#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "logic/cover.hpp"
#include "logic/cube.hpp"
#include "logic/minimize.hpp"
#include "logic/truth_table.hpp"

namespace tauhls::logic {
namespace {

TEST(Cube, FullCoversEverything) {
  Cube c = Cube::full(4);
  EXPECT_EQ(c.numLiterals(), 0);
  for (std::uint64_t m = 0; m < 16; ++m) EXPECT_TRUE(c.covers(m));
  EXPECT_EQ(c.size(), 16u);
}

TEST(Cube, MintermCoversExactlyOne) {
  Cube c = Cube::minterm(4, 0b1010);
  EXPECT_EQ(c.numLiterals(), 4);
  EXPECT_EQ(c.size(), 1u);
  for (std::uint64_t m = 0; m < 16; ++m) {
    EXPECT_EQ(c.covers(m), m == 0b1010);
  }
}

TEST(Cube, LiteralManipulation) {
  Cube c = Cube::full(3);
  c.setLiteral(0, true);
  c.setLiteral(2, false);
  EXPECT_TRUE(c.hasLiteral(0));
  EXPECT_FALSE(c.hasLiteral(1));
  EXPECT_TRUE(c.literalPositive(0));
  EXPECT_FALSE(c.literalPositive(2));
  EXPECT_EQ(c.toString(), "1-0");
  EXPECT_TRUE(c.covers(0b001));
  EXPECT_TRUE(c.covers(0b011));
  EXPECT_FALSE(c.covers(0b101));
  c.dropLiteral(2);
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_THROW(c.literalPositive(2), Error);
}

TEST(Cube, Containment) {
  Cube big = Cube::full(3);
  big.setLiteral(0, true);  // x0
  Cube small = Cube::minterm(3, 0b101);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Cube, Intersection) {
  Cube a = Cube::full(3);
  a.setLiteral(0, true);
  Cube b = Cube::full(3);
  b.setLiteral(0, false);
  EXPECT_FALSE(a.intersects(b));
  Cube c = Cube::full(3);
  c.setLiteral(1, true);
  EXPECT_TRUE(a.intersects(c));
}

TEST(Cube, QmMerge) {
  Cube a = Cube::minterm(3, 0b000);
  Cube b = Cube::minterm(3, 0b001);
  auto m = a.merge(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->toString(), "-00");
  EXPECT_TRUE(m->covers(0b000));
  EXPECT_TRUE(m->covers(0b001));
  EXPECT_FALSE(m->covers(0b010));
  // Distance-2 minterms don't merge.
  EXPECT_FALSE(Cube::minterm(3, 0b000).merge(Cube::minterm(3, 0b011)).has_value());
  // Different care sets don't merge.
  Cube wide = Cube::full(3);
  wide.setLiteral(0, true);
  EXPECT_FALSE(wide.merge(a).has_value());
}

TEST(Cube, MintermEnumeration) {
  Cube c = Cube::full(3);
  c.setLiteral(1, true);
  auto ms = c.minterms();
  EXPECT_EQ(ms.size(), 4u);
  for (std::uint64_t m : ms) EXPECT_TRUE(c.covers(m));
}

TEST(Cover, EvaluateAndLiterals) {
  Cover cov(3);
  Cube a = Cube::full(3);
  a.setLiteral(0, true);
  Cube b = Cube::full(3);
  b.setLiteral(1, false);
  b.setLiteral(2, true);
  cov.add(a);
  cov.add(b);
  EXPECT_EQ(cov.literalCount(), 3);
  EXPECT_TRUE(cov.evaluate(0b001));   // a
  EXPECT_TRUE(cov.evaluate(0b100));   // b
  EXPECT_FALSE(cov.evaluate(0b010));
}

TEST(Cover, RemoveContained) {
  Cover cov(3);
  Cube big = Cube::full(3);
  big.setLiteral(0, true);
  cov.add(big);
  cov.add(Cube::minterm(3, 0b001));
  cov.add(Cube::minterm(3, 0b111));
  cov.removeContained();
  EXPECT_EQ(cov.numCubes(), 1u);
  // Equal duplicates collapse to one.
  Cover dup(2);
  dup.add(Cube::minterm(2, 0b01));
  dup.add(Cube::minterm(2, 0b01));
  dup.removeContained();
  EXPECT_EQ(dup.numCubes(), 1u);
}

TEST(TruthTable, SetsAndSets) {
  TruthTable tt(3);
  tt.set(0, Ternary::One);
  tt.set(5, Ternary::One);
  tt.set(7, Ternary::DontCare);
  EXPECT_EQ(tt.onset(), (std::vector<std::uint64_t>{0, 5}));
  EXPECT_EQ(tt.dcset(), (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(tt.offset().size(), 5u);
  bool v;
  EXPECT_FALSE(tt.constantOverCareSet(v));
}

TEST(TruthTable, ConstantDetection) {
  TruthTable tt(2);
  bool v = true;
  EXPECT_TRUE(tt.constantOverCareSet(v));
  EXPECT_FALSE(v);
  tt.set(1, Ternary::DontCare);
  EXPECT_TRUE(tt.constantOverCareSet(v));
  tt.set(2, Ternary::One);
  tt.set(0, Ternary::DontCare);
  tt.set(3, Ternary::DontCare);
  EXPECT_TRUE(tt.constantOverCareSet(v));
  EXPECT_TRUE(v);
}

TEST(Minimize, XorHasFourPrimes) {
  // 2-var XOR: primes are the two minterms themselves... actually each
  // onset minterm is prime (no adjacent onset), so 2 primes of 2 literals.
  TruthTable tt(2);
  tt.set(1, Ternary::One);
  tt.set(2, Ternary::One);
  auto primes = primeImplicants(tt);
  EXPECT_EQ(primes.size(), 2u);
  Cover cov = minimizeExact(tt);
  EXPECT_EQ(cov.numCubes(), 2u);
  EXPECT_EQ(cov.literalCount(), 4);
}

TEST(Minimize, ClassicQmExample) {
  // f(a,b,c,d) = sum m(4,8,10,11,12,15) + dc(9,14)  -- classic textbook case.
  TruthTable tt(4);
  for (std::uint64_t m : {4, 8, 10, 11, 12, 15}) tt.set(m, Ternary::One);
  for (std::uint64_t m : {9, 14}) tt.set(m, Ternary::DontCare);
  Cover cov = minimizeExact(tt);
  EXPECT_TRUE(implements(cov, tt));
  // Known minimal solution has 3 product terms.
  EXPECT_EQ(cov.numCubes(), 3u);
}

TEST(Minimize, DontCaresEnableCollapse) {
  // Onset {0}, rest don't-care -> constant-1 single empty cube.
  TruthTable tt(3);
  tt.set(0, Ternary::One);
  for (std::uint64_t r = 1; r < 8; ++r) tt.set(r, Ternary::DontCare);
  Cover cov = minimizeExact(tt);
  EXPECT_EQ(cov.numCubes(), 1u);
  EXPECT_EQ(cov.literalCount(), 0);
}

TEST(Minimize, EmptyOnsetGivesEmptyCover) {
  TruthTable tt(3);
  EXPECT_TRUE(minimizeExact(tt).empty());
  EXPECT_TRUE(minimizeExpand(tt).empty());
}

class MinimizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeProperty, BothEnginesImplementRandomFunctions) {
  std::mt19937_64 rng(GetParam());
  const int nv = 2 + static_cast<int>(GetParam() % 7);  // 2..8 vars
  TruthTable tt(nv);
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    int roll = std::uniform_int_distribution<int>(0, 9)(rng);
    tt.set(r, roll < 4   ? Ternary::One
              : roll < 8 ? Ternary::Zero
                         : Ternary::DontCare);
  }
  Cover exact = minimizeExact(tt);
  Cover expand = minimizeExpand(tt);
  EXPECT_TRUE(implements(exact, tt));
  EXPECT_TRUE(implements(expand, tt));
  // The exact engine never loses to the heuristic by more than a little;
  // at minimum it must not produce more cubes than there are onset rows.
  EXPECT_LE(exact.numCubes(), tt.onset().size());
  EXPECT_LE(expand.numCubes(), tt.onset().size());
}

TEST_P(MinimizeProperty, PrimesCoverOnsetAndAvoidOffset) {
  std::mt19937_64 rng(GetParam() * 977);
  TruthTable tt(5);
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    tt.set(r, std::uniform_int_distribution<int>(0, 1)(rng) ? Ternary::One
                                                            : Ternary::Zero);
  }
  auto primes = primeImplicants(tt);
  for (const Cube& p : primes) {
    for (std::uint64_t off : tt.offset()) {
      EXPECT_FALSE(p.covers(off)) << "prime covers offset row";
    }
  }
  for (std::uint64_t on : tt.onset()) {
    bool covered = false;
    for (const Cube& p : primes) covered |= p.covers(on);
    EXPECT_TRUE(covered) << "onset row uncovered by primes";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

/// A random table mixing onset/offset/don't-care rows; variable count and
/// density vary with the seed so both sparse and dense shapes appear.
TruthTable randomTable(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 7919);
  const int nv = 3 + static_cast<int>(seed % 8);  // 3..10 vars
  const int dcWeight = static_cast<int>(seed % 5);
  TruthTable tt(nv);
  for (std::uint64_t r = 0; r < tt.numRows(); ++r) {
    const int roll = std::uniform_int_distribution<int>(0, 9)(rng);
    tt.set(r, roll < 3              ? Ternary::One
              : roll < 6 + dcWeight ? Ternary::DontCare
                                    : Ternary::Zero);
  }
  return tt;
}

class MinimizerImplIdentity : public ::testing::TestWithParam<std::uint64_t> {
};

// The fast QM must emit the reference's primes in the reference's order --
// not just the same set -- because prime order feeds the greedy cover
// selection and therefore the final covers.
TEST_P(MinimizerImplIdentity, FastPrimesMatchReferenceOrderExactly) {
  const TruthTable tt = randomTable(GetParam());
  const auto fast = primeImplicants(tt);
  const auto ref = primeImplicantsReference(tt);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i], ref[i]) << "prime " << i << " diverges";
  }
}

TEST_P(MinimizerImplIdentity, FastExpandMatchesReferenceCover) {
  const TruthTable tt = randomTable(GetParam());
  const Cover fast = minimizeExpand(tt);
  const Cover ref = minimizeExpandReference(tt);
  ASSERT_EQ(fast.numCubes(), ref.numCubes());
  for (std::size_t i = 0; i < fast.numCubes(); ++i) {
    EXPECT_EQ(fast.cubes()[i], ref.cubes()[i]);
  }
}

// minimize() under both MinimizerImpl settings -- this also exercises the
// Fast-mode memo (second call replays the cached cover) against the
// uncached Reference result.
TEST_P(MinimizerImplIdentity, DispatchIsImplIndependent) {
  const TruthTable tt = randomTable(GetParam());
  setMinimizerImpl(MinimizerImpl::Reference);
  const Cover ref = minimize(tt);
  setMinimizerImpl(MinimizerImpl::Fast);
  const Cover cold = minimize(tt);
  const Cover warm = minimize(tt);  // memo replay
  EXPECT_EQ(minimizerImpl(), MinimizerImpl::Fast);
  ASSERT_EQ(cold.numCubes(), ref.numCubes());
  for (std::size_t i = 0; i < cold.numCubes(); ++i) {
    EXPECT_EQ(cold.cubes()[i], ref.cubes()[i]);
  }
  ASSERT_EQ(warm.numCubes(), cold.numCubes());
  for (std::size_t i = 0; i < warm.numCubes(); ++i) {
    EXPECT_EQ(warm.cubes()[i], cold.cubes()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizerImplIdentity,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tauhls::logic
