#include "testutil.hpp"

#include <algorithm>

namespace tauhls::test {

using dfg::Dfg;
using dfg::NodeId;
using dfg::OpKind;

std::vector<std::string> namesOf(const Dfg& g, const std::vector<NodeId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (NodeId id : ids) out.push_back(g.node(id).name);
  return out;
}

bool isTopologicalOrder(const Dfg& g, const std::vector<NodeId>& order) {
  if (order.size() != g.numNodes()) return false;
  std::vector<int> pos(g.numNodes(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= g.numNodes() || pos[order[i]] != -1) return false;
    pos[order[i]] = static_cast<int>(i);
  }
  for (NodeId v = 0; v < g.numNodes(); ++v) {
    for (NodeId p : g.combinedPredecessors(v)) {
      if (pos[p] >= pos[v]) return false;
    }
  }
  return true;
}

Dfg diamond() {
  Dfg g("diamond");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId m1 = g.addOp(OpKind::Mul, {a, b}, "m1");
  NodeId m2 = g.addOp(OpKind::Mul, {a, b}, "m2");
  NodeId s = g.addOp(OpKind::Add, {m1, m2}, "s");
  g.markOutput(s);
  return g;
}

Dfg mulChain(int n) {
  Dfg g("mul_chain" + std::to_string(n));
  NodeId prev = g.addInput("x");
  NodeId c = g.addInput("c");
  for (int i = 0; i < n; ++i) {
    prev = g.addOp(OpKind::Mul, {prev, c}, "m" + std::to_string(i));
  }
  g.markOutput(prev);
  return g;
}

Dfg parallelMuls(int n) {
  Dfg g("par_muls" + std::to_string(n));
  for (int i = 0; i < n; ++i) {
    NodeId a = g.addInput("a" + std::to_string(i));
    NodeId b = g.addInput("b" + std::to_string(i));
    NodeId m = g.addOp(OpKind::Mul, {a, b}, "m" + std::to_string(i));
    g.markOutput(m);
  }
  return g;
}

}  // namespace tauhls::test
