#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"

namespace tauhls::core {
namespace {

using dfg::ResourceClass;

FlowConfig diffeqConfig() {
  FlowConfig cfg;
  cfg.allocation = {{ResourceClass::Multiplier, 2},
                    {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}};
  return cfg;
}

TEST(Flow, EndToEndDiffeq) {
  FlowResult r = runFlow(dfg::diffeq(), diffeqConfig());
  EXPECT_EQ(r.distributed.controllers.size(), 4u);
  EXPECT_GT(r.signalStats.removedOutputs, 0);
  EXPECT_EQ(r.latency.ps, (std::vector<double>{0.9, 0.7, 0.5}));
  ASSERT_TRUE(r.distArea.has_value());
  ASSERT_TRUE(r.centSyncArea.has_value());
  EXPECT_FALSE(r.centFsm.has_value());
  // Latency sanity: distributed never worse than the synchronized baseline.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(r.latency.dist.averageNs[i], r.latency.tau.averageNs[i]);
  }
  EXPECT_LE(r.latency.dist.worstNs, r.latency.tau.worstNs);
}

TEST(Flow, CentFsmOnDemand) {
  FlowConfig cfg = diffeqConfig();
  cfg.buildCentFsm = true;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  ASSERT_TRUE(r.centFsm.has_value());
  ASSERT_TRUE(r.centFsmArea.has_value());
  EXPECT_GT(r.centFsmArea->states, r.centSyncArea->states);
}

TEST(Flow, SignalOptToggle) {
  FlowConfig cfg = diffeqConfig();
  cfg.optimizeSignals = false;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  EXPECT_EQ(r.signalStats.removedOutputs, 0);
  // Without optimization every op's CCO remains an output.
  std::size_t ccoOutputs = 0;
  for (const auto& c : r.distributed.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (o.starts_with("CCO_")) ++ccoOutputs;
    }
  }
  EXPECT_EQ(ccoOutputs, dfg::diffeq().numOps());
}

TEST(Flow, StrategySelection) {
  FlowConfig cfg = diffeqConfig();
  cfg.strategy = sched::BindingStrategy::CliqueCover;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  EXPECT_EQ(r.distributed.controllers.size(), 4u);
}

TEST(Flow, AreaCanBeSkipped) {
  FlowConfig cfg = diffeqConfig();
  cfg.synthesizeArea = false;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  EXPECT_FALSE(r.distArea.has_value());
  EXPECT_FALSE(r.centSyncArea.has_value());
}

TEST(Flow, VerilogEmission) {
  FlowResult r = runFlow(dfg::diffeq(), diffeqConfig());
  std::string v = emitVerilog(r);
  EXPECT_NE(v.find("module dcu_diffeq ("), std::string::npos);
  EXPECT_NE(v.find("tauhls_completion_latch"), std::string::npos);
}

TEST(Flow, PaperSuiteRunsEndToEnd) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    FlowConfig cfg;
    cfg.allocation = b.allocation;
    cfg.synthesizeArea = false;  // latency-only sweep
    FlowResult r = runFlow(b.graph, cfg);
    EXPECT_GT(r.latency.dist.bestNs, 0.0) << b.name;
    EXPECT_GE(r.latency.tau.worstNs, r.latency.tau.bestNs) << b.name;
    for (double e : r.latency.enhancementPercent) {
      EXPECT_GE(e, -1e-9) << b.name;
    }
  }
}

TEST(Report, TextTableAlignsColumns) {
  TextTable t({"A", "LongHeader"});
  t.addRow({"x", "1"});
  t.addRow({"yyyy", "2"});
  std::string s = t.toString();
  EXPECT_NE(s.find("A     LongHeader"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(Report, Table2RowMentionsEverything) {
  FlowResult r = runFlow(dfg::diffeq(), diffeqConfig());
  std::string row = formatTable2Row("Diff.", r);
  EXPECT_NE(row.find("Diff."), std::string::npos);
  EXPECT_NE(row.find("*:2"), std::string::npos);
  EXPECT_NE(row.find("LT_TAU"), std::string::npos);
  EXPECT_NE(row.find("LT_DIST"), std::string::npos);
  EXPECT_NE(row.find("Enhancement"), std::string::npos);
  EXPECT_NE(row.find("%"), std::string::npos);
}

TEST(Report, Table1ListsAllMachines) {
  FlowConfig cfg = diffeqConfig();
  cfg.buildCentFsm = true;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  std::string t = formatTable1(r);
  EXPECT_NE(t.find("CENT-FSM"), std::string::npos);
  EXPECT_NE(t.find("CENT-SYNC-FSM"), std::string::npos);
  EXPECT_NE(t.find("DIST-FSM"), std::string::npos);
  EXPECT_NE(t.find("D-FSM-mult1"), std::string::npos);
  EXPECT_NE(t.find("completion latches"), std::string::npos);
}

TEST(Report, Table1RequiresAreaSynthesis) {
  FlowConfig cfg = diffeqConfig();
  cfg.synthesizeArea = false;
  FlowResult r = runFlow(dfg::diffeq(), cfg);
  EXPECT_THROW(formatTable1(r), Error);
}

TEST(Report, LatencyCellsFormat) {
  sim::LatencyRow row;
  row.bestNs = 60.0;
  row.averageNs = {68.1, 80.7, 90.6};
  row.worstNs = 105.0;
  EXPECT_EQ(formatLatencyCells(row), "[60.0][68.1, 80.7, 90.6][105.0]");
}

}  // namespace
}  // namespace tauhls::core
