#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/json.hpp"
#include "dfg/benchmarks.hpp"

namespace tauhls::core {
namespace {

using dfg::ResourceClass;

FlowResult diffeqResult(bool area) {
  FlowConfig cfg;
  cfg.allocation = {{ResourceClass::Multiplier, 2},
                    {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}};
  cfg.synthesizeArea = area;
  return runFlow(dfg::diffeq(), cfg);
}

TEST(JsonEscape, Basics) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

bool balanced(const std::string& s) {
  int braces = 0;
  int brackets = 0;
  bool inString = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (inString) {
      if (c == '\\') ++i;
      else if (c == '"') inString = false;
      continue;
    }
    if (c == '"') inString = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    if (braces < 0 || brackets < 0) return false;
  }
  return braces == 0 && brackets == 0 && !inString;
}

TEST(Json, WellFormedAndComplete) {
  std::string j = toJson(diffeqResult(true));
  EXPECT_TRUE(balanced(j));
  for (const char* key :
       {"\"design\":", "\"operations\":", "\"clock_ns\":", "\"controllers\":",
        "\"completion_latches\":", "\"signal_optimization\":", "\"latency\":",
        "\"tau\":", "\"dist\":", "\"enhancement_percent\":", "\"area\":",
        "\"cent_sync\":", "\"dist_total\":"}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
  EXPECT_NE(j.find("\"design\":\"diffeq\""), std::string::npos);
  EXPECT_NE(j.find("\"operations\":11"), std::string::npos);
  // Adjacent values are comma-separated (no "}{" or "][" artifacts).
  EXPECT_EQ(j.find("}{"), std::string::npos);
  EXPECT_EQ(j.find("]["), std::string::npos);
  EXPECT_EQ(j.find(",,"), std::string::npos);
}

TEST(Json, AreaOmittedWhenNotSynthesized) {
  std::string j = toJson(diffeqResult(false));
  EXPECT_TRUE(balanced(j));
  EXPECT_EQ(j.find("\"area\":"), std::string::npos);
  EXPECT_NE(j.find("\"latency\":"), std::string::npos);
}

TEST(Json, ControllerInventory) {
  std::string j = toJson(diffeqResult(false));
  EXPECT_NE(j.find("\"name\":\"D_FSM_mult1\""), std::string::npos);
  EXPECT_NE(j.find("\"telescopic\":true"), std::string::npos);
  EXPECT_NE(j.find("\"telescopic\":false"), std::string::npos);
  // Op names show up in some controller's operation list.
  EXPECT_NE(j.find("\"m1\""), std::string::npos);
}

}  // namespace
}  // namespace tauhls::core
