#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"
#include "rtl/testbench.hpp"
#include "rtl/verilog.hpp"
#include "sim/interp.hpp"

namespace tauhls::rtl {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

struct TbSetup {
  sched::ScheduledDfg s;
  fsm::DistributedControlUnit dcu;
  sim::SimTrace trace;
};

TbSetup diffeqSetup(bool allShortClasses) {
  TbSetup setup{sched::scheduleAndBind(dfg::diffeq(),
                                     Allocation{{ResourceClass::Multiplier, 2},
                                                {ResourceClass::Adder, 1},
                                                {ResourceClass::Subtractor, 1}},
                                     tau::paperLibrary()),
              {}, {}};
  setup.dcu = fsm::optimizeSignals(fsm::buildDistributed(setup.s));
  setup.trace = sim::runDistributed(
      setup.dcu, setup.s,
      allShortClasses ? sim::allShort(setup.s) : sim::allLong(setup.s));
  return setup;
}

TEST(Testbench, TraceRecordsExternals) {
  TbSetup su = diffeqSetup(true);
  ASSERT_EQ(su.trace.externalsPerCycle.size(),
            su.trace.outputsPerCycle.size());
  // All-SD: every cycle in which a multiplier executes carries its C signal.
  bool sawC = false;
  for (const auto& cyc : su.trace.externalsPerCycle) {
    for (const std::string& sig : cyc) {
      EXPECT_TRUE(sig.starts_with("C_mult"));
      sawC = true;
    }
  }
  EXPECT_TRUE(sawC);
  // All-LD: no completion input is ever asserted.
  TbSetup slow = diffeqSetup(false);
  for (const auto& cyc : slow.trace.externalsPerCycle) {
    EXPECT_TRUE(cyc.empty());
  }
}

TEST(Testbench, StructureAndChecks) {
  TbSetup su = diffeqSetup(true);
  const std::string tb = emitTestbench(su.dcu, su.trace, "dcu_diffeq");
  EXPECT_NE(tb.find("module dcu_diffeq_tb;"), std::string::npos);
  EXPECT_NE(tb.find("dcu_diffeq dut ("), std::string::npos);
  EXPECT_NE(tb.find("always #5 clk = ~clk;"), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  EXPECT_NE(tb.find("PASS"), std::string::npos);
  // One cycle banner per simulated cycle.
  for (std::size_t c = 0; c < su.trace.outputsPerCycle.size(); ++c) {
    EXPECT_NE(tb.find("---- cycle " + std::to_string(c) + " ----"),
              std::string::npos);
  }
  // Every RE signal is checked in every cycle: 11 ops x latency cycles.
  std::size_t checkCount = 0;
  for (std::size_t pos = 0; (pos = tb.find("    check(", pos)) != std::string::npos;
       ++pos) {
    ++checkCount;
  }
  EXPECT_EQ(checkCount,
            su.s.graph.numOps() * su.trace.outputsPerCycle.size());
  // The golden trace marks RE_m1 high in cycle 0 under all-SD.
  EXPECT_NE(tb.find("check(RE_m1, 1'b1, \"RE_m1\", 0);"), std::string::npos);
}

TEST(Testbench, StimulusMatchesTrace) {
  TbSetup su = diffeqSetup(true);
  const std::string tb = emitTestbench(su.dcu, su.trace, "top");
  // In every cycle each external input is driven to exactly the traced value.
  for (std::size_t c = 0; c < su.trace.externalsPerCycle.size(); ++c) {
    for (const std::string& in : su.dcu.externalInputs) {
      const bool on =
          std::find(su.trace.externalsPerCycle[c].begin(),
                    su.trace.externalsPerCycle[c].end(),
                    in) != su.trace.externalsPerCycle[c].end();
      // Count occurrences up to this cycle's banner to keep it simple:
      // just assert the exact drive line exists somewhere.
      EXPECT_NE(tb.find(in + " = 1'b" + (on ? "1" : "0") + ";"),
                std::string::npos);
    }
  }
}

TEST(Testbench, RejectsTraceWithoutExternals) {
  TbSetup su = diffeqSetup(true);
  sim::SimTrace bare;
  bare.outputsPerCycle = su.trace.outputsPerCycle;
  EXPECT_THROW(emitTestbench(su.dcu, bare, "top"), Error);
}

TEST(Testbench, PairsWithEmittedPackage) {
  // The package and the testbench must agree on the port list.
  TbSetup su = diffeqSetup(true);
  const std::string pkg = emitPackage(su.dcu, "dcu_diffeq");
  const std::string tb = emitTestbench(su.dcu, su.trace, "dcu_diffeq");
  for (const std::string& in : su.dcu.externalInputs) {
    EXPECT_NE(pkg.find("input  wire " + in), std::string::npos);
    EXPECT_NE(tb.find("reg " + in), std::string::npos);
  }
}

}  // namespace
}  // namespace tauhls::rtl
