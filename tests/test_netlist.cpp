#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "netlist/analyze.hpp"
#include "netlist/build.hpp"
#include "netlist/emit.hpp"
#include "netlist/netlist.hpp"
#include "testutil.hpp"

namespace tauhls::netlist {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

Netlist xorNetlist() {
  // a^b = (a & !b) | (!a & b)
  Netlist n("xor");
  NetId a = n.addInput("a");
  NetId b = n.addInput("b");
  NetId na = n.addInv(a);
  NetId nb = n.addInv(b);
  NetId t1 = n.addAnd({a, nb});
  NetId t2 = n.addAnd({na, b});
  n.markOutput("y", n.addOr({t1, t2}));
  return n;
}

TEST(Netlist, EvaluateXor) {
  Netlist n = xorNetlist();
  n.validate();
  EXPECT_FALSE(n.evaluateOutput("y", {}));
  EXPECT_TRUE(n.evaluateOutput("y", {"a"}));
  EXPECT_TRUE(n.evaluateOutput("y", {"b"}));
  EXPECT_FALSE(n.evaluateOutput("y", {"a", "b"}));
}

TEST(Netlist, ConstantsAreCached) {
  Netlist n("c");
  EXPECT_EQ(n.constant(true), n.constant(true));
  EXPECT_EQ(n.constant(false), n.constant(false));
  EXPECT_NE(n.constant(true), n.constant(false));
}

TEST(Netlist, SingleFaninPassesThrough) {
  Netlist n("p");
  NetId a = n.addInput("a");
  EXPECT_EQ(n.addAnd({a}), a);
  EXPECT_EQ(n.addOr({a}), a);
}

TEST(Netlist, Guards) {
  Netlist n("g");
  n.addInput("a");
  EXPECT_THROW(n.addInput("a"), Error);
  EXPECT_THROW(n.addInv(NetId{99}), Error);
  EXPECT_THROW(n.addAnd({}), Error);
  EXPECT_THROW(n.evaluateOutput("nope", {}), Error);
  n.markOutput("y", 0);
  EXPECT_THROW(n.markOutput("y", 0), Error);
}

TEST(Analyze, XorStats) {
  GateStats s = analyze(xorNetlist());
  EXPECT_EQ(s.inputs, 2);
  EXPECT_EQ(s.inverters, 2);
  EXPECT_EQ(s.andGates, 2);
  EXPECT_EQ(s.orGates, 1);
  EXPECT_EQ(s.gateEquivalents, 2 + 2 * 1 + 1);  // 2 INV + 2 AND2 + 1 OR2
  EXPECT_EQ(s.depth, 3);                        // inv -> and -> or
  EXPECT_EQ(s.maxFanin, 2);
}

TEST(Analyze, WideGateDecomposition) {
  Netlist n("wide");
  std::vector<NetId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(n.addInput("i" + std::to_string(i)));
  n.markOutput("y", n.addAnd(ins));
  GateStats s = analyze(n);
  EXPECT_EQ(s.gateEquivalents, 7);  // 8-input AND = 7 two-input equivalents
  EXPECT_EQ(s.depth, 3);            // ceil(log2 8)
  EXPECT_EQ(s.maxFanin, 8);
}

TEST(Analyze, MeetsClockNaive) {
  GateStats s;
  s.depth = 10;
  EXPECT_TRUE(meetsClockNaive(s, 15.0, 1.0, 2.0));   // 10 + 2 <= 15
  EXPECT_FALSE(meetsClockNaive(s, 15.0, 1.5, 2.0));  // 15 + 2 > 15
  EXPECT_THROW(meetsClockNaive(s, 0.0, 1.0), Error);
}

TEST(Build, ControllerNetlistsEquivalentToFsms) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  for (const fsm::UnitController& c : dcu.controllers) {
    ControllerNetlist cn = buildControllerNetlist(c.fsm);
    EXPECT_TRUE(verifyAgainstFsm(cn, c.fsm)) << c.fsm.name();
    GateStats stats = analyze(cn.net);
    EXPECT_GT(stats.gateEquivalents, 0);
  }
  fsm::Fsm sync = fsm::buildCentSync(s);
  ControllerNetlist cn = buildControllerNetlist(sync);
  EXPECT_TRUE(verifyAgainstFsm(cn, sync));
}

TEST(Build, OneHotEncodingAlsoEquivalent) {
  auto s = sched::scheduleAndBind(
      dfg::fir(3),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  for (const fsm::UnitController& c : dcu.controllers) {
    ControllerNetlist cn =
        buildControllerNetlist(c.fsm, synth::EncodingStyle::OneHot);
    EXPECT_TRUE(verifyAgainstFsm(cn, c.fsm, synth::EncodingStyle::OneHot));
  }
}

TEST(Build, CubeSharingAcrossFunctions) {
  // The shared AND plane must not duplicate identical cubes: build twice the
  // same function under different output names and compare gate counts.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  ControllerNetlist cn = buildControllerNetlist(f);
  const synth::SynthesizedFsm syn = synth::synthesize(f);
  // Count distinct cubes across all covers; AND gates must not exceed that.
  std::set<std::pair<std::uint64_t, std::uint64_t>> distinct;
  auto collect = [&distinct](const logic::Cover& cover) {
    for (const logic::Cube& c : cover.cubes()) {
      if (c.numLiterals() >= 2) distinct.insert({c.careMask(), c.valueMask()});
    }
  };
  for (const auto& c : syn.nextStateLogic) collect(c);
  for (const auto& c : syn.outputLogic) collect(c);
  EXPECT_LE(static_cast<std::size_t>(analyze(cn.net).andGates),
            distinct.size());
}

TEST(Emit, StructuralVerilogShape) {
  Netlist n = xorNetlist();
  std::string v = emitStructuralVerilog(n, "xor2");
  EXPECT_NE(v.find("module xor2 ("), std::string::npos);
  EXPECT_NE(v.find("input  wire a"), std::string::npos);
  EXPECT_NE(v.find("output wire y"), std::string::npos);
  EXPECT_NE(v.find("not g"), std::string::npos);
  EXPECT_NE(v.find("and g"), std::string::npos);
  EXPECT_NE(v.find("or g"), std::string::npos);
  EXPECT_NE(v.find("assign y = "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

class NetlistProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistProperty, RandomControllersVerify) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 271;
  spec.numOps = 6 + static_cast<int>(GetParam() % 8);
  dfg::Dfg g = dfg::randomDfg(spec);
  auto s = sched::scheduleAndBind(g,
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  for (const fsm::UnitController& c : dcu.controllers) {
    ControllerNetlist cn = buildControllerNetlist(c.fsm);
    EXPECT_TRUE(verifyAgainstFsm(cn, c.fsm)) << c.fsm.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace tauhls::netlist
