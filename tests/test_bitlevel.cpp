#include <gtest/gtest.h>

#include <random>

#include "bitlevel/adder.hpp"
#include "bitlevel/completion.hpp"
#include "bitlevel/measure.hpp"
#include "bitlevel/multiplier.hpp"
#include "common/error.hpp"

namespace tauhls::bitlevel {
namespace {

TEST(Adder, SumsCorrectly) {
  EXPECT_EQ(rippleAdd(3, 4, 8).sum, 7u);
  EXPECT_EQ(rippleAdd(200, 100, 8).sum, 44u);  // mod 256
  EXPECT_EQ(rippleAdd(~std::uint64_t{0}, 1, 64).sum, 0u);
}

TEST(Adder, PropagateRuns) {
  // a ^ b = 0 -> no propagation.
  EXPECT_EQ(longestPropagateRun(0b1010, 0b1010, 8), 0);
  // Full-width propagate: a ^ b = all ones.
  EXPECT_EQ(longestPropagateRun(0b1111, 0b0000, 4), 4);
  // Mixed: 0b0110 ^ 0b0011 = 0b0101 -> runs of length 1.
  EXPECT_EQ(longestPropagateRun(0b0110, 0b0011, 4), 1);
}

TEST(Adder, DelayIsRunPlusOne) {
  EXPECT_EQ(rippleAdd(0, 0, 16).settlingDelay, 1);
  // 0xFFFF ^ 0x0001 = 0xFFFE: a 15-position propagate run, so the carry
  // generated at bit 0 ripples for 15 stages -> delay 16.
  EXPECT_EQ(rippleAdd(0xFFFF, 0x0001, 16).settlingDelay, 16);
}

TEST(Adder, RejectsBadInputs) {
  EXPECT_THROW(rippleAdd(256, 0, 8), Error);
  EXPECT_THROW(rippleAdd(0, 0, 0), Error);
  EXPECT_THROW(rippleAdd(0, 0, 65), Error);
}

TEST(Multiplier, ProductsCorrect) {
  EXPECT_EQ(arrayMultiply(7, 6, 8).product, 42u);
  EXPECT_EQ(arrayMultiply(0, 99, 8).product, 0u);
  EXPECT_EQ(arrayMultiply(0xFFFF, 0xFFFF, 16).product, 0xFFFE0001u);
}

TEST(Multiplier, DelayGrowsWithMagnitude) {
  EXPECT_EQ(arrayMultiply(0, 5, 8).settlingDelay, 1);
  EXPECT_EQ(arrayMultiply(1, 1, 8).settlingDelay, 2);      // msb 0 + 0 + 2
  EXPECT_EQ(arrayMultiply(128, 128, 8).settlingDelay, 16); // 7 + 7 + 2
  EXPECT_LT(arrayMultiply(3, 3, 8).settlingDelay,
            arrayMultiply(200, 200, 8).settlingDelay);
}

TEST(Multiplier, MsbIndex) {
  EXPECT_EQ(msbIndex(0), -1);
  EXPECT_EQ(msbIndex(1), 0);
  EXPECT_EQ(msbIndex(0x80), 7);
  EXPECT_EQ(msbIndex(~std::uint64_t{0}), 63);
}

TEST(CompletionAdder, PredictsWithinBound) {
  AdderCompletionGenerator gen(16, 4);
  EXPECT_EQ(gen.shortDelayBound(), 4);
  EXPECT_TRUE(gen.predictShort(0, 0));
  EXPECT_FALSE(gen.predictShort(0xFFFF, 0x0001));
}

TEST(CompletionAdder, RejectsBadConfig) {
  EXPECT_THROW(AdderCompletionGenerator(16, 0), Error);
  EXPECT_THROW(AdderCompletionGenerator(16, 17), Error);
}

TEST(CompletionMultiplier, MagnitudeClassification) {
  MultiplierCompletionGenerator gen(8, 6);
  EXPECT_TRUE(gen.predictShort(0, 255));   // kill path
  EXPECT_TRUE(gen.predictShort(7, 7));     // msb 2 + 2 <= 6
  EXPECT_FALSE(gen.predictShort(128, 2));  // msb 7 + 1 > 6
  EXPECT_EQ(gen.shortDelayBound(), 8);
}

class ConservativenessProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConservativenessProperty, AdderGeneratorNeverLies) {
  const int maxRun = GetParam();
  AdderCompletionGenerator gen(16, maxRun);
  std::mt19937_64 rng(maxRun * 12345);
  for (int t = 0; t < 20000; ++t) {
    const std::uint64_t a = rng() & 0xFFFF;
    const std::uint64_t b = rng() & 0xFFFF;
    if (gen.predictShort(a, b)) {
      EXPECT_LE(rippleAdd(a, b, 16).settlingDelay, gen.shortDelayBound())
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MaxRuns, ConservativenessProperty,
                         ::testing::Values(1, 2, 4, 8, 12, 16));

class MulConservativeness : public ::testing::TestWithParam<int> {};

TEST_P(MulConservativeness, MultiplierGeneratorNeverLies) {
  const int budget = GetParam();
  MultiplierCompletionGenerator gen(8, budget);
  for (std::uint64_t a = 0; a < 256; ++a) {
    for (std::uint64_t b = 0; b < 256; ++b) {
      if (gen.predictShort(a, b)) {
        EXPECT_LE(arrayMultiply(a, b, 8).settlingDelay, gen.shortDelayBound());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, MulConservativeness,
                         ::testing::Values(0, 3, 6, 9, 12, 14));

TEST(Measure, AdderPIncreasesWithRelaxedBound) {
  double prev = -1.0;
  for (int maxRun : {2, 4, 8, 16}) {
    AdderCompletionGenerator gen(16, maxRun);
    PMeasurement m = measureAdderP(gen, OperandDistribution::Uniform, 20000);
    EXPECT_EQ(m.falseCompletions, 0);
    EXPECT_GT(m.p, prev);
    prev = m.p;
  }
  EXPECT_GT(prev, 0.95);  // a 16-bit bound certifies almost everything
}

TEST(Measure, LowMagnitudeOperandsRaiseMultiplierP) {
  MultiplierCompletionGenerator gen(16, 14);
  PMeasurement uniform =
      measureMultiplierP(gen, OperandDistribution::Uniform, 20000);
  PMeasurement lowMag =
      measureMultiplierP(gen, OperandDistribution::LowMagnitude, 20000);
  EXPECT_EQ(uniform.falseCompletions, 0);
  EXPECT_EQ(lowMag.falseCompletions, 0);
  EXPECT_GT(lowMag.p, uniform.p);
}

TEST(Measure, SmallDeltaShortensAdderCarries) {
  AdderCompletionGenerator gen(32, 8);
  PMeasurement uniform = measureAdderP(gen, OperandDistribution::Uniform, 20000);
  PMeasurement delta = measureAdderP(gen, OperandDistribution::SmallDelta, 20000);
  EXPECT_EQ(delta.falseCompletions, 0);
  // Small deltas give short propagate chains far more often... in the mean
  // delay if not always in the windowed classifier.
  EXPECT_LT(delta.meanDelay, uniform.meanDelay + 1.0);
}

TEST(Measure, DeterministicForSeed) {
  AdderCompletionGenerator gen(16, 4);
  PMeasurement a = measureAdderP(gen, OperandDistribution::Uniform, 5000, 9);
  PMeasurement b = measureAdderP(gen, OperandDistribution::Uniform, 5000, 9);
  EXPECT_EQ(a.p, b.p);
  EXPECT_EQ(a.worstDelay, b.worstDelay);
}

TEST(Measure, UnitTypeBridge) {
  MultiplierCompletionGenerator gen(16, 20);
  PMeasurement m = measureMultiplierP(gen, OperandDistribution::Uniform, 10000);
  tau::UnitType t = telescopicMultiplierFromMeasurement(16, gen, m, 0.5);
  EXPECT_TRUE(t.telescopic);
  EXPECT_DOUBLE_EQ(t.shortDelayNs, gen.shortDelayBound() * 0.5);
  EXPECT_DOUBLE_EQ(t.longDelayNs, 32.0 * 0.5);  // (2*(16-1)+2) * 0.5
  EXPECT_DOUBLE_EQ(t.sdProbability, m.p);
}

TEST(Measure, BridgeRejectsLyingGenerator) {
  MultiplierCompletionGenerator gen(16, 20);
  PMeasurement fake;
  fake.falseCompletions = 1;
  EXPECT_THROW(telescopicMultiplierFromMeasurement(16, gen, fake, 0.5), Error);
}

}  // namespace
}  // namespace tauhls::bitlevel
