#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tau/clocking.hpp"
#include "tau/library.hpp"
#include "tau/unit.hpp"

namespace tauhls::tau {
namespace {

using dfg::ResourceClass;

TEST(UnitType, FixedUnitInvariants) {
  UnitType t = fixedUnit("adder", ResourceClass::Adder, 15.0);
  EXPECT_FALSE(t.telescopic);
  EXPECT_EQ(t.shortDelayNs, 15.0);
  EXPECT_EQ(t.longDelayNs, 15.0);
  EXPECT_EQ(t.sdProbability, 1.0);
  EXPECT_EQ(t.worstDelayNs(), 15.0);
}

TEST(UnitType, TelescopicUnitInvariants) {
  UnitType t = telescopicUnit("tm", ResourceClass::Multiplier, 15.0, 20.0, 0.7);
  EXPECT_TRUE(t.telescopic);
  EXPECT_EQ(t.worstDelayNs(), 20.0);
  EXPECT_EQ(t.sdProbability, 0.7);
}

TEST(UnitType, RejectsBadParameters) {
  EXPECT_THROW(fixedUnit("", ResourceClass::Adder, 15.0), Error);
  EXPECT_THROW(fixedUnit("a", ResourceClass::None, 15.0), Error);
  EXPECT_THROW(fixedUnit("a", ResourceClass::Adder, 0.0), Error);
  EXPECT_THROW(telescopicUnit("t", ResourceClass::Multiplier, 20.0, 15.0, 0.5),
               Error);
  EXPECT_THROW(telescopicUnit("t", ResourceClass::Multiplier, 15.0, 20.0, 1.5),
               Error);
  EXPECT_THROW(telescopicUnit("t", ResourceClass::Multiplier, 15.0, 20.0, -0.1),
               Error);
}

TEST(Library, RegistersAndLooksUp) {
  ResourceLibrary lib;
  EXPECT_FALSE(lib.has(ResourceClass::Adder));
  lib.registerType(fixedUnit("adder", ResourceClass::Adder, 10.0));
  EXPECT_TRUE(lib.has(ResourceClass::Adder));
  EXPECT_EQ(lib.typeFor(ResourceClass::Adder).name, "adder");
  EXPECT_THROW(lib.typeFor(ResourceClass::Multiplier), Error);
  EXPECT_FALSE(lib.hasTelescopicTypes());
  lib.registerType(
      telescopicUnit("tm", ResourceClass::Multiplier, 10.0, 14.0, 0.5));
  EXPECT_TRUE(lib.hasTelescopicTypes());
  EXPECT_EQ(lib.classes().size(), 2u);
}

TEST(Library, PaperLibraryMatchesTable2Footnote) {
  ResourceLibrary lib = paperLibrary(0.9);
  const UnitType& mult = lib.typeFor(ResourceClass::Multiplier);
  EXPECT_TRUE(mult.telescopic);
  EXPECT_EQ(mult.shortDelayNs, 15.0);
  EXPECT_EQ(mult.longDelayNs, 20.0);
  EXPECT_EQ(mult.sdProbability, 0.9);
  EXPECT_EQ(lib.typeFor(ResourceClass::Adder).shortDelayNs, 15.0);
  EXPECT_EQ(lib.typeFor(ResourceClass::Subtractor).shortDelayNs, 15.0);
}

TEST(Clocking, PaperClocks) {
  ResourceLibrary lib = paperLibrary();
  // CC_TAU = max(SD=15, FD=15) = 15; conventional CC = max(LD=20, FD=15) = 20.
  EXPECT_DOUBLE_EQ(tauClockNs(lib), 15.0);
  EXPECT_DOUBLE_EQ(conventionalClockNs(lib), 20.0);
}

TEST(Clocking, CyclesForTauOp) {
  ResourceLibrary lib = paperLibrary();
  const UnitType& mult = lib.typeFor(ResourceClass::Multiplier);
  const UnitType& add = lib.typeFor(ResourceClass::Adder);
  EXPECT_EQ(cyclesFor(mult, true, 15.0), 1);   // SD class: one cycle
  EXPECT_EQ(cyclesFor(mult, false, 15.0), 2);  // LD class: two cycles
  EXPECT_EQ(cyclesFor(add, true, 15.0), 1);
  EXPECT_EQ(cyclesFor(add, false, 15.0), 1);
}

TEST(Clocking, CeilingBehaviour) {
  UnitType slow = fixedUnit("slow", ResourceClass::Divider, 31.0);
  EXPECT_EQ(cyclesFor(slow, true, 15.0), 3);  // ceil(31/15)
  UnitType exact = fixedUnit("exact", ResourceClass::Divider, 30.0);
  EXPECT_EQ(cyclesFor(exact, true, 15.0), 2);  // exact multiple, no round-up
}

TEST(Clocking, EmptyLibraryRejected) {
  ResourceLibrary lib;
  EXPECT_THROW(tauClockNs(lib), Error);
  EXPECT_THROW(conventionalClockNs(lib), Error);
}

}  // namespace
}  // namespace tauhls::tau
