#include <gtest/gtest.h>

#include "common/error.hpp"
#include "fsm/guard.hpp"
#include "fsm/machine.hpp"
#include "fsm/signal.hpp"

namespace tauhls::fsm {
namespace {

using Asserted = std::unordered_set<std::string>;

TEST(Guard, Constants) {
  EXPECT_TRUE(Guard::always().evaluate({}));
  EXPECT_TRUE(Guard::always().isAlways());
  EXPECT_FALSE(Guard::never().evaluate({"x"}));
  EXPECT_TRUE(Guard::never().isNever());
}

TEST(Guard, Literals) {
  Guard pos = Guard::literal("c", true);
  Guard neg = Guard::literal("c", false);
  EXPECT_TRUE(pos.evaluate({"c"}));
  EXPECT_FALSE(pos.evaluate({}));
  EXPECT_FALSE(neg.evaluate({"c"}));
  EXPECT_TRUE(neg.evaluate({}));
}

TEST(Guard, AllOfAndNotAllOf) {
  Guard all = Guard::allOf({"a", "b"});
  Guard notAll = Guard::notAllOf({"a", "b"});
  for (const Asserted& env :
       {Asserted{}, Asserted{"a"}, Asserted{"b"}, Asserted{"a", "b"}}) {
    EXPECT_NE(all.evaluate(env), notAll.evaluate(env))
        << "allOf/notAllOf must partition";
  }
  EXPECT_TRUE(all.evaluate({"a", "b"}));
  EXPECT_TRUE(Guard::allOf({}).isAlways());
  EXPECT_TRUE(Guard::notAllOf({}).isNever());
}

TEST(Guard, ConjoinDropsContradictions) {
  Guard g = Guard::literal("a", true).conjoin(Guard::literal("a", false));
  EXPECT_TRUE(g.isNever());
  Guard h = Guard::literal("a", true).conjoin(Guard::notAllOf({"a", "b"}));
  // a & (!a | !b) == a & !b
  EXPECT_FALSE(h.evaluate({"a", "b"}));
  EXPECT_TRUE(h.evaluate({"a"}));
  EXPECT_FALSE(h.evaluate({"b"}));
}

TEST(Guard, DisjoinUnions) {
  Guard g = Guard::literal("a", true).disjoin(Guard::literal("b", true));
  EXPECT_TRUE(g.evaluate({"a"}));
  EXPECT_TRUE(g.evaluate({"b"}));
  EXPECT_FALSE(g.evaluate({}));
}

TEST(Guard, SignalsSortedUnique) {
  Guard g = Guard::allOf({"b", "a"}).disjoin(Guard::literal("a", false));
  EXPECT_EQ(g.signals(), (std::vector<std::string>{"a", "b"}));
}

TEST(Guard, ToStringShapes) {
  EXPECT_EQ(Guard::never().toString(), "0");
  EXPECT_EQ(Guard::always().toString(), "1");
  EXPECT_EQ(Guard::literal("c", false).toString(), "!c");
  EXPECT_EQ(Guard::allOf({"a", "b"}).toString(), "a&b");
}

TEST(SignalNames, Scheme) {
  sched::UnitInstance u;
  u.cls = dfg::ResourceClass::Multiplier;
  u.index = 0;
  u.name = "mult1";
  EXPECT_EQ(unitCompletionSignal(u), "C_mult1");
  EXPECT_EQ(opCompletionSignal("O3"), "CCO_O3");
  EXPECT_EQ(operandFetchSignal("O3"), "OF_O3");
  EXPECT_EQ(registerEnableSignal("O3"), "RE_O3");
}

Fsm twoStateMachine() {
  Fsm f("toy");
  int s0 = f.addState("S0");
  int s1 = f.addState("S1");
  f.addInput("c");
  f.addOutput("go");
  f.addTransition(s0, s1, Guard::literal("c", true), {"go"});
  f.addTransition(s0, s0, Guard::literal("c", false), {});
  f.addTransition(s1, s0, Guard::always(), {});
  f.setInitial(s0);
  return f;
}

TEST(Machine, BasicStepping) {
  Fsm f = twoStateMachine();
  validateFsm(f);
  auto r = f.step(0, {"c"});
  EXPECT_EQ(r.nextState, 1);
  EXPECT_EQ(r.outputs, (std::vector<std::string>{"go"}));
  auto r2 = f.step(0, {});
  EXPECT_EQ(r2.nextState, 0);
  EXPECT_TRUE(r2.outputs.empty());
}

TEST(Machine, DeclarationsEnforced) {
  Fsm f("bad");
  int s0 = f.addState("S0");
  EXPECT_THROW(f.addTransition(s0, s0, Guard::literal("x", true), {}), Error);
  EXPECT_THROW(f.addTransition(s0, s0, Guard::always(), {"y"}), Error);
  EXPECT_THROW(f.addState("S0"), Error);
  EXPECT_THROW(f.setInitial(3), Error);
}

TEST(Machine, ValidateCatchesIncomplete) {
  Fsm f("incomplete");
  int s0 = f.addState("S0");
  f.addInput("c");
  f.addTransition(s0, s0, Guard::literal("c", true), {});
  EXPECT_THROW(validateFsm(f), Error);  // nothing fires when c=0
}

TEST(Machine, ValidateCatchesNondeterminism) {
  Fsm f("nondet");
  int s0 = f.addState("S0");
  f.addInput("c");
  f.addTransition(s0, s0, Guard::always(), {});
  f.addTransition(s0, s0, Guard::literal("c", true), {});
  EXPECT_THROW(validateFsm(f), Error);
}

TEST(Machine, ValidateCatchesDeadStates) {
  Fsm f("dead");
  f.addState("S0");
  EXPECT_THROW(validateFsm(f), Error);
}

TEST(Machine, StepRejectsIllFormed) {
  Fsm f("nofire");
  int s0 = f.addState("S0");
  f.addInput("c");
  f.addTransition(s0, s0, Guard::literal("c", true), {});
  EXPECT_THROW(f.step(0, {}), Error);
}

TEST(Machine, FlipFlopCount) {
  Fsm f("ff");
  f.addState("A");
  EXPECT_EQ(f.flipFlopCount(), 1);
  f.addState("B");
  EXPECT_EQ(f.flipFlopCount(), 1);
  f.addState("C");
  EXPECT_EQ(f.flipFlopCount(), 2);
  f.addState("D");
  EXPECT_EQ(f.flipFlopCount(), 2);
  f.addState("E");
  EXPECT_EQ(f.flipFlopCount(), 3);
}

TEST(Machine, InputsUsedByState) {
  Fsm f = twoStateMachine();
  EXPECT_EQ(f.inputsUsedBy(0), (std::vector<std::string>{"c"}));
  EXPECT_TRUE(f.inputsUsedBy(1).empty());
}

TEST(Machine, DescribeMentionsEverything) {
  std::string d = describe(twoStateMachine());
  EXPECT_NE(d.find("toy"), std::string::npos);
  EXPECT_NE(d.find("S0 -> S1"), std::string::npos);
  EXPECT_NE(d.find("go"), std::string::npos);
}

}  // namespace
}  // namespace tauhls::fsm
