// SIMD shim tests (common/simd.hpp): the vector gatherMax against the scalar
// reference on adversarial slices, and end-to-end bit-identity of the
// SIMD-accelerated Gray-code sweep against the scalar brute-force reference
// on random DAGs, across thread counts.
#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "dfg/random.hpp"
#include "sched/scheduled_dfg.hpp"
#include "sim/stats.hpp"
#include "tau/library.hpp"

namespace tauhls {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::ScheduledDfg;

class GlobalThreadCountGuard {
 public:
  ~GlobalThreadCountGuard() {
    common::setGlobalThreadCount(common::configuredThreadCount());
  }
};

TEST(Simd, BackendNameIsKnown) {
  const std::string backend = common::simd::backendName();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar")
      << backend;
}

TEST(Simd, GatherMaxMatchesScalarReference) {
  std::uint64_t seed = 0x51DDEEFull;
  auto next = [&seed] {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  std::vector<int> values(512);
  for (int& v : values) {
    v = static_cast<int>(next() % 2001) - 1000;  // negatives included
  }
  // Slice lengths straddle every code path: empty, sub-width scalar tail,
  // exact vector widths, and long slices with remainders.
  for (const std::size_t n :
       {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 64u, 100u, 255u}) {
    std::vector<std::uint32_t> indices(n);
    for (std::uint32_t& idx : indices) {
      idx = static_cast<std::uint32_t>(next() % values.size());
    }
    int expected = -12345;
    for (const std::uint32_t idx : indices) {
      expected = std::max(expected, values[idx]);
    }
    EXPECT_EQ(common::simd::gatherMax(values.data(), indices.data(), n,
                                      -12345),
              expected)
        << "n=" << n;
    if (n >= 8) {
      EXPECT_EQ(common::simd::gatherMaxVector(values.data(), indices.data(),
                                              n, -12345),
                expected)
          << "n=" << n;
    }
  }
}

TEST(Simd, GatherMaxEmptySentinelDominatesWhenLarger) {
  const std::vector<int> values = {1, 2, 3};
  const std::vector<std::uint32_t> indices = {0, 1, 2, 0, 1, 2, 0, 1, 2};
  EXPECT_EQ(common::simd::gatherMax(values.data(), indices.data(),
                                    indices.size(), 99),
            99);
  EXPECT_EQ(common::simd::gatherMax(values.data(), indices.data(), 0, -7),
            -7);
}

// The tentpole's bit-identity guarantee: the SIMD-accelerated Gray-code
// incremental sweep produces EXACTLY the scalar reference statistic on
// random DAGs of varied shape, at every thread count.
TEST(Simd, SweepBitIdenticalToScalarReferenceOnRandomDags) {
  GlobalThreadCountGuard guard;
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    dfg::RandomDfgSpec spec;
    spec.seed = seed;
    spec.numOps = 16 + static_cast<int>(seed % 7);
    spec.numInputs = 5;
    spec.mulPermille = 600;
    const ScheduledDfg s = sched::scheduleAndBind(
        dfg::randomDfg(spec),
        Allocation{{ResourceClass::Multiplier, 3},
                   {ResourceClass::Adder, 2},
                   {ResourceClass::Subtractor, 1}},
        tau::paperLibrary());
    const sim::MakespanEngine engine(s);
    if (engine.numTauOps() > 16) continue;  // keep the reference pass cheap
    for (const double p : {0.25, 0.7, 1.0}) {
      const double reference = sim::averageCyclesExactReference(
          s, engine, sim::ControlStyle::Distributed, p);
      for (const int threads : {1, 2, 8}) {
        common::setGlobalThreadCount(threads);
        EXPECT_EQ(sim::averageCyclesExact(
                      s, engine, sim::ControlStyle::Distributed, p),
                  reference)
            << "seed=" << seed << " p=" << p << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace tauhls
