#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "sched/binding.hpp"
#include "sched/clique.hpp"
#include "sched/scheduled_dfg.hpp"
#include "sched/steps.hpp"
#include "sched/taubm_dfg.hpp"
#include "testutil.hpp"

namespace tauhls::sched {
namespace {

using dfg::Dfg;
using dfg::NodeId;
using dfg::ResourceClass;

TEST(Steps, AsapDiamond) {
  Dfg g = test::diamond();
  StepSchedule s = asap(g);
  EXPECT_EQ(s.numSteps, 2);
  EXPECT_EQ(s.stepOf[g.findByName("m1")], 0);
  EXPECT_EQ(s.stepOf[g.findByName("m2")], 0);
  EXPECT_EQ(s.stepOf[g.findByName("s")], 1);
  EXPECT_EQ(s.stepOf[g.findByName("a")], -1);
  validateStepSchedule(g, s);
}

TEST(Steps, AlapPushesLate) {
  Dfg g = dfg::fir(3);  // 3 muls feeding a 2-add chain
  StepSchedule a = asap(g);
  EXPECT_EQ(a.numSteps, 3);
  StepSchedule l = alap(g, 5);
  validateStepSchedule(g, l);
  EXPECT_EQ(l.numSteps, 5);
  // The final add must be in the last step; the first mult can slide late.
  NodeId lastAdd = g.findByName("a1");
  EXPECT_EQ(l.stepOf[lastAdd], 4);
  NodeId m2 = g.findByName("m2");
  EXPECT_GT(l.stepOf[m2], a.stepOf[m2]);
}

TEST(Steps, AlapRejectsTooTightBudget) {
  Dfg g = dfg::fir(3);
  EXPECT_THROW(alap(g, 2), Error);
}

TEST(Steps, ListScheduleRespectsAllocation) {
  Dfg g = dfg::fir(5);  // 5 muls
  Allocation alloc{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}};
  StepSchedule s = listSchedule(g, alloc);
  validateStepSchedule(g, s, &alloc);
  // 5 muls on 2 units need at least 3 mult steps.
  EXPECT_GE(s.numSteps, 3);
}

TEST(Steps, ListScheduleUnconstrainedEqualsAsapLength) {
  Dfg g = dfg::diffeq();
  StepSchedule s = listSchedule(g, {});
  validateStepSchedule(g, s);
  EXPECT_EQ(s.numSteps, asap(g).numSteps);
}

TEST(Steps, MobilityPriorityProducesValidSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    dfg::RandomDfgSpec spec;
    spec.seed = seed * 37;
    spec.numOps = 10 + static_cast<int>(seed % 12);
    Dfg g = dfg::randomDfg(spec);
    Allocation alloc{{ResourceClass::Multiplier, 2},
                     {ResourceClass::Adder, 1},
                     {ResourceClass::Subtractor, 1}};
    StepSchedule cp = listSchedule(g, alloc, PriorityRule::CriticalPath);
    StepSchedule mob = listSchedule(g, alloc, PriorityRule::Mobility);
    validateStepSchedule(g, cp, &alloc);
    validateStepSchedule(g, mob, &alloc);
    // Both respect the dependence-only lower bound.
    const int lower = dfg::criticalPathLength(g, dfg::unitDurations(g));
    EXPECT_GE(cp.numSteps, lower);
    EXPECT_GE(mob.numSteps, lower);
  }
}

TEST(Steps, MobilityPrefersUrgentOps) {
  // One mult unit; a long mult chain plus an independent mult: the chain op
  // (zero slack) must be scheduled before the slack-rich independent op.
  Dfg g("urgent");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId chain = g.addOp(dfg::OpKind::Mul, {a, b}, "chain0");
  chain = g.addOp(dfg::OpKind::Mul, {chain, b}, "chain1");
  chain = g.addOp(dfg::OpKind::Mul, {chain, b}, "chain2");
  NodeId indep = g.addOp(dfg::OpKind::Mul, {a, b}, "indep");
  g.markOutput(chain);
  g.markOutput(indep);
  Allocation alloc{{ResourceClass::Multiplier, 1}};
  StepSchedule mob = listSchedule(g, alloc, PriorityRule::Mobility);
  EXPECT_EQ(mob.stepOf[g.findByName("chain0")], 0);
  EXPECT_GT(mob.stepOf[g.findByName("indep")], 0);
}

TEST(Steps, ValidationCatchesBrokenSchedules) {
  Dfg g = test::diamond();
  StepSchedule s = asap(g);
  s.stepOf[g.findByName("s")] = 0;  // same step as its predecessors
  EXPECT_THROW(validateStepSchedule(g, s), Error);
}

TEST(Binding, FromStepsBindsEverything) {
  Dfg g = dfg::diffeq();
  Allocation alloc{{ResourceClass::Multiplier, 2},
                   {ResourceClass::Adder, 1},
                   {ResourceClass::Subtractor, 1}};
  StepSchedule s = listSchedule(g, alloc);
  Binding b = bindFromSteps(g, s, alloc);
  EXPECT_EQ(b.numUnits(), 4u);
  EXPECT_EQ(b.unitsOfClass(ResourceClass::Multiplier).size(), 2u);
  std::size_t totalBound = 0;
  for (std::size_t u = 0; u < b.numUnits(); ++u) {
    totalBound += b.sequenceOf(static_cast<int>(u)).size();
  }
  EXPECT_EQ(totalBound, g.numOps());
  for (NodeId v : g.opIds()) EXPECT_NE(b.unitOf(v), -1);
}

TEST(Binding, SerializationArcsOrderSameUnitOps) {
  Dfg g = test::parallelMuls(4);
  Allocation alloc{{ResourceClass::Multiplier, 2}};
  StepSchedule s = listSchedule(g, alloc);
  Binding b = bindFromSteps(g, s, alloc);
  addSerializationArcs(g, b);
  // Each unit runs 2 ops; consecutive ops are now ordered.
  for (std::size_t u = 0; u < b.numUnits(); ++u) {
    const auto& seq = b.sequenceOf(static_cast<int>(u));
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_TRUE(dfg::reaches(g, seq[0], seq[1]));
  }
  EXPECT_EQ(g.scheduleArcs().size(), 2u);
}

TEST(Binding, ValidateRejectsWrongClassAndDuplicates) {
  Dfg g = test::diamond();
  Binding b;
  int mu = b.addUnit(ResourceClass::Multiplier, 0);
  int au = b.addUnit(ResourceClass::Adder, 0);
  b.assign(g.findByName("m1"), mu);
  b.assign(g.findByName("m2"), au);  // wrong class
  b.assign(g.findByName("s"), au);
  EXPECT_THROW(validateBinding(g, b), Error);
}

TEST(Binding, ValidateRejectsIncompleteBinding) {
  Dfg g = test::diamond();
  Binding b;
  int mu = b.addUnit(ResourceClass::Multiplier, 0);
  b.assign(g.findByName("m1"), mu);
  EXPECT_THROW(validateBinding(g, b), Error);
}

TEST(Binding, ValidateRejectsOrderContradictingDeps) {
  Dfg g = test::mulChain(2);
  Binding b;
  int mu = b.addUnit(ResourceClass::Multiplier, 0);
  b.assign(g.findByName("m1"), mu);  // depends on m0 but listed first
  b.assign(g.findByName("m0"), mu);
  EXPECT_THROW(validateBinding(g, b), Error);
}

TEST(Clique, ChainCoverOfIndependentOps) {
  Dfg g = test::parallelMuls(4);
  auto chains = minChainCover(g, ResourceClass::Multiplier);
  EXPECT_EQ(chains.size(), 4u);  // no two comparable
}

TEST(Clique, ChainCoverOfChain) {
  Dfg g = test::mulChain(5);
  auto chains = minChainCover(g, ResourceClass::Multiplier);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].size(), 5u);
}

TEST(Clique, PaperFig3NeedsThreeMultipliers) {
  // The paper: mult cliques (O0-O1), (O4), (O6-O8) -> minimum three units.
  Dfg g = dfg::paperFig3();
  auto chains = minChainCover(g, ResourceClass::Multiplier);
  EXPECT_EQ(chains.size(), 3u);
}

TEST(Clique, ScheduleReducesToTwoMultipliers) {
  // Fig. 3(b): after inserting schedule arcs the cover drops to two chains.
  Dfg g = dfg::paperFig3();
  Allocation alloc{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 2}};
  Binding b = cliqueSchedule(g, alloc, dfg::unitDurations(g));
  EXPECT_EQ(b.unitsOfClass(ResourceClass::Multiplier).size(), 2u);
  EXPECT_EQ(b.unitsOfClass(ResourceClass::Adder).size(), 2u);
  // After arc insertion, the cover is realizable with 2 units.
  auto chains = minChainCover(g, ResourceClass::Multiplier);
  EXPECT_LE(chains.size(), 2u);
  validateBinding(g, b);
}

TEST(Clique, ChainsRespectDependenceOrder) {
  Dfg g = dfg::arLattice();
  for (auto& chain : minChainCover(g, ResourceClass::Multiplier)) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      EXPECT_TRUE(dfg::reaches(g, chain[i], chain[i + 1]));
    }
  }
}

TEST(Taubm, SplitsOnlyTauSteps) {
  Dfg g = dfg::paperFig2();
  tau::ResourceLibrary lib = tau::paperLibrary();
  Allocation alloc{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}};
  StepSchedule s = listSchedule(g, alloc);
  TaubmSchedule tb = buildTaubm(g, s, lib);
  ASSERT_EQ(tb.steps.size(), 4u);  // T0..T3 as in Fig. 2
  EXPECT_TRUE(tb.steps[0].split);   // O0, O3 multiplications
  EXPECT_FALSE(tb.steps[1].split);  // O1 addition
  EXPECT_TRUE(tb.steps[2].split);   // O2, O4 multiplications
  EXPECT_FALSE(tb.steps[3].split);  // O5 addition
  // Fig. 2(c): latency varies between 4 and 6 clock cycles.
  EXPECT_EQ(tb.bestCaseCycles(), 4);
  EXPECT_EQ(tb.worstCaseCycles(), 6);
}

TEST(Taubm, NoTelescopicTypesMeansNoSplits) {
  Dfg g = dfg::paperFig2();
  tau::ResourceLibrary lib;
  lib.registerType(tau::fixedUnit("mult", ResourceClass::Multiplier, 20.0));
  lib.registerType(tau::fixedUnit("adder", ResourceClass::Adder, 15.0));
  StepSchedule s = listSchedule(g, {});
  TaubmSchedule tb = buildTaubm(g, s, lib);
  EXPECT_EQ(tb.bestCaseCycles(), tb.worstCaseCycles());
}

TEST(ScheduledDfg, EndToEndLeftEdge) {
  Dfg g = dfg::diffeq();
  Allocation alloc{{ResourceClass::Multiplier, 2},
                   {ResourceClass::Adder, 1},
                   {ResourceClass::Subtractor, 1}};
  ScheduledDfg s = scheduleAndBind(g, alloc, tau::paperLibrary());
  EXPECT_DOUBLE_EQ(s.clockNs, 15.0);
  EXPECT_EQ(s.binding.numUnits(), 4u);
  for (int u = 0; u < static_cast<int>(s.binding.numUnits()); ++u) {
    const bool isMult = s.binding.unit(u).cls == ResourceClass::Multiplier;
    EXPECT_EQ(s.unitIsTelescopic(u), isMult);
  }
  NodeId m1 = s.graph.findByName("m1");
  EXPECT_EQ(s.opCycles(m1, true), 1);
  EXPECT_EQ(s.opCycles(m1, false), 2);
  NodeId x1 = s.graph.findByName("x1");
  EXPECT_EQ(s.opCycles(x1, false), 1);
}

TEST(ScheduledDfg, EndToEndCliqueCover) {
  Dfg g = dfg::paperFig3();
  Allocation alloc{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 2}};
  ScheduledDfg s = scheduleAndBind(g, alloc, tau::paperLibrary(),
                                   BindingStrategy::CliqueCover);
  EXPECT_EQ(s.binding.unitsOfClass(ResourceClass::Multiplier).size(), 2u);
  // Step schedule remains valid on the arc-augmented graph.
  validateStepSchedule(s.graph, s.steps);
}

TEST(ScheduledDfg, NonTwoLevelTauRejected) {
  // LD = 50 needs 4 cycles of the 15 ns clock: not a two-level TAU.
  dfg::Dfg g = test::parallelMuls(2);
  tau::ResourceLibrary lib;
  lib.registerType(
      tau::telescopicUnit("slow", ResourceClass::Multiplier, 15.0, 50.0, 0.5));
  EXPECT_THROW(scheduleAndBind(g, {}, lib), Error);
}

TEST(ScheduledDfg, MissingLibraryClassRejected) {
  Dfg g = dfg::diffeq();
  tau::ResourceLibrary lib;
  lib.registerType(
      tau::telescopicUnit("tm", ResourceClass::Multiplier, 15, 20, 0.5));
  EXPECT_THROW(scheduleAndBind(g, {}, lib), Error);
}

struct StrategyCase {
  std::uint64_t seed;
  BindingStrategy strategy;
};

class SchedProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, BindingStrategy>> {};

TEST_P(SchedProperty, RandomGraphsScheduleCleanly) {
  const auto [seed, strategy] = GetParam();
  dfg::RandomDfgSpec spec;
  spec.seed = seed;
  spec.numOps = 8 + static_cast<int>(seed % 25);
  Dfg g = dfg::randomDfg(spec);
  Allocation alloc{{ResourceClass::Multiplier, 2},
                   {ResourceClass::Adder, 1},
                   {ResourceClass::Subtractor, 1}};
  ScheduledDfg s = scheduleAndBind(g, alloc, tau::paperLibrary(), strategy);
  // Invariants checked by construction; additionally the arc-augmented graph
  // must still be a DAG, and every op bound exactly once.
  EXPECT_TRUE(s.graph.isAcyclic());
  std::size_t bound = 0;
  for (std::size_t u = 0; u < s.binding.numUnits(); ++u) {
    bound += s.binding.sequenceOf(static_cast<int>(u)).size();
  }
  EXPECT_EQ(bound, s.graph.numOps());
  // The schedule never beats the dependence-only critical path.
  EXPECT_GE(s.steps.numSteps,
            dfg::criticalPathLength(g, dfg::unitDurations(g)));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedProperty,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 16),
                       ::testing::Values(BindingStrategy::LeftEdge,
                                         BindingStrategy::CliqueCover)));

}  // namespace
}  // namespace tauhls::sched
