// Persistent artifact store (core/store.hpp) + artifact codecs
// (core/serialize.hpp): round-trips for every artifact kind, cross-process
// cache reuse, corruption fallback, LRU bounds, gc, and concurrency.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/json.hpp"
#include "core/pipeline.hpp"
#include "core/serialize.hpp"
#include "core/store.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/kiss.hpp"
#include "rtl/verilog.hpp"
#include "verify/diagnostic.hpp"
#include "verify/equiv_check.hpp"
#include "verify/symbolic_check.hpp"
#include "verify/xprop_check.hpp"

namespace tauhls {
namespace {

namespace fs = std::filesystem;
using namespace tauhls::core;

/// Fresh per-test store directory under the gtest temp root.
fs::path freshDir(const std::string& name) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("tauhls_store_" + name);
  fs::remove_all(dir);
  return dir;
}

/// All artifact ids, in enum order.
std::vector<Artifact> allArtifacts() {
  std::vector<Artifact> all;
  for (int i = 0; i < kNumArtifacts; ++i) all.push_back(static_cast<Artifact>(i));
  return all;
}

/// A pipeline with every artifact materialized (cent-fsm + demand-only
/// passes included), over the first paper benchmark.
std::unique_ptr<FlowPipeline> materializeEverything(
    const dfg::Dfg& graph, const sched::Allocation& alloc,
    std::shared_ptr<ArtifactCache> cache = nullptr) {
  FlowConfig cfg;
  cfg.allocation = alloc;
  cfg.buildCentFsm = true;
  auto pipe = std::make_unique<FlowPipeline>(graph, cfg, std::move(cache));
  pipe->run();
  pipe->require({Artifact::Rtl, Artifact::Equivalence, Artifact::Timing,
                 Artifact::SymbolicCheck, Artifact::XCheck});
  return pipe;
}

TEST(Serialize, RoundTripsEveryArtifactKind) {
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();
  auto cache = std::make_shared<ArtifactCache>();
  auto pipe = materializeEverything(b.graph, b.allocation, cache);

  for (Artifact a : allArtifacts()) {
    SCOPED_TRACE(artifactName(a));
    ASSERT_TRUE(pipe->has(a));
    // Rebox the typed artifact the way the pipeline stores it
    // (shared_ptr<const T> inside std::any) so encodeArtifact accepts it.
    std::any slotValue;
    switch (a) {
      case Artifact::Schedule:
        slotValue = std::make_shared<const sched::ScheduledDfg>(
            pipe->get<sched::ScheduledDfg>(a));
        break;
      case Artifact::RawDistributed:
      case Artifact::Distributed:
        slotValue = std::make_shared<const fsm::DistributedControlUnit>(
            pipe->get<fsm::DistributedControlUnit>(a));
        break;
      case Artifact::SignalStats:
        slotValue = std::make_shared<const fsm::SignalOptStats>(
            pipe->get<fsm::SignalOptStats>(a));
        break;
      case Artifact::CentSync:
      case Artifact::CentFsm:
        slotValue = std::make_shared<const fsm::Fsm>(pipe->get<fsm::Fsm>(a));
        break;
      case Artifact::Latency:
        slotValue = std::make_shared<const sim::LatencyComparison>(
            pipe->get<sim::LatencyComparison>(a));
        break;
      case Artifact::Diagnostics:
      case Artifact::Timing:
        slotValue = std::make_shared<const verify::Report>(
            pipe->get<verify::Report>(a));
        break;
      case Artifact::DistArea:
        slotValue = std::make_shared<const synth::DistributedAreaReport>(
            pipe->get<synth::DistributedAreaReport>(a));
        break;
      case Artifact::CentSyncArea:
      case Artifact::CentFsmArea:
        slotValue = std::make_shared<const synth::AreaRow>(
            pipe->get<synth::AreaRow>(a));
        break;
      case Artifact::Rtl:
        slotValue =
            std::make_shared<const std::string>(pipe->get<std::string>(a));
        break;
      case Artifact::Equivalence:
        slotValue = std::make_shared<const verify::EquivalenceArtifact>(
            pipe->get<verify::EquivalenceArtifact>(a));
        break;
      case Artifact::SymbolicCheck:
        slotValue = std::make_shared<const verify::SymbolicArtifact>(
            pipe->get<verify::SymbolicArtifact>(a));
        break;
      case Artifact::XCheck:
        slotValue = std::make_shared<const verify::XCheckArtifact>(
            pipe->get<verify::XCheckArtifact>(a));
        break;
    }

    const std::vector<std::uint8_t> bytes = encodeArtifact(a, slotValue);
    ASSERT_FALSE(bytes.empty());
    const std::any decoded = decodeArtifact(a, bytes.data(), bytes.size());
    // encode(decode(encode(x))) == encode(x): the codec is deterministic, so
    // byte equality of re-encodings is structural equality of the values.
    EXPECT_EQ(encodeArtifact(a, decoded), bytes);
  }

  // Targeted semantic spot-checks on the two richest kinds.
  {
    const auto& dcu = pipe->get<fsm::DistributedControlUnit>(Artifact::Distributed);
    const auto bytes = encodeArtifact(
        Artifact::Distributed,
        std::any(std::make_shared<const fsm::DistributedControlUnit>(dcu)));
    const auto decoded =
        decodeArtifact(Artifact::Distributed, bytes.data(), bytes.size());
    const auto& back =
        **std::any_cast<std::shared_ptr<const fsm::DistributedControlUnit>>(
            &decoded);
    EXPECT_EQ(rtl::emitPackage(dcu, "rt"), rtl::emitPackage(back, "rt"));
  }
  {
    const auto& machine = pipe->get<fsm::Fsm>(Artifact::CentSync);
    const auto bytes = encodeArtifact(
        Artifact::CentSync, std::any(std::make_shared<const fsm::Fsm>(machine)));
    const auto decoded =
        decodeArtifact(Artifact::CentSync, bytes.data(), bytes.size());
    const auto& back = **std::any_cast<std::shared_ptr<const fsm::Fsm>>(&decoded);
    EXPECT_EQ(fsm::toKiss2(machine), fsm::toKiss2(back));
    fsm::validateFsm(back);
  }
}

TEST(Serialize, RejectsGarbageWithoutCrashing) {
  std::vector<std::uint8_t> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(0xA5 ^ (i * 37));
  }
  for (Artifact a : allArtifacts()) {
    SCOPED_TRACE(artifactName(a));
    try {
      (void)decodeArtifact(a, garbage.data(), garbage.size());
      // Some kinds may legitimately decode 64 arbitrary bytes; the contract
      // is only "no crash, no UB", which reaching this line satisfies.
    } catch (const Error&) {
      // Expected for nearly all kinds.
    }
  }
  // Truncation of a valid blob must throw, not crash, at every length.
  const auto suite = dfg::paperTable2Suite();
  auto pipe = materializeEverything(suite.front().graph, suite.front().allocation);
  const auto bytes = encodeArtifact(
      Artifact::Schedule, std::any(std::make_shared<const sched::ScheduledDfg>(
                              pipe->get<sched::ScheduledDfg>(Artifact::Schedule))));
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, bytes.size() / 2,
                          bytes.size() - 1}) {
    EXPECT_THROW((void)decodeArtifact(Artifact::Schedule, bytes.data(), len),
                 Error);
  }
}

TEST(Store, PutLoadRoundTripAndPersistence) {
  const fs::path dir = freshDir("roundtrip");
  const common::Fingerprint key{0x1234, 0x5678};
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5, 255, 0, 128};
  {
    ArtifactStore store({dir, 0});
    store.put(key, 7, payload);
    EXPECT_TRUE(store.contains(key));
    const auto back = store.load(key, 7);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    EXPECT_EQ(store.stats().blobs, 1u);
  }
  {
    // A second handle (fresh process in spirit) sees the same blob.
    ArtifactStore store({dir, 0});
    EXPECT_EQ(store.stats().blobs, 1u);
    const auto back = store.load(key, 7);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
    // Wrong kind tag is a miss, and the mismatched blob is dropped.
    EXPECT_FALSE(store.load(key, 8).has_value());
    EXPECT_FALSE(store.contains(key));
    EXPECT_EQ(store.stats().corrupt, 1u);
  }
}

TEST(Store, CorruptedAndTruncatedBlobsAreMisses) {
  const fs::path dir = freshDir("corrupt");
  ArtifactStore store({dir, 0});
  const common::Fingerprint keyA{1, 1};
  const common::Fingerprint keyB{2, 2};
  const std::vector<std::uint8_t> payload(300, 42);
  store.put(keyA, 3, payload);
  store.put(keyB, 3, payload);

  // Flip one payload byte of A; truncate B to half.
  const fs::path blobA = dir / "blobs" / (keyA.toHex() + ".blob");
  const fs::path blobB = dir / "blobs" / (keyB.toHex() + ".blob");
  {
    std::fstream f(blobA, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x7f');
  }
  fs::resize_file(blobB, fs::file_size(blobB) / 2);

  EXPECT_FALSE(store.load(keyA, 3).has_value());
  EXPECT_FALSE(store.load(keyB, 3).has_value());
  EXPECT_EQ(store.stats().corrupt, 2u);
  // Both were unlinked so the next run rewrites them cleanly.
  EXPECT_FALSE(fs::exists(blobA));
  EXPECT_FALSE(fs::exists(blobB));
  // And a re-put works.
  store.put(keyA, 3, payload);
  EXPECT_TRUE(store.load(keyA, 3).has_value());
}

TEST(Store, LruSizeBoundEvictsOldestFirst) {
  const fs::path dir = freshDir("lru");
  const std::vector<std::uint8_t> payload(1000, 9);
  // Header is 40 bytes -> each blob is 1040; bound to ~3 blobs.
  ArtifactStore store({dir, 3 * 1040 + 100});
  const common::Fingerprint k1{1, 0}, k2{2, 0}, k3{3, 0}, k4{4, 0};
  store.put(k1, 0, payload);
  store.put(k2, 0, payload);
  store.put(k3, 0, payload);
  // Touch k1 so k2 becomes the LRU entry.
  EXPECT_TRUE(store.load(k1, 0).has_value());
  store.put(k4, 0, payload);
  EXPECT_TRUE(store.contains(k1));
  EXPECT_FALSE(store.contains(k2));  // evicted (least recently used)
  EXPECT_TRUE(store.contains(k3));
  EXPECT_TRUE(store.contains(k4));
  const StoreStats s = store.stats();
  EXPECT_EQ(s.evictedBlobs, 1u);
  EXPECT_LE(s.bytes, s.maxBytes);
}

TEST(Store, GcShrinksToTargetAndZeroEmpties) {
  const fs::path dir = freshDir("gc");
  const std::vector<std::uint8_t> payload(500, 1);
  {
    ArtifactStore store({dir, 0});
    for (std::uint64_t i = 1; i <= 10; ++i) {
      store.put({i, i}, 0, payload);
    }
    EXPECT_EQ(store.stats().blobs, 10u);
    const std::uint64_t evicted = store.gc(3 * (500 + 40));
    EXPECT_GT(evicted, 0u);
    EXPECT_LE(store.stats().bytes, 3u * 540u);
    EXPECT_EQ(store.stats().blobs, 3u);
  }
  {
    // gc(0) through a fresh handle (exercises the index reload too).
    ArtifactStore store({dir, 0});
    EXPECT_EQ(store.stats().blobs, 3u);
    store.gc(0);
    EXPECT_EQ(store.stats().blobs, 0u);
    EXPECT_EQ(store.stats().bytes, 0u);
  }
}

TEST(Store, IndexIsAdvisoryAndRebuilds) {
  const fs::path dir = freshDir("index");
  const common::Fingerprint key{77, 88};
  const std::vector<std::uint8_t> payload(64, 7);
  {
    ArtifactStore store({dir, 0});
    store.put(key, 1, payload);
  }
  // Corrupt the index outright; the store must rescan blobs/ and carry on.
  {
    std::ofstream out(dir / "index.txt", std::ios::trunc);
    out << "not an index at all\n";
  }
  {
    ArtifactStore store({dir, 0});
    EXPECT_EQ(store.stats().blobs, 1u);
    EXPECT_EQ(store.load(key, 1).value(), payload);
  }
  // Remove it entirely; same outcome.
  fs::remove(dir / "index.txt");
  {
    ArtifactStore store({dir, 0});
    EXPECT_EQ(store.stats().blobs, 1u);
    EXPECT_EQ(store.load(key, 1).value(), payload);
  }
}

TEST(Store, ConcurrentWritersAndReaders) {
  const fs::path dir = freshDir("concurrent");
  ArtifactStore store({dir, 0});
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 12;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kKeysPerThread; ++i) {
        // Half the keys are shared across all threads (write races on one
        // path), half are private.
        const std::uint64_t hi = (i % 2 == 0) ? 0xABC : 0x1000 + static_cast<std::uint64_t>(t);
        const common::Fingerprint key{hi, static_cast<std::uint64_t>(i)};
        std::vector<std::uint8_t> payload(128, static_cast<std::uint8_t>(i));
        store.put(key, 2, payload);
        const auto back = store.load(key, 2);
        ASSERT_TRUE(back.has_value());
        ASSERT_EQ(*back, payload);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(store.stats().corrupt, 0u);
  // Shared keys dedup: 6 shared + 8*6 private.
  EXPECT_EQ(store.stats().blobs, 6u + 8u * 6u);
}

TEST(Store, CrossProcessPipelineReuseIsBitIdentical) {
  const fs::path dir = freshDir("crossprocess");
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();

  // "Process 1": cold run against an empty store.
  auto cache1 = std::make_shared<ArtifactCache>();
  cache1->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  auto pipe1 = materializeEverything(b.graph, b.allocation, cache1);
  const CacheStats first = cache1->stats();
  EXPECT_EQ(first.hits, 0u);
  EXPECT_GT(first.misses, 0u);

  // "Process 2": a fresh memory cache and a fresh store handle on the same
  // directory -- exactly what a second CLI invocation sees.
  auto cache2 = std::make_shared<ArtifactCache>();
  cache2->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  auto pipe2 = materializeEverything(b.graph, b.allocation, cache2);
  const CacheStats second = cache2->stats();
  EXPECT_EQ(second.misses, 0u) << "warm run recomputed a pass";
  EXPECT_EQ(second.diskHits, second.hits) << "warm run must be disk-served";
  EXPECT_EQ(second.hits, first.misses);

  // The disk-served artifacts reproduce the cold run bit for bit.
  EXPECT_EQ(pipe1->get<std::string>(Artifact::Rtl),
            pipe2->get<std::string>(Artifact::Rtl));
  EXPECT_EQ(fsm::toKiss2(pipe1->get<fsm::Fsm>(Artifact::CentSync)),
            fsm::toKiss2(pipe2->get<fsm::Fsm>(Artifact::CentSync)));
  EXPECT_EQ(
      verify::renderText(pipe1->get<verify::Report>(Artifact::Diagnostics)),
      verify::renderText(pipe2->get<verify::Report>(Artifact::Diagnostics)));
  EXPECT_EQ(
      verify::renderText(pipe1->get<verify::Report>(Artifact::Timing)),
      verify::renderText(pipe2->get<verify::Report>(Artifact::Timing)));
  // FlowResult-level identity through the public JSON rendering.
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.buildCentFsm = true;
  FlowPipeline r1(b.graph, cfg, cache1);
  FlowPipeline r2(b.graph, cfg, cache2);
  EXPECT_EQ(toJson(r1.run()), toJson(r2.run()));

  // Every warm trace event carries the disk tier.
  for (const PassTraceEvent& ev : pipe2->traceEvents()) {
    EXPECT_EQ(ev.tier, CacheTier::Disk) << ev.pass;
    EXPECT_TRUE(ev.cacheHit);
  }
}

TEST(Store, CorruptBlobFallsBackToRecompute) {
  const fs::path dir = freshDir("fallback");
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();
  FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.synthesizeArea = false;

  auto cache1 = std::make_shared<ArtifactCache>();
  cache1->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  FlowPipeline pipe1(b.graph, cfg, cache1);
  const FlowResult cold = pipe1.run();

  // Vandalize every blob: overwrite a byte in the middle of each file.
  for (const auto& file : fs::directory_iterator(dir / "blobs")) {
    std::fstream f(file.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(file.path()) / 2));
    f.put('\x55');
  }

  auto cache2 = std::make_shared<ArtifactCache>();
  cache2->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  FlowPipeline pipe2(b.graph, cfg, cache2);
  const FlowResult warm = pipe2.run();  // must not crash
  const CacheStats stats = cache2->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(toJson(cold), toJson(warm));
  // The recompute healed the store: a third run is disk-served again.
  auto cache3 = std::make_shared<ArtifactCache>();
  cache3->attachStore(std::make_shared<ArtifactStore>(StoreOptions{dir, 0}));
  FlowPipeline pipe3(b.graph, cfg, cache3);
  pipe3.run();
  EXPECT_EQ(cache3->stats().misses, 0u);
}

TEST(Store, StoreJsonReportIsSchemaVersioned) {
  const fs::path dir = freshDir("json");
  ArtifactStore store({dir, 1 << 20});
  store.put({5, 6}, 1, std::vector<std::uint8_t>(10, 1));
  const std::string json = renderStoreJson(store.stats());
  EXPECT_NE(json.find("\"schema\":\"tauhls-store\""), std::string::npos);
  EXPECT_NE(json.find("\"version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"blobs\":1"), std::string::npos);
  EXPECT_NE(json.find("\"maxBytes\":1048576"), std::string::npos);
}

}  // namespace
}  // namespace tauhls
