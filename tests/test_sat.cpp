// CDCL SAT solver unit tests (aig/sat.hpp): DIMACS regressions, edge cases,
// and a randomized differential check against brute-force enumeration.
// This suite has its own binary so CI can additionally run it under
// asan/ubsan without paying for the whole test tree.
#include "aig/sat.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace tauhls::aig {
namespace {

TEST(Sat, EmptyInstanceIsSat) {
  SatSolver s;
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, SingleUnit) {
  SatSolver s;
  s.addClause({1});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.modelValue(1));
}

TEST(Sat, ContradictoryUnits) {
  SatSolver s;
  s.addClause({1});
  s.addClause({-1});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, EmptyClauseIsUnsat) {
  SatSolver s;
  s.addClause({1, 2});
  s.addClause({});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, TautologyIsDropped) {
  SatSolver s;
  s.addClause({1, -1});
  s.addClause({-2});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  EXPECT_FALSE(s.modelValue(2));
}

TEST(Sat, ImplicationChainPropagates) {
  // 1 and a chain 1->2->...->20 forces every variable true.
  SatSolver s;
  s.addClause({1});
  for (int v = 1; v < 20; ++v) s.addClause({-v, v + 1});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  for (int v = 1; v <= 20; ++v) EXPECT_TRUE(s.modelValue(v)) << "var " << v;
}

TEST(Sat, ModelSatisfiesAllClauses) {
  // A small structured instance with several solutions; whatever model the
  // solver picks must satisfy every clause.
  const std::vector<std::vector<int>> clauses = {
      {1, 2, 3}, {-1, -2}, {-2, -3}, {-1, -3}, {2, 4}, {-4, 5}, {3, -5, 6}};
  SatSolver s;
  for (const auto& c : clauses) s.addClause(c);
  ASSERT_EQ(s.solve(), SatResult::Sat);
  for (const auto& c : clauses) {
    bool satisfied = false;
    for (int lit : c) {
      const bool value = s.modelValue(lit > 0 ? lit : -lit);
      if ((lit > 0) == value) satisfied = true;
    }
    EXPECT_TRUE(satisfied);
  }
}

/// CNF for the pigeonhole principle PHP(pigeons, holes): unsatisfiable
/// whenever pigeons > holes, and known to require genuine conflict-driven
/// search (no polynomial resolution proofs exist).
std::vector<std::vector<int>> pigeonhole(int pigeons, int holes) {
  auto var = [&](int p, int h) { return p * holes + h + 1; };
  std::vector<std::vector<int>> cnf;
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> atLeast;
    for (int h = 0; h < holes; ++h) atLeast.push_back(var(p, h));
    cnf.push_back(atLeast);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        cnf.push_back({-var(p1, h), -var(p2, h)});
      }
    }
  }
  return cnf;
}

TEST(Sat, PigeonholeUnsat) {
  for (int holes = 2; holes <= 5; ++holes) {
    SatSolver s;
    for (auto& c : pigeonhole(holes + 1, holes)) s.addClause(c);
    EXPECT_EQ(s.solve(), SatResult::Unsat) << "PHP(" << holes + 1 << ","
                                           << holes << ")";
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(Sat, PigeonholeSatWhenEnoughHoles) {
  SatSolver s;
  for (auto& c : pigeonhole(5, 5)) s.addClause(c);
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, ConflictBudgetYieldsUnknown) {
  // PHP(8,7) needs far more than 5 conflicts; the bounded call must give up
  // cleanly instead of claiming either answer.
  SatSolver s;
  for (auto& c : pigeonhole(8, 7)) s.addClause(c);
  EXPECT_EQ(s.solve(5), SatResult::Unknown);
}

TEST(Sat, ParseDimacs) {
  int numVars = 0;
  const auto clauses = parseDimacs(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n",
      numVars);
  EXPECT_EQ(numVars, 3);
  ASSERT_EQ(clauses.size(), 2u);
  EXPECT_EQ(clauses[0], (std::vector<int>{1, -2}));
  EXPECT_EQ(clauses[1], (std::vector<int>{2, 3}));
}

TEST(Sat, DimacsRegressions) {
  // (x1 | x2) & (!x1 | x2) & (x1 | !x2) & (!x1 | !x2) -- classic unsat core.
  EXPECT_EQ(solveDimacs("p cnf 2 4\n1 2 0\n-1 2 0\n1 -2 0\n-1 -2 0\n"),
            SatResult::Unsat);
  // Same minus one clause: satisfiable.
  EXPECT_EQ(solveDimacs("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n"), SatResult::Sat);
  // XOR chain x1^x2^x3 = 1 as CNF (odd parity), satisfiable.
  EXPECT_EQ(solveDimacs("p cnf 3 4\n"
                        "1 2 3 0\n1 -2 -3 0\n-1 2 -3 0\n-1 -2 3 0\n"),
            SatResult::Sat);
  // ...conjoined with even parity: unsat.
  EXPECT_EQ(solveDimacs("p cnf 3 8\n"
                        "1 2 3 0\n1 -2 -3 0\n-1 2 -3 0\n-1 -2 3 0\n"
                        "-1 -2 -3 0\n-1 2 3 0\n1 -2 3 0\n1 2 -3 0\n"),
            SatResult::Unsat);
}

/// Deterministic xorshift PRNG so the differential test is reproducible.
std::uint64_t nextRand(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

bool bruteForceSat(const std::vector<std::vector<int>>& clauses, int numVars) {
  for (std::uint32_t mask = 0; mask < (1u << numVars); ++mask) {
    bool all = true;
    for (const auto& c : clauses) {
      bool sat = false;
      for (int lit : c) {
        const int v = lit > 0 ? lit : -lit;
        const bool value = (mask >> (v - 1)) & 1u;
        if ((lit > 0) == value) sat = true;
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Sat, RandomDifferentialAgainstBruteForce) {
  // 200 random 3-SAT instances around the phase-transition ratio, 8 vars
  // each: the solver must agree with exhaustive enumeration on every one.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  const int numVars = 8;
  int satCount = 0;
  for (int instance = 0; instance < 200; ++instance) {
    const int numClauses = 28 + static_cast<int>(nextRand(rng) % 14);
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < numClauses; ++c) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(nextRand(rng) % numVars);
        clause.push_back((nextRand(rng) & 1) ? v : -v);
      }
      clauses.push_back(clause);
    }
    SatSolver s;
    for (const auto& c : clauses) s.addClause(c);
    const SatResult got = s.solve();
    const bool expected = bruteForceSat(clauses, numVars);
    ASSERT_EQ(got, expected ? SatResult::Sat : SatResult::Unsat)
        << "instance " << instance;
    if (expected) {
      ++satCount;
      for (const auto& c : clauses) {
        bool sat = false;
        for (int lit : c) {
          if ((lit > 0) == s.modelValue(lit > 0 ? lit : -lit)) sat = true;
        }
        ASSERT_TRUE(sat) << "model violates clause, instance " << instance;
      }
    }
  }
  // Sanity: the mix actually exercises both outcomes.
  EXPECT_GT(satCount, 20);
  EXPECT_LT(satCount, 180);
}

TEST(Sat, IncrementalClauseAddition) {
  SatSolver s;
  s.addClause({1, 2});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  s.addClause({-1});
  EXPECT_EQ(s.solve(), SatResult::Sat);
  EXPECT_TRUE(s.modelValue(2));
  s.addClause({-2});
  EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, StatsAccumulate) {
  SatSolver s;
  for (auto& c : pigeonhole(6, 5)) s.addClause(c);
  ASSERT_EQ(s.solve(), SatResult::Unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GT(s.stats().learned, 0u);
}

TEST(Sat, SolveUnderAssumptionsMatchesUnitClauses) {
  // Differential: solving under assumptions must give the same verdict as a
  // fresh solver with the assumptions added as unit clauses -- and the
  // assumptions must not stick to later calls.
  std::uint64_t rng = 0xabcdef0123456789ull;
  const int numVars = 8;
  int unsatUnderAssumptions = 0;
  for (int instance = 0; instance < 100; ++instance) {
    const int numClauses = 26 + static_cast<int>(nextRand(rng) % 14);
    std::vector<std::vector<int>> clauses;
    for (int cl = 0; cl < numClauses; ++cl) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(nextRand(rng) % numVars);
        clause.push_back((nextRand(rng) & 1) ? v : -v);
      }
      clauses.push_back(clause);
    }
    std::vector<int> assumptions;
    for (int k = 0; k < 2; ++k) {
      const int v = 1 + static_cast<int>(nextRand(rng) % numVars);
      assumptions.push_back((nextRand(rng) & 1) ? v : -v);
    }

    SatSolver incremental;
    for (const auto& cl : clauses) incremental.addClause(cl);
    const SatResult base = incremental.solve();
    const SatResult assumed = incremental.solve(assumptions);

    SatSolver fresh;
    for (const auto& cl : clauses) fresh.addClause(cl);
    for (int a : assumptions) fresh.addClause({a});
    ASSERT_EQ(assumed, fresh.solve()) << "instance " << instance;
    if (assumed == SatResult::Unsat) ++unsatUnderAssumptions;
    if (assumed == SatResult::Sat) {
      for (int a : assumptions) {
        ASSERT_EQ(incremental.modelValue(a > 0 ? a : -a), a > 0)
            << "assumption not honoured, instance " << instance;
      }
    }
    // The assumptions are scoped to the one call: re-solving without them
    // must reproduce the unconstrained verdict.
    ASSERT_EQ(incremental.solve(), base) << "instance " << instance;
  }
  EXPECT_GT(unsatUnderAssumptions, 5);  // the mix exercises both outcomes
}

TEST(Sat, ActivationLiteralScoping) {
  // MiniSat-style clause groups: clauses guarded by an activation literal
  // are live only while the literal is assumed, and a unit clause retires
  // the group for good.
  SatSolver s;
  s.addClause({1, 2});
  const int actA = s.newVar();
  const int actB = s.newVar();
  s.addClause({-actA, -1});
  s.addClause({-actA, -2});
  s.addClause({-actB, 1});
  EXPECT_EQ(s.solve(std::vector<int>{actA}), SatResult::Unsat);
  EXPECT_EQ(s.solve(std::vector<int>{actB}), SatResult::Sat);
  EXPECT_TRUE(s.modelValue(1));
  EXPECT_EQ(s.solve(), SatResult::Sat);
  s.addClause({-actA});  // retire group A
  EXPECT_EQ(s.solve(std::vector<int>{actB}), SatResult::Sat);
}

TEST(Sat, FalsifiedAssumptionIsUnsat) {
  SatSolver s;
  s.addClause({1});
  EXPECT_EQ(s.solve(std::vector<int>{-1}), SatResult::Unsat);
  EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, LearnedClauseDbReductionKeepsVerdicts) {
  // A tiny learned-clause budget forces many reduceDB rounds; the verdict
  // and the model discipline must be unaffected.
  {
    SatSolver s;
    s.setLearnedLimit(16);
    for (auto& cl : pigeonhole(7, 6)) s.addClause(cl);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.stats().learned, 16u);  // far more learned than ever live
  }
  std::uint64_t rng = 0x5ca1ab1e0ddba11ull;
  const int numVars = 8;
  for (int instance = 0; instance < 60; ++instance) {
    const int numClauses = 28 + static_cast<int>(nextRand(rng) % 14);
    std::vector<std::vector<int>> clauses;
    for (int cl = 0; cl < numClauses; ++cl) {
      std::vector<int> clause;
      for (int k = 0; k < 3; ++k) {
        const int v = 1 + static_cast<int>(nextRand(rng) % numVars);
        clause.push_back((nextRand(rng) & 1) ? v : -v);
      }
      clauses.push_back(clause);
    }
    SatSolver s;
    s.setLearnedLimit(4);
    for (const auto& cl : clauses) s.addClause(cl);
    const bool expected = bruteForceSat(clauses, numVars);
    ASSERT_EQ(s.solve(), expected ? SatResult::Sat : SatResult::Unsat)
        << "instance " << instance;
  }
}

TEST(Sat, RestartsAreCounted) {
  SatSolver s;
  for (auto& cl : pigeonhole(7, 6)) s.addClause(cl);
  ASSERT_EQ(s.solve(), SatResult::Unsat);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(Sat, StatsDifferenceIsComponentWise) {
  SatStats a;
  a.decisions = 10;
  a.propagations = 20;
  a.conflicts = 5;
  a.learned = 4;
  a.restarts = 2;
  SatStats b = a;
  b.decisions = 25;
  b.conflicts = 9;
  const SatStats d = b - a;
  EXPECT_EQ(d.decisions, 15u);
  EXPECT_EQ(d.propagations, 0u);
  EXPECT_EQ(d.conflicts, 4u);
  EXPECT_EQ(d.learned, 0u);
  EXPECT_EQ(d.restarts, 0u);
}

TEST(Sat, ResultNames) {
  EXPECT_STREQ(satResultName(SatResult::Sat), "sat");
  EXPECT_STREQ(satResultName(SatResult::Unsat), "unsat");
  EXPECT_STREQ(satResultName(SatResult::Unknown), "unknown");
}

}  // namespace
}  // namespace tauhls::aig
