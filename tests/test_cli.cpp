#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "core/cli.hpp"

namespace tauhls::core {
namespace {

using dfg::ResourceClass;

TEST(CliParse, AllocationSpec) {
  sched::Allocation a = parseAllocationSpec("mult=2,add=1,sub=3");
  EXPECT_EQ(a.at(ResourceClass::Multiplier), 2);
  EXPECT_EQ(a.at(ResourceClass::Adder), 1);
  EXPECT_EQ(a.at(ResourceClass::Subtractor), 3);
  EXPECT_EQ(parseAllocationSpec("div=1,logic=2").at(ResourceClass::Divider), 1);
  EXPECT_THROW(parseAllocationSpec("mult=0"), Error);
  EXPECT_THROW(parseAllocationSpec("gpu=1"), Error);
  EXPECT_THROW(parseAllocationSpec("mult"), Error);
  EXPECT_THROW(parseAllocationSpec("mult=x"), Error);
}

TEST(CliParse, FullCommandLine) {
  std::string error;
  auto o = parseCli({"design.dfg", "--alloc", "mult=2,add=1", "--p", "0.9,0.5",
                     "--strategy", "clique", "--no-signal-opt", "--cent-fsm",
                     "--table1", "--no-table2", "--verilog", "out.v", "--kiss",
                     "pfx", "--dot", "g.dot"},
                    error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->inputPath, "design.dfg");
  EXPECT_EQ(o->allocation.at(ResourceClass::Multiplier), 2);
  EXPECT_EQ(o->ps, (std::vector<double>{0.9, 0.5}));
  EXPECT_EQ(o->strategy, sched::BindingStrategy::CliqueCover);
  EXPECT_FALSE(o->signalOpt);
  EXPECT_TRUE(o->centFsm);
  EXPECT_TRUE(o->table1);
  EXPECT_FALSE(o->table2);
  EXPECT_EQ(o->verilogPath, "out.v");
  EXPECT_EQ(o->kissPrefix, "pfx");
  EXPECT_EQ(o->dotPath, "g.dot");
}

TEST(CliParse, Defaults) {
  std::string error;
  auto o = parseCli({"x.dfg"}, error);
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->ps, (std::vector<double>{0.9, 0.7, 0.5}));
  EXPECT_EQ(o->strategy, sched::BindingStrategy::LeftEdge);
  EXPECT_TRUE(o->signalOpt);
  EXPECT_FALSE(o->table1);
  EXPECT_TRUE(o->table2);
  EXPECT_EQ(o->threads, 0);  // 0 = TAUHLS_THREADS / hardware default
}

TEST(CliParse, Threads) {
  std::string error;
  auto o = parseCli({"x.dfg", "--threads", "8"}, error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->threads, 8);
  EXPECT_FALSE(parseCli({"x.dfg", "--threads", "0"}, error).has_value());
  EXPECT_FALSE(parseCli({"x.dfg", "--threads", "-2"}, error).has_value());
  EXPECT_FALSE(parseCli({"x.dfg", "--threads", "lots"}, error).has_value());
  EXPECT_FALSE(parseCli({"x.dfg", "--threads"}, error).has_value());
}

TEST(CliParse, FlowSubcommandAndTraceJson) {
  std::string error;
  auto o = parseCli({"flow", "x.dfg", "--trace-json", "t.json"}, error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->inputPath, "x.dfg");
  EXPECT_EQ(o->traceJsonPath, "t.json");
  // First-position "flow" is always the subcommand, never an input path, so
  // on its own the design file is still missing.
  EXPECT_FALSE(parseCli({"flow"}, error).has_value());
  EXPECT_FALSE(parseCli({"x.dfg", "--trace-json"}, error).has_value());
}

TEST(CliParse, Errors) {
  std::string error;
  EXPECT_FALSE(parseCli({}, error).has_value());
  EXPECT_FALSE(parseCli({"--alloc"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--strategy", "magic"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--p", "abc"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "b.dfg"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--frobnicate"}, error).has_value());
}

TEST(CliParse, HelpShortCircuits) {
  std::string error;
  auto o = parseCli({"--help"}, error);
  ASSERT_TRUE(o.has_value());
  EXPECT_TRUE(o->showHelp);
  EXPECT_NE(cliHelp().find("--alloc"), std::string::npos);
}

class CliRun : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "cli_test.dfg";
    std::ofstream f(path_);
    f << "in a, b, c, d\n"
         "m1 = a * b\n"
         "m2 = c * d\n"
         "s1 = m1 + m2\n"
         "out s1\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CliRun, EndToEndReports) {
  CliOptions o;
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  o.table1 = true;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  EXPECT_NE(out.str().find("LT_DIST"), std::string::npos);
  EXPECT_NE(out.str().find("DIST-FSM"), std::string::npos);
  EXPECT_TRUE(err.str().empty());
}

TEST_F(CliRun, WritesTestbench) {
  CliOptions o;
  o.inputPath = path_;
  o.testbenchPath = ::testing::TempDir() + "cli_test_tb.v";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  std::ifstream tb(o.testbenchPath);
  ASSERT_TRUE(tb.good());
  std::stringstream content;
  content << tb.rdbuf();
  EXPECT_NE(content.str().find("module dcu_cli_test_tb;"), std::string::npos);
  EXPECT_NE(content.str().find("$finish"), std::string::npos);
  std::remove(o.testbenchPath.c_str());
}

TEST_F(CliRun, WritesArtifacts) {
  CliOptions o;
  o.inputPath = path_;
  o.verilogPath = ::testing::TempDir() + "cli_test.v";
  o.kissPrefix = ::testing::TempDir() + "cli_test";
  o.dotPath = ::testing::TempDir() + "cli_test.dot";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  std::ifstream v(o.verilogPath);
  EXPECT_TRUE(v.good());
  std::string firstLine;
  std::getline(v, firstLine);
  EXPECT_NE(firstLine.find("tauhls"), std::string::npos);
  std::ifstream d(o.dotPath);
  EXPECT_TRUE(d.good());
  std::ifstream k(o.kissPrefix + "_D_FSM_mult1.kiss2");
  EXPECT_TRUE(k.good());
  std::remove(o.verilogPath.c_str());
  std::remove(o.dotPath.c_str());
  std::remove((o.kissPrefix + "_D_FSM_mult1.kiss2").c_str());
  std::remove((o.kissPrefix + "_D_FSM_mult2.kiss2").c_str());
  std::remove((o.kissPrefix + "_D_FSM_adder1.kiss2").c_str());
}

TEST_F(CliRun, WritesJson) {
  CliOptions o;
  o.inputPath = path_;
  o.jsonPath = ::testing::TempDir() + "cli_test.json";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  std::ifstream j(o.jsonPath);
  ASSERT_TRUE(j.good());
  std::stringstream content;
  content << j.rdbuf();
  EXPECT_NE(content.str().find("\"design\":\"cli_test\""), std::string::npos);
  EXPECT_NE(content.str().find("\"latency\":"), std::string::npos);
  std::remove(o.jsonPath.c_str());
}

TEST_F(CliRun, WritesPipelineTrace) {
  CliOptions o;
  o.inputPath = path_;
  o.traceJsonPath = ::testing::TempDir() + "cli_test_trace.json";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  std::ifstream t(o.traceJsonPath);
  ASSERT_TRUE(t.good());
  std::stringstream content;
  content << t.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.str().find("\"schedule\""), std::string::npos);
  EXPECT_NE(content.str().find("\"cache\""), std::string::npos);
  EXPECT_NE(out.str().find("wrote pipeline trace"), std::string::npos);
  std::remove(o.traceJsonPath.c_str());
}

TEST_F(CliRun, MissingFileFails) {
  CliOptions o;
  o.inputPath = "/nonexistent/nowhere.dfg";
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 1);
  EXPECT_NE(err.str().find("cannot open"), std::string::npos);
}

TEST_F(CliRun, HelpMode) {
  CliOptions o;
  o.showHelp = true;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0);
  EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliParse, LintEquivAndTimingFlags) {
  std::string error;
  auto o = parseCli({"lint", "a.dfg", "--equiv", "--timing"}, error);
  ASSERT_TRUE(o.has_value());
  EXPECT_TRUE(o->lint);
  EXPECT_TRUE(o->lintEquiv);
  EXPECT_TRUE(o->lintTiming);
  // Outside the lint subcommand both flags are rejected.
  EXPECT_FALSE(parseCli({"a.dfg", "--equiv"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--timing"}, error).has_value());
  EXPECT_NE(cliHelp().find("--equiv"), std::string::npos);
  EXPECT_NE(cliHelp().find("--timing"), std::string::npos);
}

TEST_F(CliRun, LintEquivTimingEndToEnd) {
  CliOptions o;
  o.lint = true;
  o.lintEquiv = true;
  o.lintTiming = true;
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("EQV006"), std::string::npos);
  EXPECT_NE(out.str().find("TIM003"), std::string::npos);
  EXPECT_NE(out.str().find("SAT conflicts"), std::string::npos);
}

TEST_F(CliRun, LintJsonHasSchemaAndRuleCounts) {
  const std::string jsonPath = ::testing::TempDir() + "cli_lint.json";
  CliOptions o;
  o.lint = true;
  o.lintEquiv = true;
  o.lintTiming = true;
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  o.lintJsonPath = jsonPath;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0) << err.str();
  std::ifstream j(jsonPath);
  std::ostringstream buffer;
  buffer << j.rdbuf();
  const std::string json = buffer.str();
  std::remove(jsonPath.c_str());
  EXPECT_NE(json.find("\"schema\":\"tauhls-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"byRule\":"), std::string::npos);
  EXPECT_NE(json.find("\"EQV006\":"), std::string::npos);
  EXPECT_NE(json.find("\"satCost\":"), std::string::npos);
  EXPECT_NE(json.find("\"EQV001\":{\"queries\":"), std::string::npos);
  EXPECT_NE(json.find("\"TIM003\":"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":0"), std::string::npos);
  // Explicit mode never demands the symbolic pass: empty "symbolic" array.
  EXPECT_NE(json.find("\"symbolic\":[]"), std::string::npos);
}

TEST(CliParse, ModelCheckAndMaxStatesFlags) {
  std::string error;
  auto o = parseCli({"lint", "a.dfg", "--model-check", "symbolic"}, error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->modelCheck, ModelCheckMode::Symbolic);
  // The --model-check=VALUE spelling is equivalent.
  o = parseCli({"lint", "a.dfg", "--model-check=auto"}, error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->modelCheck, ModelCheckMode::Auto);
  o = parseCli({"a.dfg", "--model-check=explicit", "--max-states", "123"},
               error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->modelCheck, ModelCheckMode::Explicit);
  EXPECT_EQ(o->maxStates, 123u);
  // Default: explicit engine, subcommand-default state bound.
  o = parseCli({"a.dfg"}, error);
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->modelCheck, ModelCheckMode::Explicit);
  EXPECT_EQ(o->maxStates, 0u);
  EXPECT_FALSE(parseCli({"a.dfg", "--model-check", "magic"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--model-check=bdd"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--model-check"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--max-states", "0"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--max-states", "many"}, error).has_value());
  EXPECT_NE(cliHelp().find("--model-check"), std::string::npos);
  EXPECT_NE(cliHelp().find("--max-states"), std::string::npos);
}

TEST_F(CliRun, LintSymbolicEndToEnd) {
  const std::string jsonPath = ::testing::TempDir() + "cli_lint_sym.json";
  CliOptions o;
  o.lint = true;
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  o.modelCheck = ModelCheckMode::Symbolic;
  o.lintJsonPath = jsonPath;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("symbolic model check over"), std::string::npos);
  EXPECT_NE(out.str().find("5/5 proved"), std::string::npos);
  EXPECT_NE(out.str().find("MDL008"), std::string::npos);
  std::ifstream j(jsonPath);
  std::ostringstream buffer;
  buffer << j.rdbuf();
  const std::string json = buffer.str();
  std::remove(jsonPath.c_str());
  EXPECT_NE(json.find("\"version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"symbolic\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"PROVED\""), std::string::npos);
  EXPECT_NE(json.find("\"MDL008\":{"), std::string::npos);
}

TEST_F(CliRun, LintXpropEndToEnd) {
  const std::string jsonPath = ::testing::TempDir() + "cli_lint_xprop.json";
  CliOptions o;
  o.lint = true;
  o.lintXprop = true;
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  o.lintJsonPath = jsonPath;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0) << err.str();
  EXPECT_NE(out.str().find("x-safety over"), std::string::npos);
  EXPECT_NE(out.str().find("XPR004"), std::string::npos);
  std::ifstream j(jsonPath);
  std::ostringstream buffer;
  buffer << j.rdbuf();
  const std::string json = buffer.str();
  std::remove(jsonPath.c_str());
  EXPECT_NE(json.find("\"version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"xprop\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"XPR001\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"XPR002\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"DCS002\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"PROVED\""), std::string::npos);
  EXPECT_NE(json.find("\"skipped\":[]"), std::string::npos);
}

TEST_F(CliRun, LintOnlyFiltersAndReportsSkipped) {
  const std::string jsonPath = ::testing::TempDir() + "cli_lint_only.json";
  CliOptions o;
  o.lint = true;
  o.lintXprop = true;
  o.lintOnly = "XPR001";
  o.inputPath = path_;
  o.allocation = parseAllocationSpec("mult=2,add=1");
  o.lintJsonPath = jsonPath;
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_EQ(runCli(o, out, err), 0) << err.str();
  std::ifstream j(jsonPath);
  std::ostringstream buffer;
  buffer << j.rdbuf();
  const std::string json = buffer.str();
  std::remove(jsonPath.c_str());
  // The XPR004 summary (and everything else) was filtered, and the filter
  // says so instead of silently dropping the rows.
  EXPECT_EQ(json.find("\"code\":\"XPR004\""), std::string::npos);
  EXPECT_NE(json.find("\"XPR004\""), std::string::npos);  // in "skipped"
  EXPECT_NE(json.find("\"skipped\":["), std::string::npos);

  // Unknown codes are a hard CLI error, not an empty report.
  CliOptions bad = o;
  bad.lintOnly = "XPR999";
  std::ostringstream out2, err2;
  EXPECT_EQ(runCli(bad, out2, err2), 1);
  EXPECT_NE(err2.str().find("unknown rule code"), std::string::npos);
}

TEST(CliParse, XpropOnlyAndEncodingFlags) {
  std::string error;
  auto o = parseCli({"lint", "a.dfg", "--xprop", "--only", "XPR001,DCS001"},
                    error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_TRUE(o->lintXprop);
  EXPECT_EQ(o->lintOnly, "XPR001,DCS001");
  o = parseCli({"a.dfg", "--encoding", "onehot"}, error);
  ASSERT_TRUE(o.has_value()) << error;
  EXPECT_EQ(o->encoding, synth::EncodingStyle::OneHot);
  o = parseCli({"a.dfg"}, error);
  ASSERT_TRUE(o.has_value());
  EXPECT_EQ(o->encoding, synth::EncodingStyle::Binary);
  // --xprop and --only are lint-only; bad encodings are rejected.
  EXPECT_FALSE(parseCli({"a.dfg", "--xprop"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--only", "XPR001"}, error).has_value());
  EXPECT_FALSE(parseCli({"a.dfg", "--encoding", "gray"}, error).has_value());
  EXPECT_NE(cliHelp().find("--xprop"), std::string::npos);
  EXPECT_NE(cliHelp().find("--only"), std::string::npos);
  EXPECT_NE(cliHelp().find("--encoding"), std::string::npos);
}

}  // namespace
}  // namespace tauhls::core
