// And-Inverter Graph and combinational equivalence checker tests
// (aig/aig.hpp, aig/cec.hpp): structural hashing, rewriting, evaluation,
// and SAT-backed miter proofs.
#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "aig/cec.hpp"

namespace tauhls::aig {
namespace {

TEST(Aig, ConstantsAndNegation) {
  EXPECT_EQ(negate(kLitFalse), kLitTrue);
  EXPECT_EQ(negate(kLitTrue), kLitFalse);
  EXPECT_EQ(nodeOf(kLitTrue), 0u);
  EXPECT_TRUE(isNegated(kLitTrue));
}

TEST(Aig, ConstantIdentityRewrites) {
  Aig g;
  const Lit a = g.addInput("a");
  EXPECT_EQ(g.andLit(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.andLit(kLitFalse, a), kLitFalse);
  EXPECT_EQ(g.andLit(a, kLitTrue), a);
  EXPECT_EQ(g.andLit(a, a), a);
  EXPECT_EQ(g.andLit(a, negate(a)), kLitFalse);
  EXPECT_EQ(g.orLit(a, kLitTrue), kLitTrue);
  EXPECT_EQ(g.orLit(a, kLitFalse), a);
  EXPECT_EQ(g.xorLit(a, kLitFalse), a);
  EXPECT_EQ(g.xorLit(a, kLitTrue), negate(a));
  EXPECT_EQ(g.xorLit(a, a), kLitFalse);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit ab = g.andLit(a, b);
  // Commutative reorder and a verbatim repeat both hit the same node.
  EXPECT_EQ(g.andLit(b, a), ab);
  EXPECT_EQ(g.andLit(a, b), ab);
  const std::size_t before = g.numNodes();
  (void)g.andLit(b, a);
  EXPECT_EQ(g.numNodes(), before);
}

TEST(Aig, FindInput) {
  Aig g;
  const Lit a = g.addInput("a");
  EXPECT_EQ(g.findInput("a"), a);
  EXPECT_EQ(g.findInput("missing"), kLitFalse);
}

TEST(Aig, EvaluateTruthTables) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit s = g.addInput("s");
  const Lit andAb = g.andLit(a, b);
  const Lit xorAb = g.xorLit(a, b);
  const Lit mux = g.muxLit(s, a, b);
  for (int mask = 0; mask < 8; ++mask) {
    const bool va = mask & 1, vb = mask & 2, vs = mask & 4;
    const std::vector<bool> in = {va, vb, vs};
    EXPECT_EQ(g.evaluate(andAb, in), va && vb);
    EXPECT_EQ(g.evaluate(xorAb, in), va != vb);
    EXPECT_EQ(g.evaluate(mux, in), vs ? va : vb);
    EXPECT_EQ(g.evaluate(negate(andAb), in), !(va && vb));
  }
}

TEST(Aig, AndNOrNEmptyAndWide) {
  Aig g;
  EXPECT_EQ(g.andN({}), kLitTrue);
  EXPECT_EQ(g.orN({}), kLitFalse);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(g.addInput("i" + std::to_string(i)));
  const Lit conj = g.andN(lits);
  const Lit disj = g.orN(lits);
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back((mask >> i) & 1);
    EXPECT_EQ(g.evaluate(conj, in), mask == 31);
    EXPECT_EQ(g.evaluate(disj, in), mask != 0);
  }
}

TEST(Aig, EqVec) {
  Aig g;
  const Lit a0 = g.addInput("a0");
  const Lit a1 = g.addInput("a1");
  const Lit b0 = g.addInput("b0");
  const Lit b1 = g.addInput("b1");
  EXPECT_EQ(g.eqVec({}, {}), kLitTrue);
  const Lit eq = g.eqVec({a0, a1}, {b0, b1});
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((mask >> i) & 1);
    EXPECT_EQ(g.evaluate(eq, in), in[0] == in[2] && in[1] == in[3]);
  }
}

TEST(Aig, Support) {
  Aig g;
  const Lit a = g.addInput("a");
  (void)g.addInput("b");
  const Lit c = g.addInput("c");
  const Lit f = g.andLit(a, negate(c));
  EXPECT_EQ(g.support(f), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(g.support(kLitTrue).empty());
}

TEST(Cec, TriviallyEqualByHashing) {
  // Two syntactically different constructions of the same cone collapse to
  // the same literal, so the proof never reaches the SAT solver.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.orLit(a, b);
  const Lit f2 = negate(g.andLit(negate(b), negate(a)));
  EXPECT_EQ(f1, f2);
  const CecResult r = proveEquivalent(g, f1, f2);
  EXPECT_TRUE(r.equivalent());
  EXPECT_EQ(r.stats.conflicts, 0u);
}

TEST(Cec, ProvesDeMorganViaSat) {
  // !(a & b) == !a | !b, built through xor/mux detours so hashing alone
  // cannot discharge it.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit lhs = negate(g.andLit(a, b));
  const Lit rhs = g.muxLit(a, negate(b), kLitTrue);
  const CecResult r = proveEquivalent(g, lhs, rhs);
  EXPECT_TRUE(r.equivalent());
}

TEST(Cec, CounterexampleOnInequivalence) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.andLit(a, b);
  const Lit f2 = g.orLit(a, b);
  const CecResult r = proveEquivalent(g, f1, f2);
  EXPECT_EQ(r.status, SatResult::Sat);
  EXPECT_FALSE(r.equivalent());
  ASSERT_FALSE(r.counterexample.empty());
  // The witness must actually separate the two functions.
  std::vector<bool> in(g.numInputs(), false);
  for (const auto& [name, value] : r.counterexample) {
    in[g.inputIndexOf(nodeOf(g.findInput(name)))] = value;
  }
  EXPECT_NE(g.evaluate(f1, in), g.evaluate(f2, in));
}

TEST(Cec, ConstraintMasksDontCares) {
  // a^b and a|b differ only at a=b=1; under the constraint !(a&b) they are
  // equivalent -- exactly how unused state codes become don't-cares.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.xorLit(a, b);
  const Lit f2 = g.orLit(a, b);
  EXPECT_FALSE(proveEquivalent(g, f1, f2).equivalent());
  const Lit constraint = negate(g.andLit(a, b));
  EXPECT_TRUE(proveEquivalent(g, f1, f2, constraint).equivalent());
}

TEST(Cec, WideEquivalenceBeyondTruthTableReach) {
  // 24-input parity two ways: left fold and balanced tree.  2^24 rows is
  // far beyond enumeration; the SAT proof is instant.
  Aig g;
  std::vector<Lit> in;
  for (int i = 0; i < 24; ++i) in.push_back(g.addInput("x" + std::to_string(i)));
  Lit fold = kLitFalse;
  for (const Lit l : in) fold = g.xorLit(fold, l);
  std::vector<Lit> layer = in;
  while (layer.size() > 1) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(g.xorLit(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  EXPECT_TRUE(proveEquivalent(g, fold, layer[0]).equivalent());
}

TEST(Cec, CheckSatisfiable) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  EXPECT_EQ(checkSatisfiable(g, g.andLit(a, negate(a))).status,
            SatResult::Unsat);
  const CecResult r = checkSatisfiable(g, g.andLit(a, b));
  EXPECT_EQ(r.status, SatResult::Sat);
  std::vector<bool> in(g.numInputs(), false);
  for (const auto& [name, value] : r.counterexample) {
    in[g.inputIndexOf(nodeOf(g.findInput(name)))] = value;
  }
  EXPECT_TRUE(g.evaluate(g.andLit(a, b), in));
}

}  // namespace
}  // namespace tauhls::aig
