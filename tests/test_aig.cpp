// And-Inverter Graph and combinational equivalence checker tests
// (aig/aig.hpp, aig/cec.hpp): structural hashing, rewriting, evaluation,
// and SAT-backed miter proofs.
#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "aig/bitsim.hpp"
#include "aig/cec.hpp"

namespace tauhls::aig {
namespace {

TEST(Aig, ConstantsAndNegation) {
  EXPECT_EQ(negate(kLitFalse), kLitTrue);
  EXPECT_EQ(negate(kLitTrue), kLitFalse);
  EXPECT_EQ(nodeOf(kLitTrue), 0u);
  EXPECT_TRUE(isNegated(kLitTrue));
}

TEST(Aig, ConstantIdentityRewrites) {
  Aig g;
  const Lit a = g.addInput("a");
  EXPECT_EQ(g.andLit(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.andLit(kLitFalse, a), kLitFalse);
  EXPECT_EQ(g.andLit(a, kLitTrue), a);
  EXPECT_EQ(g.andLit(a, a), a);
  EXPECT_EQ(g.andLit(a, negate(a)), kLitFalse);
  EXPECT_EQ(g.orLit(a, kLitTrue), kLitTrue);
  EXPECT_EQ(g.orLit(a, kLitFalse), a);
  EXPECT_EQ(g.xorLit(a, kLitFalse), a);
  EXPECT_EQ(g.xorLit(a, kLitTrue), negate(a));
  EXPECT_EQ(g.xorLit(a, a), kLitFalse);
}

TEST(Aig, StructuralHashingSharesNodes) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit ab = g.andLit(a, b);
  // Commutative reorder and a verbatim repeat both hit the same node.
  EXPECT_EQ(g.andLit(b, a), ab);
  EXPECT_EQ(g.andLit(a, b), ab);
  const std::size_t before = g.numNodes();
  (void)g.andLit(b, a);
  EXPECT_EQ(g.numNodes(), before);
}

TEST(Aig, FindInput) {
  Aig g;
  const Lit a = g.addInput("a");
  EXPECT_EQ(g.findInput("a"), a);
  EXPECT_EQ(g.findInput("missing"), kLitFalse);
}

TEST(Aig, EvaluateTruthTables) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit s = g.addInput("s");
  const Lit andAb = g.andLit(a, b);
  const Lit xorAb = g.xorLit(a, b);
  const Lit mux = g.muxLit(s, a, b);
  for (int mask = 0; mask < 8; ++mask) {
    const bool va = mask & 1, vb = mask & 2, vs = mask & 4;
    const std::vector<bool> in = {va, vb, vs};
    EXPECT_EQ(g.evaluate(andAb, in), va && vb);
    EXPECT_EQ(g.evaluate(xorAb, in), va != vb);
    EXPECT_EQ(g.evaluate(mux, in), vs ? va : vb);
    EXPECT_EQ(g.evaluate(negate(andAb), in), !(va && vb));
  }
}

TEST(Aig, AndNOrNEmptyAndWide) {
  Aig g;
  EXPECT_EQ(g.andN({}), kLitTrue);
  EXPECT_EQ(g.orN({}), kLitFalse);
  std::vector<Lit> lits;
  for (int i = 0; i < 5; ++i) lits.push_back(g.addInput("i" + std::to_string(i)));
  const Lit conj = g.andN(lits);
  const Lit disj = g.orN(lits);
  for (int mask = 0; mask < 32; ++mask) {
    std::vector<bool> in;
    for (int i = 0; i < 5; ++i) in.push_back((mask >> i) & 1);
    EXPECT_EQ(g.evaluate(conj, in), mask == 31);
    EXPECT_EQ(g.evaluate(disj, in), mask != 0);
  }
}

TEST(Aig, EqVec) {
  Aig g;
  const Lit a0 = g.addInput("a0");
  const Lit a1 = g.addInput("a1");
  const Lit b0 = g.addInput("b0");
  const Lit b1 = g.addInput("b1");
  EXPECT_EQ(g.eqVec({}, {}), kLitTrue);
  const Lit eq = g.eqVec({a0, a1}, {b0, b1});
  for (int mask = 0; mask < 16; ++mask) {
    std::vector<bool> in;
    for (int i = 0; i < 4; ++i) in.push_back((mask >> i) & 1);
    EXPECT_EQ(g.evaluate(eq, in), in[0] == in[2] && in[1] == in[3]);
  }
}

TEST(Aig, Support) {
  Aig g;
  const Lit a = g.addInput("a");
  (void)g.addInput("b");
  const Lit c = g.addInput("c");
  const Lit f = g.andLit(a, negate(c));
  EXPECT_EQ(g.support(f), (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(g.support(kLitTrue).empty());
}

TEST(Cec, TriviallyEqualByHashing) {
  // Two syntactically different constructions of the same cone collapse to
  // the same literal, so the proof never reaches the SAT solver.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.orLit(a, b);
  const Lit f2 = negate(g.andLit(negate(b), negate(a)));
  EXPECT_EQ(f1, f2);
  const CecResult r = proveEquivalent(g, f1, f2);
  EXPECT_TRUE(r.equivalent());
  EXPECT_EQ(r.stats.conflicts, 0u);
}

TEST(Cec, ProvesDeMorganViaSat) {
  // !(a & b) == !a | !b, built through xor/mux detours so hashing alone
  // cannot discharge it.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit lhs = negate(g.andLit(a, b));
  const Lit rhs = g.muxLit(a, negate(b), kLitTrue);
  const CecResult r = proveEquivalent(g, lhs, rhs);
  EXPECT_TRUE(r.equivalent());
}

TEST(Cec, CounterexampleOnInequivalence) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.andLit(a, b);
  const Lit f2 = g.orLit(a, b);
  const CecResult r = proveEquivalent(g, f1, f2);
  EXPECT_EQ(r.status, SatResult::Sat);
  EXPECT_FALSE(r.equivalent());
  ASSERT_FALSE(r.counterexample.empty());
  // The witness must actually separate the two functions.
  std::vector<bool> in(g.numInputs(), false);
  for (const auto& [name, value] : r.counterexample) {
    in[g.inputIndexOf(nodeOf(g.findInput(name)))] = value;
  }
  EXPECT_NE(g.evaluate(f1, in), g.evaluate(f2, in));
}

TEST(Cec, ConstraintMasksDontCares) {
  // a^b and a|b differ only at a=b=1; under the constraint !(a&b) they are
  // equivalent -- exactly how unused state codes become don't-cares.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit f1 = g.xorLit(a, b);
  const Lit f2 = g.orLit(a, b);
  EXPECT_FALSE(proveEquivalent(g, f1, f2).equivalent());
  const Lit constraint = negate(g.andLit(a, b));
  EXPECT_TRUE(proveEquivalent(g, f1, f2, constraint).equivalent());
}

TEST(Cec, WideEquivalenceBeyondTruthTableReach) {
  // 24-input parity two ways: left fold and balanced tree.  2^24 rows is
  // far beyond enumeration; the SAT proof is instant.
  Aig g;
  std::vector<Lit> in;
  for (int i = 0; i < 24; ++i) in.push_back(g.addInput("x" + std::to_string(i)));
  Lit fold = kLitFalse;
  for (const Lit l : in) fold = g.xorLit(fold, l);
  std::vector<Lit> layer = in;
  while (layer.size() > 1) {
    std::vector<Lit> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(g.xorLit(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  EXPECT_TRUE(proveEquivalent(g, fold, layer[0]).equivalent());
}

TEST(Cec, CheckSatisfiable) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  EXPECT_EQ(checkSatisfiable(g, g.andLit(a, negate(a))).status,
            SatResult::Unsat);
  const CecResult r = checkSatisfiable(g, g.andLit(a, b));
  EXPECT_EQ(r.status, SatResult::Sat);
  std::vector<bool> in(g.numInputs(), false);
  for (const auto& [name, value] : r.counterexample) {
    in[g.inputIndexOf(nodeOf(g.findInput(name)))] = value;
  }
  EXPECT_TRUE(g.evaluate(g.andLit(a, b), in));
}

/// A pool of random combinational functions over shared inputs, built with a
/// tiny deterministic LCG so the structural mix is reproducible.
std::vector<Lit> randomLitPool(Aig& g, int numInputs, int numOps,
                               std::uint64_t seed) {
  std::vector<Lit> pool;
  for (int i = 0; i < numInputs; ++i) {
    pool.push_back(g.addInput("x" + std::to_string(i)));
  }
  auto next = [&seed] {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int i = 0; i < numOps; ++i) {
    Lit a = pool[next() % pool.size()];
    Lit b = pool[next() % pool.size()];
    if (next() & 1) a = negate(a);
    if (next() & 1) b = negate(b);
    switch (next() % 3) {
      case 0: pool.push_back(g.andLit(a, b)); break;
      case 1: pool.push_back(g.orLit(a, b)); break;
      default: pool.push_back(g.xorLit(a, b)); break;
    }
  }
  return pool;
}

TEST(BitSim, MismatchImpliesSatAndAgreementImpliesNoEasyCex) {
  // On random function pairs: whenever 64-pattern simulation separates the
  // pair, SAT must confirm the inequivalence, and the reported simulated
  // pattern must actually evaluate the two functions differently.
  Aig g;
  const std::vector<Lit> pool = randomLitPool(g, 6, 60, 0x1234u);
  BitSimulator sim(g);
  sim.addRandomWords(4);
  int mismatches = 0;
  for (std::size_t i = 0; i + 7 < pool.size(); i += 7) {
    const Lit a = pool[i];
    const Lit b = pool[i + 3];
    const auto mm = sim.findMismatch(a, b, kLitTrue);
    const CecResult r = proveEquivalent(g, a, b);
    if (mm) {
      ++mismatches;
      ASSERT_EQ(r.status, SatResult::Sat);
      std::vector<bool> inputs(g.numInputs());
      for (std::size_t in = 0; in < g.numInputs(); ++in) {
        inputs[in] = sim.inputBit(in, mm->word, mm->bit);
      }
      EXPECT_NE(g.evaluate(a, inputs), g.evaluate(b, inputs));
    }
  }
  EXPECT_GT(mismatches, 0);
}

TEST(BitSim, EquivalentFunctionsShareSignatures) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  const Lit c = g.addInput("c");
  const Lit lhs = g.orLit(g.andLit(a, b), g.andLit(a, c));
  const Lit rhs = g.andLit(a, g.orLit(b, c));
  BitSimulator sim(g);
  sim.addRandomWords(4);
  EXPECT_EQ(sim.signature(lhs, kLitTrue), sim.signature(rhs, kLitTrue));
  EXPECT_FALSE(sim.findMismatch(lhs, rhs, kLitTrue).has_value());
  // A genuinely different function separates within the random words.
  EXPECT_TRUE(sim.findMismatch(lhs, g.orLit(b, c), kLitTrue).has_value());
}

TEST(BitSim, PatternWordPinsTheModelInBitZero) {
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  BitSimulator sim(g);
  sim.addPatternWord({{0, true}, {1, false}});
  const std::size_t w = sim.numWords() - 1;
  EXPECT_TRUE(sim.inputBit(0, w, 0));
  EXPECT_FALSE(sim.inputBit(1, w, 0));
  // The pinned pattern a=1,b=0 separates a from a&b at bit 0 of that word.
  const auto mm = sim.findMismatch(a, g.andLit(a, b), kLitTrue);
  ASSERT_TRUE(mm.has_value());
}

TEST(BitSim, LazySimulationCoversNodesAddedAfterTheWords) {
  // Words added before the graph grew must simulate new cones on demand,
  // with the same input patterns they would have received up front.
  Aig g;
  const Lit a = g.addInput("a");
  BitSimulator early(g);
  early.addRandomWords(2);
  const Lit b = g.addInput("b");
  const Lit f = g.xorLit(a, b);
  BitSimulator late(g);
  late.addRandomWords(2);
  EXPECT_EQ(early.signature(f, kLitTrue), late.signature(f, kLitTrue));
}

TEST(IncrementalCec, VerdictsMatchFreshSolverOnRandomPairs) {
  // The shared-solver prover and a fresh proveEquivalent call must agree on
  // every verdict of a long query stream over one graph.
  Aig g;
  const std::vector<Lit> pool = randomLitPool(g, 6, 80, 0xfeedu);
  IncrementalCec inc(g);
  int sat = 0;
  int unsat = 0;
  for (std::size_t i = 0; i + 5 < pool.size(); i += 5) {
    const Lit a = pool[i];
    const Lit b = pool[i + 2];
    const CecResult fresh = proveEquivalent(g, a, b);
    const CecResult shared = inc.prove(a, b);
    ASSERT_EQ(shared.status, fresh.status) << "query " << i;
    if (shared.status == SatResult::Sat) {
      ++sat;
      // The incremental counterexample must genuinely separate the pair.
      std::vector<bool> inputs(g.numInputs(), false);
      for (const auto& [name, value] : shared.counterexample) {
        inputs[g.inputIndexOf(nodeOf(g.findInput(name)))] = value;
      }
      EXPECT_NE(g.evaluate(a, inputs), g.evaluate(b, inputs)) << "query " << i;
    } else {
      ++unsat;
    }
  }
  EXPECT_GT(sat, 0);
  EXPECT_GT(inc.totalStats().propagations, 0u);
}

TEST(IncrementalCec, ConstraintScopesEachQueryIndependently) {
  // Queries with different constraints must not leak into each other: the
  // same pair proves equivalent under the constraint and inequivalent
  // without it, in both orders.
  Aig g;
  const Lit a = g.addInput("a");
  const Lit b = g.addInput("b");
  IncrementalCec inc(g);
  const Lit lhs = g.orLit(a, b);
  const Lit rhs = g.xorLit(a, b);
  const Lit notBoth = negate(g.andLit(a, b));
  EXPECT_EQ(inc.prove(lhs, rhs, notBoth).status, SatResult::Unsat);
  EXPECT_EQ(inc.prove(lhs, rhs).status, SatResult::Sat);
  EXPECT_EQ(inc.prove(lhs, rhs, notBoth).status, SatResult::Unsat);
  EXPECT_EQ(inc.prove(lhs, lhs).status, SatResult::Unsat);
}

}  // namespace
}  // namespace tauhls::aig
