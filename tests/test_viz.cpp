// FSM DOT export and the text Gantt renderer.
#include <gtest/gtest.h>

#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/dot.hpp"
#include "sim/gantt.hpp"
#include "testutil.hpp"

namespace tauhls {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

TEST(FsmDot, RendersStatesAndGuards) {
  auto s = sched::scheduleAndBind(
      dfg::paperFig2(),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f = dcu.controllers[0].fsm;
  std::string dot = fsm::toDot(f);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // initial state
  for (std::size_t st = 0; st < f.numStates(); ++st) {
    EXPECT_NE(dot.find("\"" + f.stateName(static_cast<int>(st)) + "\""),
              std::string::npos);
  }
  // Guard labels appear.
  EXPECT_NE(dot.find(" / "), std::string::npos);
}

TEST(Gantt, DiamondLayout) {
  dfg::Dfg g = test::diamond();
  auto s = sched::scheduleAndBind(
      g,
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  std::string chart = sim::renderGantt(s, sim::allShort(s));
  // One header + three unit rows.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 4);
  EXPECT_NE(chart.find("mult1"), std::string::npos);
  EXPECT_NE(chart.find("adder1"), std::string::npos);
  EXPECT_NE(chart.find("m1"), std::string::npos);
  EXPECT_NE(chart.find("s"), std::string::npos);
}

TEST(Gantt, LdCyclesMarked) {
  dfg::Dfg g = test::parallelMuls(1);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 1}},
                                  tau::paperLibrary());
  std::string slow = sim::renderGantt(s, sim::allLong(s));
  EXPECT_NE(slow.find("+m0"), std::string::npos);  // second LD cycle marked
  std::string fast = sim::renderGantt(s, sim::allShort(s));
  EXPECT_EQ(fast.find("+m0"), std::string::npos);
}

TEST(Gantt, WidthMatchesMakespan) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  for (auto classes : {sim::allShort(s), sim::allLong(s)}) {
    std::string chart = sim::renderGantt(s, classes);
    const int cycles = sim::distributedMakespanCycles(s, classes);
    // Header row lists exactly `cycles` column indices.
    std::istringstream in(chart);
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find(std::to_string(cycles - 1)), std::string::npos);
    EXPECT_EQ(header.find(std::to_string(cycles) + " "), std::string::npos);
  }
}

}  // namespace
}  // namespace tauhls
