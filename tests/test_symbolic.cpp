// Tests for the symbolic model checker (verify/symbolic_check.hpp) and the
// sequential unrolling machinery it is built on (aig/unroll.hpp).
//
// Three families:
//   - unroller: BMC and k-induction on tiny hand-built sequential circuits;
//   - engine agreement: on every paper benchmark under both binding
//     strategies the symbolic and explicit engines report the same MDL
//     verdict set (both clean), and every safety property closes by
//     k-induction with a PROVED verdict;
//   - mutations: rewired completion waits produce BMC counterexamples with
//     decodable per-cycle waveforms, matching the explicit engine's codes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/sat.hpp"
#include "aig/unroll.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/guard.hpp"
#include "fsm/signal_opt.hpp"
#include "sched/scheduled_dfg.hpp"
#include "tau/library.hpp"
#include "verify/diagnostic.hpp"
#include "verify/model_check.hpp"
#include "verify/symbolic_check.hpp"

namespace tauhls::verify {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

sched::ScheduledDfg fig2Scheduled() {
  return sched::scheduleAndBind(dfg::paperFig2(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1}},
                                tau::paperLibrary());
}

fsm::Guard renameInGuard(const fsm::Guard& g, const std::string& from,
                         const std::string& to) {
  fsm::Guard out = fsm::Guard::never();
  for (const fsm::GuardTerm& term : g.terms()) {
    fsm::Guard product = fsm::Guard::always();
    for (const auto& [sig, positive] : term.literals) {
      product = product.conjoin(
          fsm::Guard::literal(sig == from ? to : sig, positive));
    }
    out = out.disjoin(product);
  }
  return out;
}

fsm::Fsm renameFsmInput(const fsm::Fsm& src, const std::string& from,
                        const std::string& to) {
  fsm::Fsm out(src.name());
  for (std::size_t s = 0; s < src.numStates(); ++s) {
    out.addState(src.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : src.inputs()) {
    out.addInput(in == from ? to : in);
  }
  for (const std::string& o : src.outputs()) out.addOutput(o);
  for (const fsm::Transition& t : src.transitions()) {
    out.addTransition(t.from, t.to, renameInGuard(t.guard, from, to),
                      t.outputs);
  }
  out.setInitial(src.initial());
  return out;
}

void rewireWait(fsm::DistributedControlUnit& dcu, std::size_t idx,
                const std::string& from, const std::string& to) {
  fsm::UnitController& ctl = dcu.controllers[idx];
  ctl.fsm = renameFsmInput(ctl.fsm, from, to);
  for (std::string& sig : ctl.latchedInputs) {
    if (sig == from) sig = to;
  }
  std::sort(ctl.latchedInputs.begin(), ctl.latchedInputs.end());
  ctl.latchedInputs.erase(
      std::unique(ctl.latchedInputs.begin(), ctl.latchedInputs.end()),
      ctl.latchedInputs.end());
}

int consumerOf(const fsm::DistributedControlUnit& dcu,
               const std::string& signal) {
  for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
    const auto& latched = dcu.controllers[i].latchedInputs;
    if (std::find(latched.begin(), latched.end(), signal) != latched.end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Error/warning rule codes of a report (the verdict set both engines must
/// agree on; MDL007 is excluded -- it only marks the explicit engine giving
/// up, which is exactly what the symbolic engine retires).
std::set<std::string> verdictCodes(const Report& r) {
  std::set<std::string> out;
  for (const Diagnostic& d : r.diagnostics()) {
    if (d.severity == Severity::Info) continue;
    if (d.code == "MDL007") continue;
    out.insert(d.code);
  }
  return out;
}

const SymbolicProperty& propertyOf(const SymbolicArtifact& a,
                                   const std::string& rule) {
  for (const SymbolicProperty& p : a.stats.properties) {
    if (p.rule == rule) return p;
  }
  ADD_FAILURE() << "no property " << rule;
  static SymbolicProperty none;
  return none;
}

// ---- unroller -------------------------------------------------------------

TEST(Unroller, BmcReachesCounterTarget) {
  // 2-bit counter from 00: next0 = !b0, next1 = b0 ^ b1.  The state 11 is
  // reachable exactly at frame 3.
  aig::Aig g;
  const aig::Lit b0 = g.addInput("b0");
  const aig::Lit b1 = g.addInput("b1");
  aig::SeqModel m;
  m.vars.push_back(aig::SeqVar{"b0", b0, aig::negate(b0), false});
  m.vars.push_back(aig::SeqVar{"b1", b1, g.xorLit(b0, b1), false});
  const aig::Lit bad = g.andLit(b0, b1);

  aig::SatSolver solver;
  aig::CnfEncoder enc(g, solver);
  aig::Unroller bmc(g, m, "b", /*initFrame0=*/true);
  for (int depth = 0; depth < 3; ++depth) {
    const int lit = enc.encode(bmc.at(depth, bad));
    EXPECT_EQ(solver.solve(std::vector<int>{lit}), aig::SatResult::Unsat)
        << "depth " << depth;
    solver.addClause({-lit});
  }
  const int lit = enc.encode(bmc.at(3, bad));
  EXPECT_EQ(solver.solve(std::vector<int>{lit}), aig::SatResult::Sat);
}

TEST(Unroller, InductionClosesStuckAtZero) {
  // A register holding its value, initialised 0: "never 1" is 1-inductive.
  aig::Aig g;
  const aig::Lit b = g.addInput("b");
  aig::SeqModel m;
  m.vars.push_back(aig::SeqVar{"b", b, b, false});

  aig::SatSolver solver;
  aig::CnfEncoder enc(g, solver);
  aig::Unroller bmc(g, m, "b", /*initFrame0=*/true);
  aig::Unroller ind(g, m, "i", /*initFrame0=*/false);

  const int base = enc.encode(bmc.at(0, b));
  EXPECT_EQ(solver.solve(std::vector<int>{base}), aig::SatResult::Unsat);

  // Induction step: !b @ frame0, b @ frame1 -- unsatisfiable since next = cur.
  const std::vector<int> step = {-enc.encode(ind.at(0, b)),
                                 enc.encode(ind.at(1, b))};
  EXPECT_EQ(solver.solve(step), aig::SatResult::Unsat);

  // The free frame 0 really is free: b @ frame0 alone is satisfiable.
  EXPECT_EQ(solver.solve(std::vector<int>{enc.encode(ind.at(0, b))}),
            aig::SatResult::Sat);
}

// ---- engine agreement on clean designs ------------------------------------

TEST(SymbolicClean, AllPaperBenchmarksBothStrategies) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (const sched::BindingStrategy strategy :
         {sched::BindingStrategy::LeftEdge,
          sched::BindingStrategy::CliqueCover}) {
      const sched::ScheduledDfg s = sched::scheduleAndBind(
          b.graph, b.allocation, tau::paperLibrary(), strategy);
      const fsm::DistributedControlUnit dcu =
          fsm::optimizeSignals(fsm::buildDistributed(s));
      const fsm::Fsm cent = fsm::buildCentSync(s);

      Report explicitReport;
      modelCheckControllers(dcu, s, cent, explicitReport);
      const SymbolicArtifact sym = symbolicModelCheck(dcu, s, &cent);

      const std::string label =
          b.name + " strategy " + std::to_string(static_cast<int>(strategy));
      EXPECT_EQ(verdictCodes(explicitReport), verdictCodes(sym.report))
          << label << "\nexplicit:\n"
          << renderText(explicitReport) << "symbolic:\n"
          << renderText(sym.report);
      EXPECT_FALSE(sym.report.hasErrors())
          << label << ":\n" << renderText(sym.report);
      EXPECT_TRUE(sym.stats.invariantHolds) << label;
      EXPECT_TRUE(sym.report.has("MDL008")) << label;
      ASSERT_EQ(sym.stats.properties.size(), 5u) << label;
      for (const SymbolicProperty& p : sym.stats.properties) {
        EXPECT_EQ(p.verdict, PropertyVerdict::Proved)
            << label << " " << p.rule << " "
            << propertyVerdictName(p.verdict) << " depth " << p.depthReached;
        EXPECT_GE(p.inductionK, 1) << label << " " << p.rule;
      }
    }
  }
}

TEST(SymbolicClean, Fig2StatsAreFilled) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const SymbolicArtifact sym = symbolicModelCheck(dcu, s, nullptr);

  EXPECT_EQ(sym.stats.artifact, "product " + s.graph.name());
  EXPECT_EQ(sym.stats.controllers, dcu.controllers.size());
  EXPECT_GT(sym.stats.stateBits, 0u);
  EXPECT_GT(sym.stats.templateNodes, 0u);

  // The proof did real SAT work and it is attributed per rule.
  const auto cost = sym.stats.ruleCost();
  ASSERT_TRUE(cost.contains("MDL001"));
  EXPECT_GT(cost.at("MDL001").queries, 0u);
  ASSERT_TRUE(cost.contains("MDL008"));
  EXPECT_GT(cost.at("MDL008").queries, 0u);

  // Flattened JSON rows mirror the properties.
  const auto rows = sym.stats.jsonStats();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].rule, "MDL001");
  EXPECT_EQ(rows[0].artifact, sym.stats.artifact);
  EXPECT_EQ(rows[0].verdict, std::string("PROVED"));
}

// ---- mutations produce decodable counterexamples --------------------------

TEST(SymbolicMutation, CircularWaitIsMDL002Cex) {
  const sched::ScheduledDfg s = fig2Scheduled();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const int adder = consumerOf(dcu, "CCO_O0");
  ASSERT_GE(adder, 0);
  rewireWait(dcu, static_cast<std::size_t>(adder), "CCO_O0", "CCO_O2");

  const SymbolicArtifact sym = symbolicModelCheck(dcu, s, nullptr);
  EXPECT_TRUE(sym.report.has("MDL002")) << renderText(sym.report);
  EXPECT_EQ(propertyOf(sym, "MDL002").verdict,
            PropertyVerdict::Counterexample);
  const Diagnostic d = sym.report.withCode("MDL002").front();
  EXPECT_NE(d.message.find("BMC counterexample"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("cycle 0:"), std::string::npos) << d.message;

  Report explicitReport;
  modelCheckDistributed(dcu, s, explicitReport);
  EXPECT_EQ(verdictCodes(explicitReport), verdictCodes(sym.report))
      << "explicit:\n" << renderText(explicitReport) << "symbolic:\n"
      << renderText(sym.report);
}

TEST(SymbolicMutation, DroppedPredecessorWaitIsMDL004Cex) {
  const sched::ScheduledDfg s = fig2Scheduled();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const int adder = consumerOf(dcu, "CCO_O0");
  ASSERT_GE(adder, 0);
  rewireWait(dcu, static_cast<std::size_t>(adder), "CCO_O0", "CCO_O3");

  const SymbolicArtifact sym = symbolicModelCheck(dcu, s, nullptr);
  EXPECT_TRUE(sym.report.has("MDL004")) << renderText(sym.report);
  EXPECT_FALSE(sym.report.has("MDL002")) << renderText(sym.report);
  const SymbolicProperty& p = propertyOf(sym, "MDL004");
  EXPECT_EQ(p.verdict, PropertyVerdict::Counterexample);
  EXPECT_GE(p.cexLength, 1);
  const Diagnostic d = sym.report.withCode("MDL004").front();
  EXPECT_EQ(d.where, "O1") << d.where;
  EXPECT_NE(d.message.find("data predecessor O0"), std::string::npos)
      << d.message;
  EXPECT_NE(d.message.find("cycle 0:"), std::string::npos) << d.message;

  Report explicitReport;
  modelCheckDistributed(dcu, s, explicitReport);
  EXPECT_EQ(verdictCodes(explicitReport), verdictCodes(sym.report))
      << "explicit:\n" << renderText(explicitReport) << "symbolic:\n"
      << renderText(sym.report);
}

TEST(Symbolic, WrongBaselineIsMDL006) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const sched::ScheduledDfg other = sched::scheduleAndBind(
      dfg::fir(3),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  const fsm::Fsm wrongBaseline = fsm::buildCentSync(other);
  const SymbolicArtifact sym = symbolicModelCheck(dcu, s, &wrongBaseline);
  EXPECT_TRUE(sym.report.has("MDL006")) << renderText(sym.report);
}

TEST(Symbolic, ExhaustedBudgetDegradesToUnknown) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  SymbolicCheckOptions options;
  options.maxDepth = -1;  // loop body never runs: every property stays open
  const SymbolicArtifact sym = symbolicModelCheck(dcu, s, nullptr, options);
  EXPECT_FALSE(sym.report.hasErrors()) << renderText(sym.report);
  ASSERT_EQ(sym.stats.properties.size(), 5u);
  for (const SymbolicProperty& p : sym.stats.properties) {
    EXPECT_EQ(p.verdict, PropertyVerdict::Unknown) << p.rule;
    EXPECT_EQ(p.depthReached, -1) << p.rule;
  }
  EXPECT_TRUE(sym.report.has("MDL008")) << renderText(sym.report);
}

}  // namespace
}  // namespace tauhls::verify
