// Whole-system integration battery: for every paper benchmark x both binding
// strategies, run the complete flow and assert the cross-module invariants
// in one place -- the checks a release gate would run.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/json.hpp"
#include "core/report.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/kiss.hpp"
#include "netlist/analyze.hpp"
#include "netlist/build.hpp"
#include "regalloc/leftedge.hpp"
#include "sim/interp.hpp"

namespace tauhls {
namespace {

struct CaseSpec {
  std::size_t benchmarkIndex;
  sched::BindingStrategy strategy;
};

class EndToEnd : public ::testing::TestWithParam<
                     std::tuple<std::size_t, sched::BindingStrategy>> {};

TEST_P(EndToEnd, FullFlowInvariants) {
  const auto [index, strategy] = GetParam();
  const dfg::NamedBenchmark b = dfg::paperTable2Suite()[index];

  core::FlowConfig cfg;
  cfg.allocation = b.allocation;
  cfg.strategy = strategy;
  const core::FlowResult r = core::runFlow(b.graph, cfg);

  // --- latency invariants -------------------------------------------------
  EXPECT_LE(r.latency.dist.bestNs, r.latency.dist.worstNs);
  for (std::size_t i = 0; i < r.latency.ps.size(); ++i) {
    EXPECT_LE(r.latency.dist.averageNs[i], r.latency.tau.averageNs[i] + 1e-9);
    EXPECT_GE(r.latency.dist.averageNs[i], r.latency.dist.bestNs - 1e-9);
    EXPECT_LE(r.latency.dist.averageNs[i], r.latency.dist.worstNs + 1e-9);
  }
  // Averages are monotone in P (0.9 fastest).
  EXPECT_LE(r.latency.dist.averageNs[0], r.latency.dist.averageNs[1]);
  EXPECT_LE(r.latency.dist.averageNs[1], r.latency.dist.averageNs[2]);

  // --- FSM-level spot check ------------------------------------------------
  const sim::SimTrace best =
      sim::runDistributed(r.distributed, r.scheduled, sim::allShort(r.scheduled));
  EXPECT_DOUBLE_EQ(best.latencyCycles * r.scheduled.clockNs,
                   r.latency.dist.bestNs);
  const sim::SimTrace worst =
      sim::runDistributed(r.distributed, r.scheduled, sim::allLong(r.scheduled));
  EXPECT_DOUBLE_EQ(worst.latencyCycles * r.scheduled.clockNs,
                   r.latency.dist.worstNs);

  // --- every RE fires within the iteration (controllers wrap, so early
  // units may already re-execute iteration 2 before the last op finishes --
  // additional pulses are expected, absence is not).
  std::map<std::string, int> reCount;
  for (const auto& cyc : best.outputsPerCycle) {
    for (const std::string& o : cyc) {
      if (o.starts_with("RE_")) ++reCount[o];
    }
  }
  for (dfg::NodeId v : r.scheduled.graph.opIds()) {
    EXPECT_GE(reCount["RE_" + r.scheduled.graph.node(v).name], 1)
        << r.scheduled.graph.node(v).name;
  }

  // --- controller logic is implementable and equivalent --------------------
  const fsm::Fsm& ctrl0 = r.distributed.controllers.front().fsm;
  netlist::ControllerNetlist cn = netlist::buildControllerNetlist(ctrl0);
  EXPECT_TRUE(netlist::verifyAgainstFsm(cn, ctrl0));
  EXPECT_TRUE(netlist::meetsClockNaive(netlist::analyze(cn.net),
                                       r.scheduled.clockNs, 0.5, 2.0));
  EXPECT_TRUE(netlist::meetsClock(cn.net, r.scheduled.clockNs, 2.0));

  // --- KISS2 round trip of the baseline machine ----------------------------
  fsm::Fsm reimported = fsm::fromKiss2(fsm::toKiss2(r.centSync), "rt");
  EXPECT_EQ(sim::compareOnRandomTraces(r.centSync, reimported, 11, 4, 40), -1);

  // --- register allocation meets its lower bound ----------------------------
  const auto lifetimes = regalloc::distributedLifetimes(r.scheduled);
  const auto regs =
      regalloc::leftEdgeRegisters(lifetimes, r.scheduled.graph.numNodes());
  EXPECT_EQ(regs.numRegisters, regalloc::maxLiveValues(lifetimes));

  // --- reports render ------------------------------------------------------
  EXPECT_FALSE(core::formatTable2Row(b.name, r).empty());
  EXPECT_FALSE(core::formatTable1(r).empty());
  const std::string json = core::toJson(r);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, EndToEnd,
    ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                       ::testing::Values(sched::BindingStrategy::LeftEdge,
                                         sched::BindingStrategy::CliqueCover)));

}  // namespace
}  // namespace tauhls
