// Shared helpers for the test suites.
#pragma once

#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace tauhls::test {

/// Names of the given nodes, in order (readable gtest failure messages).
std::vector<std::string> namesOf(const dfg::Dfg& g,
                                 const std::vector<dfg::NodeId>& ids);

/// True when `order` is a valid topological order of g (data + schedule arcs).
bool isTopologicalOrder(const dfg::Dfg& g, const std::vector<dfg::NodeId>& order);

/// Simple diamond DFG used by many unit tests:
///   in a,b ; m1=a*b ; m2=a*b ; s=m1+m2 ; out s
dfg::Dfg diamond();

/// A chain of `n` multiplications (each feeding the next).
dfg::Dfg mulChain(int n);

/// `n` independent multiplications (maximal concurrency).
dfg::Dfg parallelMuls(int n);

}  // namespace tauhls::test
