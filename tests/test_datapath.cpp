// Value-accurate datapath execution tests: the generated controllers driving
// a real register-transfer datapath with bit-level telescopic multipliers.
#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "datapath/engine.hpp"
#include "datapath/value.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "fsm/distributed.hpp"
#include "sim/makespan.hpp"
#include "testutil.hpp"

namespace tauhls::datapath {
namespace {

using dfg::NodeId;
using dfg::ResourceClass;
using sched::Allocation;

std::vector<Value> randomInputs(const dfg::Dfg& g, int width,
                                std::uint64_t seed, bool lowMagnitude) {
  std::mt19937_64 rng(seed);
  const Value mask = (Value{1} << width) - 1;
  std::vector<Value> in(g.numNodes(), 0);
  for (NodeId v : g.inputIds()) {
    if (lowMagnitude) {
      const int len = std::uniform_int_distribution<int>(1, width)(rng);
      in[v] = rng() & ((Value{1} << len) - 1);
    } else {
      in[v] = rng() & mask;
    }
  }
  return in;
}

TEST(Value, ApplyOpSemantics) {
  EXPECT_EQ(applyOp(dfg::OpKind::Add, 200, 100, 8), 44u);
  EXPECT_EQ(applyOp(dfg::OpKind::Sub, 5, 9, 8), 252u);
  EXPECT_EQ(applyOp(dfg::OpKind::Mul, 20, 20, 8), 144u);  // 400 mod 256
  EXPECT_EQ(applyOp(dfg::OpKind::Compare, 3, 9, 8), 1u);
  EXPECT_EQ(applyOp(dfg::OpKind::Compare, 9, 3, 8), 0u);
  EXPECT_EQ(applyOp(dfg::OpKind::Neg, 1, 0, 8), 255u);
  EXPECT_EQ(applyOp(dfg::OpKind::Div, 7, 0, 8), 255u);  // saturates
  EXPECT_EQ(applyOp(dfg::OpKind::Xor, 0xF0, 0x0F, 8), 0xFFu);
  EXPECT_THROW(applyOp(dfg::OpKind::Add, 256, 0, 8), Error);
}

TEST(Value, EvaluateDiamond) {
  dfg::Dfg g = test::diamond();
  std::vector<Value> in(g.numNodes(), 0);
  in[g.findByName("a")] = 6;
  in[g.findByName("b")] = 7;
  auto values = evaluateDfg(g, in, 16);
  EXPECT_EQ(values[g.findByName("m1")], 42u);
  EXPECT_EQ(values[g.findByName("m2")], 42u);
  EXPECT_EQ(values[g.findByName("s")], 84u);
}

TEST(Units, LibraryBasics) {
  BitLevelLibrary lib(16, 20);
  EXPECT_EQ(lib.width(), 16);
  EXPECT_EQ(lib.compute(dfg::OpKind::Mul, 3, 5), 15u);
  EXPECT_TRUE(lib.multiplierShortClass(3, 5));
  EXPECT_FALSE(lib.multiplierShortClass(0x8000, 0x8000));
  EXPECT_THROW(BitLevelLibrary(40, 20), Error);
}

TEST(Engine, DiffeqComputesGoldenValues) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const BitLevelLibrary lib(16, 20);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto inputs = randomInputs(s.graph, 16, seed, seed % 2 == 0);
    const ExecutionResult r = execute(dcu, s, inputs, lib);
    const auto golden = evaluateDfg(s.graph, inputs, 16);
    for (NodeId v : s.graph.opIds()) {
      EXPECT_EQ(r.values[v], golden[v])
          << s.graph.node(v).name << " seed=" << seed;
    }
  }
}

TEST(Engine, RealizedClassesMatchCompletionGenerator) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const BitLevelLibrary lib(16, 20);
  const auto inputs = randomInputs(s.graph, 16, 99, true);
  const ExecutionResult r = execute(dcu, s, inputs, lib);
  const auto golden = evaluateDfg(s.graph, inputs, 16);
  for (NodeId v : s.graph.opsOfClass(ResourceClass::Multiplier)) {
    const auto& node = s.graph.node(v);
    const Value a = golden[node.operands[0]];
    const Value b = golden[node.operands[1]];
    EXPECT_EQ(r.realizedClasses.isShort(v), lib.multiplierShortClass(a, b))
        << node.name;
  }
}

TEST(Engine, LatencyMatchesAbstractMakespanUnderRealizedClasses) {
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const BitLevelLibrary lib(16, 20);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto inputs = randomInputs(s.graph, 16, seed * 17, seed % 2 == 0);
    const ExecutionResult r = execute(dcu, s, inputs, lib);
    EXPECT_EQ(r.latencyCycles,
              sim::distributedMakespanCycles(s, r.realizedClasses))
        << "seed=" << seed;
  }
}

TEST(Engine, LowMagnitudeInputsRunFasterThanWide) {
  // With log-uniform (small) operands the multiplier hits SD more often, so
  // the same DFG finishes in (weakly) fewer cycles.
  auto s = sched::scheduleAndBind(
      dfg::fir(5),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const BitLevelLibrary lib(16, 16);
  long lowTotal = 0;
  long wideTotal = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    lowTotal += execute(dcu, s, randomInputs(s.graph, 16, seed, true), lib)
                    .latencyCycles;
    wideTotal += execute(dcu, s, randomInputs(s.graph, 16, seed, false), lib)
                     .latencyCycles;
  }
  EXPECT_LT(lowTotal, wideTotal);
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, GoldenEquivalenceOnRandomGraphs) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 1009;
  spec.numOps = 6 + static_cast<int>(GetParam() % 10);
  dfg::Dfg g = dfg::randomDfg(spec);
  auto s = sched::scheduleAndBind(g,
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const BitLevelLibrary lib(16, 18);
  const auto inputs = randomInputs(s.graph, 16, GetParam(), GetParam() % 2 == 0);
  const ExecutionResult r = execute(dcu, s, inputs, lib);
  const auto golden = evaluateDfg(s.graph, inputs, 16);
  for (NodeId v : s.graph.opIds()) {
    EXPECT_EQ(r.values[v], golden[v]) << s.graph.node(v).name;
  }
  EXPECT_EQ(r.latencyCycles,
            sim::distributedMakespanCycles(s, r.realizedClasses));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace tauhls::datapath
