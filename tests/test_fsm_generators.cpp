// Tests for the controller generators: Algorithm 1 (distributed), the
// CENT-SYNC baseline, the product machine (CENT-FSM) and signal optimization.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "fsm/signal.hpp"
#include "fsm/signal_opt.hpp"
#include "testutil.hpp"

namespace tauhls::fsm {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::BindingStrategy;
using sched::ScheduledDfg;

ScheduledDfg scheduledFig3() {
  return sched::scheduleAndBind(
      dfg::paperFig3(),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 2}},
      tau::paperLibrary(), BindingStrategy::CliqueCover);
}

ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

TEST(Distributed, OneControllerPerUnit) {
  ScheduledDfg s = scheduledDiffeq();
  DistributedControlUnit dcu = buildDistributed(s);
  EXPECT_EQ(dcu.controllers.size(), s.binding.numUnits());
  // External inputs: one completion signal per telescopic unit (2 TAU mults).
  EXPECT_EQ(dcu.externalInputs.size(), 2u);
}

TEST(Distributed, TelescopicControllersHaveSdLdStates) {
  ScheduledDfg s = scheduledDiffeq();
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    const bool isMult =
        s.binding.unit(c.unitId).cls == ResourceClass::Multiplier;
    EXPECT_EQ(c.telescopic, isMult);
    // Telescopic: S_i and S_i' per op; fixed: only S_i.
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
      EXPECT_NE(c.fsm.findState("S" + std::to_string(i)), -1);
      EXPECT_EQ(c.fsm.findState("S" + std::to_string(i) + "p") != -1, isMult);
    }
    // C_T input exactly for telescopic controllers.
    const std::string cT = unitCompletionSignal(s.binding.unit(c.unitId));
    const auto& ins = c.fsm.inputs();
    EXPECT_EQ(std::find(ins.begin(), ins.end(), cT) != ins.end(), isMult);
  }
}

TEST(Distributed, ReadyStatesExactlyForOpsWithCrossUnitPreds) {
  ScheduledDfg s = scheduledFig3();
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    for (std::size_t i = 0; i < c.ops.size(); ++i) {
      bool hasCrossPred = false;
      for (dfg::NodeId p : s.graph.dataPredecessors(c.ops[i])) {
        if (s.graph.isOp(p) && s.binding.unitOf(p) != c.unitId) {
          hasCrossPred = true;
        }
      }
      EXPECT_EQ(c.fsm.findState("R" + std::to_string(i)) != -1, hasCrossPred)
          << c.fsm.name() << " op " << s.graph.node(c.ops[i]).name;
    }
  }
}

TEST(Distributed, Fig6ControllerShape) {
  // The controller of a TAU multiplier bound with (O0, O1) where O1 waits for
  // O3: five states S0 S0' S1 S1' R1 (paper Fig. 6).
  ScheduledDfg s = scheduledFig3();
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    if (c.ops.size() == 2 &&
        s.graph.node(c.ops[0]).name == "O0" &&
        s.graph.node(c.ops[1]).name == "O1") {
      EXPECT_EQ(c.fsm.numStates(), 5u);
      EXPECT_NE(c.fsm.findState("R1"), -1);
      EXPECT_EQ(c.fsm.findState("R0"), -1);  // O0 has no predecessors
      // Initial state is S0 (O0 can start immediately).
      EXPECT_EQ(c.fsm.stateName(c.fsm.initial()), "S0");
      return;
    }
  }
  GTEST_SKIP() << "binding did not produce the (O0,O1) multiplier pairing";
}

TEST(Distributed, SingleTelescopicOpBehaviour) {
  // One TAU unit, one op, no predecessors: S0 --!C--> S0p --1--> S0 (wrap),
  // completing transitions carry OF/RE/CCO.
  dfg::Dfg g = test::parallelMuls(1);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 1}}, tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  ASSERT_EQ(dcu.controllers.size(), 1u);
  const Fsm& f = dcu.controllers[0].fsm;
  EXPECT_EQ(f.numStates(), 2u);
  // LD path: two cycles.
  auto r1 = f.step(f.findState("S0"), {});
  EXPECT_EQ(r1.nextState, f.findState("S0p"));
  EXPECT_EQ(r1.outputs, (std::vector<std::string>{"OF_m0"}));
  auto r2 = f.step(r1.nextState, {});
  EXPECT_EQ(r2.nextState, f.findState("S0"));
  EXPECT_EQ(r2.outputs,
            (std::vector<std::string>{"OF_m0", "RE_m0", "CCO_m0"}));
  // SD path: one cycle.
  auto r3 = f.step(f.findState("S0"), {"C_mult1"});
  EXPECT_EQ(r3.nextState, f.findState("S0"));
  EXPECT_EQ(r3.outputs,
            (std::vector<std::string>{"OF_m0", "RE_m0", "CCO_m0"}));
}

TEST(Distributed, FixedUnitControllerHasNoTauChoice) {
  dfg::Dfg g("adds");
  auto a = g.addInput("a");
  auto b = g.addInput("b");
  auto s1 = g.addOp(dfg::OpKind::Add, {a, b}, "a0");
  auto s2 = g.addOp(dfg::OpKind::Add, {s1, b}, "a1");
  g.markOutput(s2);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Adder, 1}}, tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  ASSERT_EQ(dcu.controllers.size(), 1u);
  const Fsm& f = dcu.controllers[0].fsm;
  // Two ops on the same unit, predecessor on the same unit: no R states,
  // no primed states, two states total, every transition unconditional.
  EXPECT_EQ(f.numStates(), 2u);
  EXPECT_TRUE(f.inputs().empty());
  for (const Transition& t : f.transitions()) {
    EXPECT_TRUE(t.guard.isAlways());
  }
}

TEST(Distributed, WiringIsConsistent) {
  ScheduledDfg s = scheduledDiffeq();
  DistributedControlUnit dcu = buildDistributed(s);
  for (const auto& [sig, consumers] : dcu.consumersOf) {
    ASSERT_TRUE(dcu.producerOf.contains(sig));
    for (int c : consumers) {
      EXPECT_NE(dcu.producerOf.at(sig), c) << "self-consumption of " << sig;
    }
  }
  // Latch count equals the total consumed-signal fan-in.
  int latches = 0;
  for (const UnitController& c : dcu.controllers) {
    latches += static_cast<int>(c.latchedInputs.size());
  }
  EXPECT_EQ(dcu.completionLatchCount(), latches);
  EXPECT_GT(latches, 0);
}

TEST(CentSync, Fig2ShapeAndLatencyRange) {
  // Fig. 2(c): S0 S0' S1 S2 S2' S3 -- six states, latency 4..6 cycles.
  ScheduledDfg s = sched::scheduleAndBind(
      dfg::paperFig2(),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  Fsm f = buildCentSync(s);
  EXPECT_EQ(f.numStates(), 6u);
  EXPECT_NE(f.findState("S0p"), -1);
  EXPECT_NE(f.findState("S2p"), -1);
  EXPECT_EQ(f.findState("S1p"), -1);
  EXPECT_EQ(f.findState("S3p"), -1);
}

TEST(CentSync, SplitStepGuardsReadStepUnits) {
  ScheduledDfg s = scheduledDiffeq();
  Fsm f = buildCentSync(s);
  // Inputs are exactly the telescopic units' completion signals.
  EXPECT_EQ(f.inputs().size(), 2u);
  for (const std::string& in : f.inputs()) {
    EXPECT_TRUE(in.starts_with("C_mult"));
  }
}

TEST(CentSync, TaubmWrapperRequiresSingleTau) {
  ScheduledDfg multi = scheduledDiffeq();
  EXPECT_THROW(buildTaubmFsm(multi), Error);
  dfg::Dfg g = test::mulChain(3);
  ScheduledDfg single = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 1}}, tau::paperLibrary());
  Fsm f = buildTaubmFsm(single);
  EXPECT_TRUE(f.name().starts_with("TAUBM_FSM"));
  validateFsm(f);
}

TEST(Product, ExponentialGrowthWithParallelTaus) {
  // n independent TAU ops on n units: the synchronized machine has 2 states;
  // the concurrency-preserving product has 2^n (paper Fig. 4).
  for (int n : {1, 2, 3, 4}) {
    dfg::Dfg g = test::parallelMuls(n);
    ScheduledDfg s = sched::scheduleAndBind(
        g, Allocation{{ResourceClass::Multiplier, n}}, tau::paperLibrary());
    DistributedControlUnit dcu = buildDistributed(s);
    Fsm product = buildProduct(dcu);
    EXPECT_EQ(product.numStates(), std::size_t{1} << n) << "n=" << n;
  }
}

TEST(Product, StateBoundEnforced) {
  dfg::Dfg g = test::parallelMuls(4);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 4}}, tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  ProductOptions opt;
  opt.maxStates = 8;
  EXPECT_THROW(buildProduct(dcu, opt), Error);
}

TEST(Product, HidesInternalSignalsByDefault) {
  ScheduledDfg s = scheduledFig3();
  DistributedControlUnit dcu = buildDistributed(s);
  Fsm product = buildProduct(dcu);
  for (const std::string& out : product.outputs()) {
    EXPECT_FALSE(out.starts_with("CCO_")) << out;
  }
  ProductOptions keep;
  keep.hideInternalSignals = false;
  Fsm full = buildProduct(dcu, keep);
  bool sawCco = false;
  for (const std::string& out : full.outputs()) sawCco |= out.starts_with("CCO_");
  EXPECT_TRUE(sawCco);
}

TEST(Product, CrossUnitDependencyResolvesThroughLatch) {
  // Diamond: m1, m2 on two TAU multipliers; s = m1 + m2 on an adder whose
  // controller waits in R0 for CCO_m1 and CCO_m2.  Under all-SD inputs the
  // product must deliver RE_s by cycle 3 (mults cycle 1, adder starts after
  // the latched completions, cycle 3).
  dfg::Dfg g = test::diamond();
  ScheduledDfg s = sched::scheduleAndBind(
      g,
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  ASSERT_EQ(dcu.controllers.size(), 3u);
  ASSERT_EQ(dcu.consumersOf.size(), 2u);  // CCO_m1, CCO_m2
  Fsm product = buildProduct(dcu);
  std::unordered_set<std::string> allSd;
  for (const std::string& in : product.inputs()) allSd.insert(in);
  int state = product.initial();
  bool sawReS = false;
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto r = product.step(state, allSd);
    state = r.nextState;
    for (const std::string& o : r.outputs) sawReS |= (o == "RE_s");
  }
  EXPECT_TRUE(sawReS);

  // Worst case (never asserted completions): the multipliers take two
  // cycles; RE_s must appear by cycle 4 and not before cycle 3.
  state = product.initial();
  int reCycle = -1;
  for (int cycle = 0; cycle < 5 && reCycle < 0; ++cycle) {
    auto r = product.step(state, {});
    state = r.nextState;
    for (const std::string& o : r.outputs) {
      if (o == "RE_s") reCycle = cycle;
    }
  }
  // Cycles 0-1: multipliers (LD).  Their completion pulses fire during
  // cycle 1, moving the adder R0 -> S0 at that edge; the add executes in
  // cycle 2 and RE_s is asserted on its completing transition.
  EXPECT_EQ(reCycle, 2);
}

TEST(SignalOpt, RemovesUnconsumedCompletionOutputs) {
  ScheduledDfg s = scheduledDiffeq();
  DistributedControlUnit dcu = buildDistributed(s);
  SignalOptStats stats;
  DistributedControlUnit opt = optimizeSignals(dcu, &stats);
  EXPECT_GT(stats.removedOutputs, 0);
  EXPECT_GT(stats.keptOutputs, 0);
  // No controller still declares an unconsumed CCO output.
  for (const UnitController& c : opt.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (o.starts_with("CCO_")) {
        EXPECT_TRUE(dcu.consumersOf.contains(o)) << o;
      }
    }
    validateFsm(c.fsm);
  }
  // Consumed signals (and thus behaviour seen by other controllers) intact.
  EXPECT_EQ(opt.consumersOf.size(), dcu.consumersOf.size());
}

TEST(SignalOpt, ProductUnaffectedByOptimization) {
  ScheduledDfg s = scheduledFig3();
  DistributedControlUnit dcu = buildDistributed(s);
  DistributedControlUnit opt = optimizeSignals(dcu);
  Fsm p1 = buildProduct(dcu);
  Fsm p2 = buildProduct(opt);
  EXPECT_EQ(p1.numStates(), p2.numStates());
}

class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, AllMachinesValidOnRandomGraphs) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam();
  spec.numOps = 6 + static_cast<int>(GetParam() % 14);
  dfg::Dfg g = dfg::randomDfg(spec);
  Allocation alloc{{ResourceClass::Multiplier, 2},
                   {ResourceClass::Adder, 1},
                   {ResourceClass::Subtractor, 1}};
  ScheduledDfg s = sched::scheduleAndBind(g, alloc, tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    EXPECT_NO_THROW(validateFsm(c.fsm));
  }
  EXPECT_NO_THROW(validateFsm(buildCentSync(s)));
  // The product is validated internally on construction.
  Fsm product = buildProduct(dcu);
  EXPECT_GE(product.numStates(), 1u);
  // Distributed state total is linear in ops; product may be exponential.
  EXPECT_LE(dcu.totalStates(), 3 * g.numOps() + dcu.controllers.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tauhls::fsm
