#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/analysis.hpp"
#include "dfg/dot.hpp"
#include "dfg/graph.hpp"
#include "dfg/random.hpp"
#include "dfg/textio.hpp"
#include "testutil.hpp"

namespace tauhls::dfg {
namespace {

using test::diamond;
using test::isTopologicalOrder;
using test::mulChain;
using test::parallelMuls;

TEST(OpKind, NamesRoundTrip) {
  for (OpKind k : {OpKind::Input, OpKind::Add, OpKind::Sub, OpKind::Mul,
                   OpKind::Div, OpKind::Compare, OpKind::Shift, OpKind::And,
                   OpKind::Or, OpKind::Xor, OpKind::Neg}) {
    auto parsed = parseOpKind(opKindName(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parseOpKind("bogus").has_value());
}

TEST(OpKind, ResourceClasses) {
  EXPECT_EQ(resourceClassOf(OpKind::Mul), ResourceClass::Multiplier);
  EXPECT_EQ(resourceClassOf(OpKind::Add), ResourceClass::Adder);
  EXPECT_EQ(resourceClassOf(OpKind::Sub), ResourceClass::Subtractor);
  EXPECT_EQ(resourceClassOf(OpKind::Compare), ResourceClass::Subtractor);
  EXPECT_EQ(resourceClassOf(OpKind::Neg), ResourceClass::Subtractor);
  EXPECT_EQ(resourceClassOf(OpKind::Input), ResourceClass::None);
}

TEST(OpKind, Arity) {
  EXPECT_EQ(opKindArity(OpKind::Input), 0);
  EXPECT_EQ(opKindArity(OpKind::Neg), 1);
  EXPECT_EQ(opKindArity(OpKind::Mul), 2);
}

TEST(Dfg, BuildAndQuery) {
  Dfg g = diamond();
  EXPECT_EQ(g.numNodes(), 5u);
  EXPECT_EQ(g.numOps(), 3u);
  EXPECT_EQ(g.inputIds().size(), 2u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 2u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 1u);
  NodeId s = g.findByName("s");
  ASSERT_NE(s, kNoNode);
  EXPECT_EQ(g.dataPredecessors(s).size(), 2u);
  EXPECT_TRUE(g.dataSuccessors(s).empty());
  NodeId a = g.findByName("a");
  EXPECT_EQ(g.dataSuccessors(a).size(), 2u);
}

TEST(Dfg, DuplicateNamesRejected) {
  Dfg g;
  g.addInput("a");
  EXPECT_THROW(g.addInput("a"), Error);
}

TEST(Dfg, ArityMismatchRejected) {
  Dfg g;
  NodeId a = g.addInput("a");
  EXPECT_THROW(g.addOp(OpKind::Mul, {a}), Error);
  EXPECT_THROW(g.addOp(OpKind::Neg, {a, a}), Error);
}

TEST(Dfg, DanglingOperandRejected) {
  Dfg g;
  NodeId a = g.addInput("a");
  EXPECT_THROW(g.addOp(OpKind::Mul, {a, NodeId{99}}), Error);
}

TEST(Dfg, ScheduleArcRules) {
  Dfg g = diamond();
  NodeId m1 = g.findByName("m1");
  NodeId m2 = g.findByName("m2");
  NodeId a = g.findByName("a");
  g.addScheduleArc(m1, m2);
  EXPECT_EQ(g.scheduleArcs().size(), 1u);
  g.addScheduleArc(m1, m2);  // idempotent
  EXPECT_EQ(g.scheduleArcs().size(), 1u);
  EXPECT_THROW(g.addScheduleArc(m2, m1), Error);  // cycle
  EXPECT_THROW(g.addScheduleArc(m1, m1), Error);  // self-loop
  EXPECT_THROW(g.addScheduleArc(a, m1), Error);   // input endpoint
  EXPECT_EQ(g.scheduleArcs().size(), 1u);
  g.clearScheduleArcs();
  EXPECT_TRUE(g.scheduleArcs().empty());
}

TEST(Dfg, CombinedPredecessorsIncludeScheduleArcs) {
  Dfg g = diamond();
  NodeId m1 = g.findByName("m1");
  NodeId m2 = g.findByName("m2");
  g.addScheduleArc(m1, m2);
  auto preds = g.combinedPredecessors(m2);
  EXPECT_NE(std::find(preds.begin(), preds.end(), m1), preds.end());
  auto dataPreds = g.dataPredecessors(m2);
  EXPECT_EQ(std::find(dataPreds.begin(), dataPreds.end(), m1), dataPreds.end());
}

TEST(Analysis, TopologicalOrderValid) {
  Dfg g = diamond();
  EXPECT_TRUE(isTopologicalOrder(g, topologicalOrder(g)));
  Dfg c = mulChain(7);
  EXPECT_TRUE(isTopologicalOrder(c, topologicalOrder(c)));
}

TEST(Analysis, CriticalPathChain) {
  Dfg c = mulChain(6);
  EXPECT_EQ(criticalPathLength(c, unitDurations(c)), 6);
  // Double-weight multiplications.
  auto dur2 = [&c](NodeId id) { return c.isInput(id) ? 0 : 2; };
  EXPECT_EQ(criticalPathLength(c, dur2), 12);
}

TEST(Analysis, CriticalPathParallel) {
  Dfg p = parallelMuls(5);
  EXPECT_EQ(criticalPathLength(p, unitDurations(p)), 1);
}

TEST(Analysis, ScheduleArcsLengthenPaths) {
  Dfg p = parallelMuls(3);
  auto ops = p.opIds();
  EXPECT_EQ(criticalPathLength(p, unitDurations(p)), 1);
  p.addScheduleArc(ops[0], ops[1]);
  p.addScheduleArc(ops[1], ops[2]);
  EXPECT_EQ(criticalPathLength(p, unitDurations(p)), 3);
}

TEST(Analysis, Reaches) {
  Dfg g = diamond();
  NodeId a = g.findByName("a");
  NodeId s = g.findByName("s");
  NodeId m1 = g.findByName("m1");
  EXPECT_TRUE(reaches(g, a, s));
  EXPECT_TRUE(reaches(g, m1, s));
  EXPECT_FALSE(reaches(g, s, a));
  EXPECT_FALSE(reaches(g, m1, m1));
}

TEST(Analysis, ReachabilityClosureMatchesReaches) {
  Dfg g = dfg::randomDfg({.seed = 42, .numOps = 20, .numInputs = 4});
  auto closure = reachabilityClosure(g);
  for (NodeId a = 0; a < g.numNodes(); ++a) {
    for (NodeId b = 0; b < g.numNodes(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(closure[a][b], reaches(g, a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Dot, ContainsNodesAndArcs) {
  Dfg g = diamond();
  NodeId m1 = g.findByName("m1");
  NodeId m2 = g.findByName("m2");
  g.addScheduleArc(m1, m2);
  std::string dot = toDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("m1"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  std::string noSched = toDot(g, {.showScheduleArcs = false});
  EXPECT_EQ(noSched.find("style=dashed"), std::string::npos);
}

TEST(TextIo, ParsePrintRoundTrip) {
  const std::string src =
      "in a, b, c\n"
      "m1 = a * b\n"
      "m2 = b * c\n"
      "s1 = m1 + m2\n"
      "n1 = - s1\n"
      "cmp1 = n1 < a\n"
      "out cmp1\n";
  Dfg g = parseDfg(src, "t");
  EXPECT_EQ(g.numOps(), 5u);
  EXPECT_EQ(g.outputs().size(), 1u);
  Dfg g2 = parseDfg(printDfg(g), "t2");
  EXPECT_EQ(g2.numOps(), g.numOps());
  EXPECT_EQ(printDfg(g2), printDfg(g));
}

TEST(TextIo, SemicolonsAndComments) {
  Dfg g = parseDfg("in a, b # inputs\nm = a * b; out m\n");
  EXPECT_EQ(g.numOps(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(TextIo, ErrorsAreLineNumbered) {
  try {
    parseDfg("in a\nz = a * missing\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(TextIo, RejectsMalformedStatements) {
  EXPECT_THROW(parseDfg("in a\nx = a *\n"), Error);
  EXPECT_THROW(parseDfg("in a\nx = a ? a\n"), Error);
  EXPECT_THROW(parseDfg("out nothing\n"), Error);
}

class RandomDfgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDfgProperty, GeneratesValidAcyclicGraphs) {
  RandomDfgSpec spec;
  spec.seed = GetParam();
  spec.numOps = 10 + static_cast<int>(GetParam() % 30);
  Dfg g = randomDfg(spec);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.numOps(), static_cast<std::size_t>(spec.numOps));
  EXPECT_TRUE(isTopologicalOrder(g, topologicalOrder(g)));
  EXPECT_FALSE(g.outputs().empty());
}

TEST_P(RandomDfgProperty, DeterministicForSeed) {
  RandomDfgSpec spec;
  spec.seed = GetParam();
  EXPECT_EQ(printDfg(randomDfg(spec)), printDfg(randomDfg(spec)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDfgProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tauhls::dfg
