#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "sim/distribution.hpp"
#include "testutil.hpp"

namespace tauhls::sim {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

sched::ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

TEST(Distribution, SumsToOneAndBracketsSupport) {
  auto s = scheduledDiffeq();
  for (double p : {0.9, 0.5, 0.1}) {
    LatencyDistribution d =
        latencyDistribution(s, ControlStyle::Distributed, p);
    double total = 0.0;
    for (const auto& [cycles, prob] : d.pmf) total += prob;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(d.minCycles(), bestCaseCycles(s, ControlStyle::Distributed));
    EXPECT_EQ(d.maxCycles(), worstCaseCycles(s, ControlStyle::Distributed));
  }
}

TEST(Distribution, MeanMatchesExactExpectation) {
  auto s = scheduledDiffeq();
  for (ControlStyle style : {ControlStyle::Distributed, ControlStyle::CentSync}) {
    for (double p : {0.9, 0.7, 0.5}) {
      LatencyDistribution d = latencyDistribution(s, style, p);
      EXPECT_NEAR(d.mean(), averageCyclesExact(s, style, p), 1e-9);
    }
  }
}

TEST(Distribution, QuantilesMonotone) {
  auto s = scheduledDiffeq();
  LatencyDistribution d = latencyDistribution(s, ControlStyle::Distributed, 0.7);
  EXPECT_LE(d.quantile(0.5), d.quantile(0.95));
  EXPECT_LE(d.quantile(0.95), d.quantile(1.0));
  EXPECT_EQ(d.quantile(0.0), d.minCycles());
  EXPECT_EQ(d.quantile(1.0), d.maxCycles());
  EXPECT_THROW(d.quantile(1.5), Error);
}

TEST(Distribution, DegenerateAtPOne) {
  auto s = scheduledDiffeq();
  LatencyDistribution d = latencyDistribution(s, ControlStyle::Distributed, 1.0);
  ASSERT_EQ(d.pmf.size(), 1u);
  EXPECT_EQ(d.pmf.begin()->first, bestCaseCycles(s, ControlStyle::Distributed));
  EXPECT_NEAR(d.pmf.begin()->second, 1.0, 1e-12);
}

TEST(Distribution, DistributedStochasticallyDominatesSync) {
  // For every cycle budget c, P(dist <= c) >= P(sync <= c): the distributed
  // latency is never worse on any operand class, so its CDF dominates.
  auto s = scheduledDiffeq();
  LatencyDistribution dist =
      latencyDistribution(s, ControlStyle::Distributed, 0.6);
  LatencyDistribution sync = latencyDistribution(s, ControlStyle::CentSync, 0.6);
  for (int c = dist.minCycles(); c <= sync.maxCycles(); ++c) {
    double cdfDist = 0.0;
    double cdfSync = 0.0;
    for (const auto& [cycles, prob] : dist.pmf) {
      if (cycles <= c) cdfDist += prob;
    }
    for (const auto& [cycles, prob] : sync.pmf) {
      if (cycles <= c) cdfSync += prob;
    }
    EXPECT_GE(cdfDist + 1e-12, cdfSync) << "c=" << c;
  }
}

}  // namespace
}  // namespace tauhls::sim
