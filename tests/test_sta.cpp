// Static timing analysis tests (netlist/sta.hpp): hand-computed arrival /
// required / slack values on small circuits, worst-path extraction, and the
// relationship to the naive depth bound on real controller netlists.
#include "netlist/sta.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "fsm/machine.hpp"
#include "netlist/analyze.hpp"
#include "netlist/build.hpp"

namespace tauhls::netlist {
namespace {

constexpr double kEps = 1e-9;

TEST(Sta, SingleInputPassThrough) {
  Netlist net("wire");
  const NetId a = net.addInput("a");
  net.markOutput("y", a);
  const StaResult sta = runSta(net, 10.0);
  // Input arrival only; single fanout adds no load.
  EXPECT_NEAR(sta.worstArrivalNs, 0.20, kEps);
  EXPECT_NEAR(sta.worstSlackNs, 10.0 - 0.20, kEps);
  EXPECT_EQ(sta.worstOutput, "y");
  EXPECT_TRUE(sta.meetsClock());
  EXPECT_EQ(formatWorstPath(sta), "a");
}

TEST(Sta, InverterChainArrival) {
  Netlist net("chain");
  const NetId a = net.addInput("a");
  const NetId n1 = net.addInv(a);
  const NetId n2 = net.addInv(n1);
  net.markOutput("y", n2);
  const StaResult sta = runSta(net, 10.0);
  // 0.20 input + 2 * 0.30 inverter.
  EXPECT_NEAR(sta.worstArrivalNs, 0.80, kEps);
  ASSERT_EQ(sta.worstPath.size(), 3u);
  EXPECT_EQ(sta.worstPath.front().label, "a");
  EXPECT_NEAR(sta.worstPath.back().arrivalNs, 0.80, kEps);
}

TEST(Sta, GateTreeLevels) {
  // A 4-input AND costs ceil(log2 4) = 2 levels; a 5-input OR costs 3.
  Netlist net("tree");
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(net.addInput("i" + std::to_string(i)));
  const NetId a4 = net.addAnd({ins[0], ins[1], ins[2], ins[3]});
  net.markOutput("and4", a4);
  const NetId o5 = net.addOr(ins);
  net.markOutput("or5", o5);
  const StaResult sta = runSta(net, 10.0);
  // Inputs i0..i3 feed two gates (fanout 2): +0.05 load on each.
  const double inArrival = 0.20 + 0.05;
  EXPECT_NEAR(sta.arrivalNs[a4], inArrival + 2 * 0.50, kEps);
  EXPECT_NEAR(sta.arrivalNs[o5], inArrival + 3 * 0.55, kEps);
  EXPECT_EQ(sta.worstOutput, "or5");
}

TEST(Sta, FanoutLoadSlowsDriver) {
  Netlist fan1("fan1");
  NetId a = fan1.addInput("a");
  fan1.markOutput("y", fan1.addInv(a));
  Netlist fan3("fan3");
  a = fan3.addInput("a");
  const NetId inv = fan3.addInv(a);
  fan3.markOutput("y0", inv);
  fan3.markOutput("y1", fan3.addInv(inv));
  fan3.markOutput("y2", fan3.addInv(inv));
  // In fan3 the first inverter drives two more inverters plus an output tap
  // (fanout 3): its delay gains 2 * 0.05 over the fanout-1 version.
  const double lone = runSta(fan1, 10.0).arrivalNs[1];
  const double loaded = runSta(fan3, 10.0).arrivalNs[1];
  EXPECT_NEAR(loaded - lone, 2 * 0.05, kEps);
}

TEST(Sta, RequiredAndSlack) {
  Netlist net("slack");
  const NetId a = net.addInput("a");
  const NetId b = net.addInput("b");
  const NetId g = net.addAnd({a, b});
  net.markOutput("y", g);
  const StaResult sta = runSta(net, 5.0, 1.0);
  // Output must settle by clock - margin = 4.0.
  EXPECT_NEAR(sta.requiredNs[g], 4.0, kEps);
  EXPECT_NEAR(sta.requiredNs[a], 4.0 - 0.50, kEps);
  EXPECT_NEAR(sta.slackNs[g], 4.0 - 0.70, kEps);
  EXPECT_NEAR(sta.worstSlackNs, 4.0 - 0.70, kEps);
}

TEST(Sta, NegativeSlackFailsClock) {
  Netlist net("slow");
  NetId cur = net.addInput("a");
  for (int i = 0; i < 10; ++i) cur = net.addInv(cur);
  net.markOutput("y", cur);
  // Arrival = 0.2 + 10 * 0.3 = 3.2 > 3.0.
  const StaResult sta = runSta(net, 3.0);
  EXPECT_FALSE(sta.meetsClock());
  EXPECT_LT(sta.worstSlackNs, 0.0);
  EXPECT_NEAR(sta.worstArrivalNs, 3.2, kEps);
}

TEST(Sta, NetsOutsideOutputConesAreUnconstrained) {
  Netlist net("dangling");
  const NetId a = net.addInput("a");
  const NetId b = net.addInput("b");
  net.markOutput("y", net.addInv(a));
  const NetId orphan = net.addInv(b);
  const StaResult sta = runSta(net, 10.0);
  EXPECT_TRUE(std::isinf(sta.requiredNs[orphan]));
  EXPECT_TRUE(std::isinf(sta.slackNs[orphan]));
  EXPECT_FALSE(std::isinf(sta.worstSlackNs));
}

TEST(Sta, CustomDelayModel) {
  DelayModel model;
  model.invNs = 1.0;
  model.inputArrivalNs = 0.0;
  model.loadNsPerFanout = 0.0;
  Netlist net("model");
  net.markOutput("y", net.addInv(net.addInput("a")));
  EXPECT_NEAR(runSta(net, 10.0, 0.0, model).worstArrivalNs, 1.0, kEps);
}

TEST(Sta, RejectsNonPositiveClock) {
  Netlist net("bad");
  net.markOutput("y", net.addInput("a"));
  EXPECT_THROW(runSta(net, 0.0), Error);
}

TEST(Sta, WorstPathFollowsLatestFanin) {
  Netlist net("path");
  const NetId fast = net.addInput("fast");
  NetId slow = net.addInput("slow");
  for (int i = 0; i < 3; ++i) slow = net.addInv(slow);
  const NetId g = net.addAnd({fast, slow});
  net.markOutput("y", g);
  const StaResult sta = runSta(net, 10.0);
  ASSERT_GE(sta.worstPath.size(), 2u);
  EXPECT_EQ(sta.worstPath.front().label, "slow");
  // Arrivals along the path are non-decreasing.
  for (std::size_t i = 1; i < sta.worstPath.size(); ++i) {
    EXPECT_GE(sta.worstPath[i].arrivalNs, sta.worstPath[i - 1].arrivalNs);
  }
}

fsm::Fsm sampleController() {
  fsm::Fsm m("ctrl");
  m.addInput("go");
  m.addOutput("busy");
  const auto s0 = m.addState("S0");
  const auto s1 = m.addState("S1");
  const auto s2 = m.addState("S2");
  m.setInitial(s0);
  m.addTransition(s0, s1, fsm::Guard::literal("go", true), {"busy"});
  m.addTransition(s0, s0, fsm::Guard::literal("go", false), {});
  m.addTransition(s1, s2, fsm::Guard::always(), {"busy"});
  m.addTransition(s2, s0, fsm::Guard::always(), {});
  return m;
}

TEST(Sta, ControllerNetlistEndToEnd) {
  const ControllerNetlist cn = buildControllerNetlist(sampleController());
  const StaResult sta = runSta(cn.net, 15.0, 2.0);
  EXPECT_GT(sta.worstArrivalNs, 0.0);
  EXPECT_TRUE(sta.meetsClock());
  EXPECT_FALSE(sta.worstOutput.empty());
  EXPECT_FALSE(formatWorstPath(sta).empty());
}

TEST(Sta, RefinesNaiveDepthBound) {
  // The naive bound prices every level at a uniform 0.5 ns and ignores both
  // fanout load and input arrival; STA on the same netlist must still be in
  // the same ballpark (within the same order of magnitude), and meetsClock
  // must now be the STA verdict.
  const ControllerNetlist cn = buildControllerNetlist(sampleController());
  const GateStats stats = analyze(cn.net);
  const double naive = stats.depth * 0.5;
  const StaResult sta = runSta(cn.net, 15.0, 2.0);
  EXPECT_GT(sta.worstArrivalNs, 0.0);
  EXPECT_LT(sta.worstArrivalNs, naive * 3 + 1.0);
  EXPECT_EQ(meetsClock(cn.net, 15.0, 2.0), sta.meetsClock());
  EXPECT_EQ(meetsClockNaive(stats, 15.0, 0.5, 2.0),
            stats.depth * 0.5 <= 15.0 - 2.0);
}

}  // namespace
}  // namespace tauhls::netlist
