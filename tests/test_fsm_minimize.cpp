#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/minimize.hpp"
#include "fsm/product.hpp"
#include "sim/interp.hpp"
#include "testutil.hpp"

namespace tauhls::fsm {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

Fsm machineWithRedundantStates() {
  // S1 and S2 are bisimilar (same outputs, both go to S0), so 3 -> 2 states.
  Fsm f("redundant");
  int s0 = f.addState("S0");
  int s1 = f.addState("S1");
  int s2 = f.addState("S2");
  f.addInput("c");
  f.addOutput("x");
  f.addTransition(s0, s1, Guard::literal("c", true), {"x"});
  f.addTransition(s0, s2, Guard::literal("c", false), {"x"});
  f.addTransition(s1, s0, Guard::always(), {});
  f.addTransition(s2, s0, Guard::always(), {});
  f.setInitial(s0);
  return f;
}

TEST(Minimize, CollapsesBisimilarStates) {
  Fsm f = machineWithRedundantStates();
  Fsm m = minimizeStates(f);
  EXPECT_EQ(m.numStates(), 2u);
  EXPECT_EQ(sim::compareOnRandomTraces(f, m, 1, 10, 50), -1);
}

TEST(Minimize, MinimalMachineUntouched) {
  // A 3-state counter with distinct behaviour per state stays 3 states.
  Fsm f("counter");
  int s0 = f.addState("A");
  int s1 = f.addState("B");
  int s2 = f.addState("C");
  f.addOutput("done");
  f.addTransition(s0, s1, Guard::always(), {});
  f.addTransition(s1, s2, Guard::always(), {});
  f.addTransition(s2, s0, Guard::always(), {"done"});
  f.setInitial(s0);
  Fsm m = minimizeStates(f);
  EXPECT_EQ(m.numStates(), 3u);
}

TEST(Minimize, AllStatesEquivalentCollapsesToOne) {
  Fsm f("uniform");
  int s0 = f.addState("A");
  int s1 = f.addState("B");
  f.addOutput("tick");
  f.addTransition(s0, s1, Guard::always(), {"tick"});
  f.addTransition(s1, s0, Guard::always(), {"tick"});
  f.setInitial(s0);
  Fsm m = minimizeStates(f);
  EXPECT_EQ(m.numStates(), 1u);
  auto r = m.step(m.initial(), {});
  EXPECT_EQ(r.nextState, m.initial());
  EXPECT_EQ(r.outputs, (std::vector<std::string>{"tick"}));
}

TEST(Minimize, Idempotent) {
  Fsm m = minimizeStates(machineWithRedundantStates());
  Fsm m2 = minimizeStates(m);
  EXPECT_EQ(m.numStates(), m2.numStates());
}

TEST(Minimize, ParallelTauProductIsAlreadyMinimal) {
  // The 2^n product states of n independent TAUs are all distinguishable
  // (each tracks which units are in their LD cycle), so minimization keeps
  // them: the exponential growth of Fig. 4 is intrinsic, not an artifact.
  dfg::Dfg g = test::parallelMuls(3);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 3}},
                                  tau::paperLibrary());
  Fsm product = buildProduct(buildDistributed(s));
  EXPECT_EQ(product.numStates(), 8u);
  EXPECT_EQ(minimizeStates(product).numStates(), 8u);
}

TEST(Minimize, DiffeqProductIsAlreadyMinimal) {
  // The exact reachable product of the Diff. controllers is minimal under
  // Mealy equivalence: because the controllers wrap and loop, every latch
  // distinction is eventually observable.  The exponential blow-up of
  // CENT-FSM is therefore intrinsic, not an artifact of the construction.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  Fsm product = buildProduct(buildDistributed(s));
  Fsm m = minimizeStates(product);
  EXPECT_EQ(m.numStates(), product.numStates());
  EXPECT_EQ(sim::compareOnRandomTraces(product, m, 17, 8, 60), -1);
}

class MinimizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizeProperty, EquivalentOnRandomControllers) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 31;
  spec.numOps = 6 + static_cast<int>(GetParam() % 8);
  dfg::Dfg g = dfg::randomDfg(spec);
  auto s = sched::scheduleAndBind(g,
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  DistributedControlUnit dcu = buildDistributed(s);
  for (const UnitController& c : dcu.controllers) {
    Fsm m = minimizeStates(c.fsm);
    EXPECT_LE(m.numStates(), c.fsm.numStates());
    EXPECT_EQ(sim::compareOnRandomTraces(c.fsm, m, GetParam(), 5, 40), -1)
        << c.fsm.name();
  }
  Fsm sync = buildCentSync(s);
  Fsm syncMin = minimizeStates(sync);
  EXPECT_EQ(sim::compareOnRandomTraces(sync, syncMin, GetParam(), 5, 40), -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tauhls::fsm
