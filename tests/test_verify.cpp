// Property and mutation tests for the static design-rule checker (src/verify/).
//
// Two families:
//   - properties: every paper benchmark, under both binding strategies and
//     with/without signal optimization, verifies clean end to end;
//   - mutations: a deliberately broken artifact of each class (dropped
//     schedule arc, double-booked unit, deleted FSM transition, rewired
//     completion guard, shorted/undriven RTL nets) triggers exactly the
//     expected rule code.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/flow.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal.hpp"
#include "fsm/signal_opt.hpp"
#include "netlist/netlist.hpp"
#include "rtl/verilog.hpp"
#include "sched/scheduled_dfg.hpp"
#include "tau/library.hpp"
#include "testutil.hpp"
#include "verify/dfg_lint.hpp"
#include "verify/diagnostic.hpp"
#include "verify/fsm_check.hpp"
#include "verify/model_check.hpp"
#include "verify/netlist_check.hpp"
#include "verify/sched_lint.hpp"
#include "verify/verify.hpp"
#include "vsim/parser.hpp"

namespace tauhls::verify {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

sched::ScheduledDfg fig2Scheduled() {
  return sched::scheduleAndBind(dfg::paperFig2(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1}},
                                tau::paperLibrary());
}

/// Rebuild `g` with every literal of signal `from` renamed to `to`.  A pure
/// renaming preserves the completeness/determinism partition of a state's
/// outgoing guards, so the mutated machine stays well-formed.
fsm::Guard renameInGuard(const fsm::Guard& g, const std::string& from,
                         const std::string& to) {
  fsm::Guard out = fsm::Guard::never();
  for (const fsm::GuardTerm& term : g.terms()) {
    fsm::Guard product = fsm::Guard::always();
    for (const auto& [sig, positive] : term.literals) {
      product = product.conjoin(
          fsm::Guard::literal(sig == from ? to : sig, positive));
    }
    out = out.disjoin(product);
  }
  return out;
}

/// Copy `src` with input signal `from` renamed to `to` in declarations and
/// every guard.
fsm::Fsm renameFsmInput(const fsm::Fsm& src, const std::string& from,
                        const std::string& to) {
  fsm::Fsm out(src.name());
  for (std::size_t s = 0; s < src.numStates(); ++s) {
    out.addState(src.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : src.inputs()) {
    out.addInput(in == from ? to : in);
  }
  for (const std::string& o : src.outputs()) out.addOutput(o);
  for (const fsm::Transition& t : src.transitions()) {
    out.addTransition(t.from, t.to, renameInGuard(t.guard, from, to),
                      t.outputs);
  }
  out.setInitial(src.initial());
  return out;
}

/// In-place: rewire controller `idx` of `dcu` to wait on `to` wherever it
/// waited on `from` (guards, declared inputs, completion latches).
void rewireWait(fsm::DistributedControlUnit& dcu, std::size_t idx,
                const std::string& from, const std::string& to) {
  fsm::UnitController& ctl = dcu.controllers[idx];
  ctl.fsm = renameFsmInput(ctl.fsm, from, to);
  for (std::string& sig : ctl.latchedInputs) {
    if (sig == from) sig = to;
  }
  std::sort(ctl.latchedInputs.begin(), ctl.latchedInputs.end());
  ctl.latchedInputs.erase(
      std::unique(ctl.latchedInputs.begin(), ctl.latchedInputs.end()),
      ctl.latchedInputs.end());
}

/// Index of the controller latching `signal`; -1 when none does.
int consumerOf(const fsm::DistributedControlUnit& dcu,
               const std::string& signal) {
  for (std::size_t i = 0; i < dcu.controllers.size(); ++i) {
    const auto& latched = dcu.controllers[i].latchedInputs;
    if (std::find(latched.begin(), latched.end(), signal) != latched.end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Copy `src` without transition number `drop`.
fsm::Fsm withoutTransition(const fsm::Fsm& src, std::size_t drop) {
  fsm::Fsm out(src.name());
  for (std::size_t s = 0; s < src.numStates(); ++s) {
    out.addState(src.stateName(static_cast<int>(s)));
  }
  for (const std::string& in : src.inputs()) out.addInput(in);
  for (const std::string& o : src.outputs()) out.addOutput(o);
  for (std::size_t i = 0; i < src.transitions().size(); ++i) {
    if (i == drop) continue;
    const fsm::Transition& t = src.transitions()[i];
    out.addTransition(t.from, t.to, t.guard, t.outputs);
  }
  out.setInitial(src.initial());
  return out;
}

/// Two-state machine that is deterministic, complete, and fully live.
fsm::Fsm toyFsm() {
  fsm::Fsm f("toy");
  const int a = f.addState("A");
  const int b = f.addState("B");
  f.addInput("x");
  f.addOutput("go");
  f.addTransition(a, b, fsm::Guard::literal("x", true), {"go"});
  f.addTransition(a, a, fsm::Guard::literal("x", false), {});
  f.addTransition(b, a, fsm::Guard::always(), {});
  f.setInitial(a);
  return f;
}

// ---- diagnostics engine ---------------------------------------------------

TEST(Diagnostics, RegistryIsSortedAndComplete) {
  const std::vector<RuleInfo>& rules = allRules();
  ASSERT_FALSE(rules.empty());
  // Codes are unique, and ascend within each pass family (the registry is
  // grouped in pass order, not globally lexicographic).
  std::set<std::string> seen;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const std::string code = rules[i].code;
    EXPECT_TRUE(seen.insert(code).second) << "duplicate code " << code;
    if (i > 0 && code.substr(0, 3) == std::string(rules[i - 1].code).substr(0, 3)) {
      EXPECT_LT(std::string(rules[i - 1].code), code);
    }
  }
  for (const RuleInfo& r : rules) {
    const RuleInfo* found = findRule(r.code);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->severity, r.severity);
    EXPECT_NE(std::string(r.summary), "");
  }
  EXPECT_EQ(findRule("XYZ999"), nullptr);
}

TEST(Diagnostics, AddResolvesSeverityFromRegistry) {
  Report r;
  r.add("DFG004", "dfg t", "m1", "dead op");
  r.add("SCH003", "sched t", "mult1", "double booked");
  ASSERT_EQ(r.diagnostics().size(), 2u);
  EXPECT_EQ(r.diagnostics()[0].severity, Severity::Warning);
  EXPECT_EQ(r.diagnostics()[1].severity, Severity::Error);
  EXPECT_TRUE(r.hasErrors());
  EXPECT_EQ(r.errorCount(), 1u);
  EXPECT_TRUE(r.has("SCH003"));
  EXPECT_FALSE(r.has("SCH004"));
  EXPECT_EQ(r.withCode("DFG004").size(), 1u);
  EXPECT_THROW(r.add("NOPE01", "x", "", "unregistered"), Error);
}

TEST(Diagnostics, RenderTextErrorsFirstAndSummary) {
  Report r;
  EXPECT_NE(renderText(r).find("clean"), std::string::npos);
  r.add("DFG004", "dfg t", "m1", "dead op");
  r.add("SCH003", "sched t", "mult1", "double booked");
  const std::string text = renderText(r);
  EXPECT_LT(text.find("SCH003"), text.find("DFG004"));
  EXPECT_NE(text.find("1 error, 1 warning"), std::string::npos);
}

TEST(Diagnostics, RenderJsonShape) {
  Report r;
  r.add("NET002", "rtl \"top\"", "a\nb", "undriven");
  const std::string json = renderJson(r);
  EXPECT_NE(json.find("\"code\":\"NET002\""), std::string::npos);
  EXPECT_NE(json.find("\\\"top\\\""), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":0"), std::string::npos);
}

// ---- properties: the real flow artifacts verify clean ---------------------

TEST(VerifyClean, AllPaperBenchmarksBothStrategies) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (const sched::BindingStrategy strategy :
         {sched::BindingStrategy::LeftEdge,
          sched::BindingStrategy::CliqueCover}) {
      const sched::ScheduledDfg s = sched::scheduleAndBind(
          b.graph, b.allocation, tau::paperLibrary(), strategy);
      const fsm::DistributedControlUnit dcu =
          fsm::optimizeSignals(fsm::buildDistributed(s));
      const fsm::Fsm cent = fsm::buildCentSync(s);
      VerifyOptions vo;
      vo.requestedAllocation = &b.allocation;
      vo.centSync = &cent;
      const Report report = verifyFlow(s, dcu, vo);
      EXPECT_FALSE(report.hasErrors())
          << b.name << " strategy " << static_cast<int>(strategy) << ":\n"
          << renderText(report);
    }
  }
}

TEST(VerifyClean, UnoptimizedControllersVerifyClean) {
  // Without Fig.-7 signal pruning every CCO_* stays a controller output; the
  // emitted top must not grow dangling pulse wires (regression: the emitter
  // used to declare a _pulse wire even for unconsumed signals -> NET007).
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const vsim::Design design =
      vsim::parseDesign(rtl::emitPackage(dcu, "fig2_ctrl"));
  Report report;
  lintRtl(design, report);
  EXPECT_FALSE(report.hasErrors()) << renderText(report);
  EXPECT_FALSE(report.has("NET007")) << renderText(report);
  EXPECT_FALSE(report.has("NET002")) << renderText(report);
}

TEST(VerifyClean, FlowGateReportsCleanDiagnostics) {
  core::FlowConfig cfg;
  cfg.allocation = {{ResourceClass::Multiplier, 2},
                    {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}};
  const core::FlowResult r = core::runFlow(dfg::diffeq(), cfg);
  EXPECT_FALSE(r.diagnostics.hasErrors()) << renderText(r.diagnostics);
}

// ---- DFG mutations --------------------------------------------------------

TEST(DfgLint, RedundantScheduleArcIsDFG005) {
  dfg::Dfg g = test::diamond();
  // s already data-depends on m1; the arc restates it.
  g.addScheduleArc(g.findByName("m1"), g.findByName("s"));
  Report report;
  lintDfg(g, report);
  EXPECT_TRUE(report.has("DFG005")) << renderText(report);
}

TEST(DfgLint, DeadOpAndUnusedInput) {
  dfg::Dfg g = test::diamond();
  const dfg::NodeId a = g.findByName("a");
  const dfg::NodeId b = g.findByName("b");
  g.addOp(dfg::OpKind::Mul, {a, b}, "dead");
  g.addInput("z");
  Report report;
  lintDfg(g, report);
  EXPECT_TRUE(report.has("DFG004")) << renderText(report);
  EXPECT_TRUE(report.has("DFG007")) << renderText(report);
  EXPECT_FALSE(report.hasErrors()) << renderText(report);
}

// ---- schedule / binding mutations -----------------------------------------

TEST(SchedLint, DroppedSerializationArcIsSCH008) {
  const sched::ScheduledDfg s = sched::scheduleAndBind(
      dfg::fir(3),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  ASSERT_FALSE(s.graph.scheduleArcs().empty());
  bool caught = false;
  for (std::size_t drop = 0;
       drop < s.graph.scheduleArcs().size() && !caught; ++drop) {
    sched::ScheduledDfg mutated = s;
    const std::vector<dfg::ScheduleArc> arcs = mutated.graph.scheduleArcs();
    mutated.graph.clearScheduleArcs();
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (i != drop) mutated.graph.addScheduleArc(arcs[i].from, arcs[i].to);
    }
    Report report;
    lintSchedule(mutated, nullptr, report);
    caught = report.has("SCH008");
  }
  EXPECT_TRUE(caught)
      << "no dropped serialization arc produced SCH008 on fir(3)";
}

TEST(SchedLint, DoubleBookedUnitIsSCH003) {
  sched::ScheduledDfg s = fig2Scheduled();
  // Fig. 2(a) step T0 holds the two independent mults O0 and O3; forcing
  // both onto O0's unit double-books it in that step.
  const dfg::NodeId o0 = s.graph.findByName("O0");
  const dfg::NodeId o3 = s.graph.findByName("O3");
  ASSERT_EQ(s.steps.stepOf[o0], s.steps.stepOf[o3]);
  const int target = s.binding.unitOf(o0);
  ASSERT_NE(target, s.binding.unitOf(o3));
  sched::Binding mutated;
  for (const sched::UnitInstance& u : s.binding.units()) {
    mutated.addUnit(u.cls, u.index);
  }
  for (int unit = 0; unit < static_cast<int>(s.binding.numUnits()); ++unit) {
    for (const dfg::NodeId op : s.binding.sequenceOf(unit)) {
      if (op == o3) continue;
      mutated.assign(op, unit);
      if (op == o0) mutated.assign(o3, target);
    }
  }
  s.binding = mutated;
  Report report;
  lintSchedule(s, nullptr, report);
  EXPECT_TRUE(report.has("SCH003")) << renderText(report);
}

TEST(SchedLint, WrongClassBindingIsSCH002) {
  sched::ScheduledDfg s = fig2Scheduled();
  const dfg::NodeId o1 = s.graph.findByName("O1");  // an addition
  sched::Binding mutated;
  for (const sched::UnitInstance& u : s.binding.units()) {
    mutated.addUnit(u.cls, u.index);
  }
  int multUnit = -1;
  for (int unit = 0; unit < static_cast<int>(s.binding.numUnits()); ++unit) {
    if (s.binding.unit(unit).cls == ResourceClass::Multiplier) multUnit = unit;
  }
  ASSERT_GE(multUnit, 0);
  for (int unit = 0; unit < static_cast<int>(s.binding.numUnits()); ++unit) {
    for (const dfg::NodeId op : s.binding.sequenceOf(unit)) {
      mutated.assign(op, op == o1 ? multUnit : unit);
    }
  }
  s.binding = mutated;
  Report report;
  lintSchedule(s, nullptr, report);
  EXPECT_TRUE(report.has("SCH002")) << renderText(report);
}

TEST(SchedLint, MissingControlStepIsSCH011) {
  sched::ScheduledDfg s = fig2Scheduled();
  s.steps.stepOf[s.graph.findByName("O1")] = -1;
  Report report;
  lintSchedule(s, nullptr, report);
  EXPECT_TRUE(report.has("SCH011")) << renderText(report);
}

TEST(SchedLint, RegisterAllocationOfBenchmarksIsClean) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    const sched::ScheduledDfg s = sched::scheduleAndBind(
        b.graph, b.allocation, tau::paperLibrary());
    Report report;
    lintRegisterAllocation(s, report);
    EXPECT_FALSE(report.hasErrors()) << b.name << ":\n" << renderText(report);
  }
}

// ---- FSM mutations --------------------------------------------------------

TEST(FsmCheck, WellFormedMachineIsClean) {
  Report report;
  checkFsm(toyFsm(), report);
  EXPECT_TRUE(report.diagnostics().empty()) << renderText(report);
}

TEST(FsmCheck, DeletedTransitionIsFSM003WithWitness) {
  const fsm::Fsm f = toyFsm();
  // Delete the x=0 self-loop on A: the assignment x=0 then enables nothing.
  std::size_t drop = f.transitions().size();
  for (std::size_t i = 0; i < f.transitions().size(); ++i) {
    const fsm::Transition& t = f.transitions()[i];
    if (t.from == 0 && t.to == 0) drop = i;
  }
  ASSERT_LT(drop, f.transitions().size());
  Report report;
  checkFsm(withoutTransition(f, drop), report);
  ASSERT_TRUE(report.has("FSM003")) << renderText(report);
  EXPECT_NE(report.withCode("FSM003")[0].message.find("x"),
            std::string::npos);
}

TEST(FsmCheck, DeletedControllerTransitionIsFSM003) {
  // The same mutation on a real Algorithm-1 controller: drop a completing
  // transition of the first multi-transition machine.
  const fsm::DistributedControlUnit dcu =
      fsm::buildDistributed(fig2Scheduled());
  for (const fsm::UnitController& ctl : dcu.controllers) {
    if (ctl.fsm.transitions().size() < 2) continue;
    Report report;
    checkFsm(withoutTransition(ctl.fsm, 0), report);
    EXPECT_TRUE(report.has("FSM003") || report.has("FSM002"))
        << ctl.fsm.name() << ":\n" << renderText(report);
    return;
  }
  FAIL() << "no multi-transition controller in fig2";
}

TEST(FsmCheck, OverlappingGuardsAreFSM004) {
  fsm::Fsm f = toyFsm();
  f.addTransition(0, 1, fsm::Guard::literal("x", true), {});
  Report report;
  checkFsm(f, report);
  EXPECT_TRUE(report.has("FSM004")) << renderText(report);
}

TEST(FsmCheck, StructuralRules) {
  fsm::Fsm f = toyFsm();
  const int c = f.addState("C");       // unreachable, no outgoing
  f.addInput("y");                     // read by no guard
  f.addOutput("dead");                 // never asserted
  f.addTransition(1, 1, fsm::Guard::never(), {});  // can never fire
  Report report;
  checkFsm(f, report);
  EXPECT_TRUE(report.has("FSM001")) << renderText(report);
  EXPECT_TRUE(report.has("FSM002")) << renderText(report);
  EXPECT_TRUE(report.has("FSM005")) << renderText(report);
  EXPECT_TRUE(report.has("FSM006")) << renderText(report);
  EXPECT_TRUE(report.has("FSM007")) << renderText(report);
  EXPECT_EQ(f.stateName(c), "C");
}

TEST(FsmCheck, GuardHelpers) {
  const fsm::Guard x = fsm::Guard::literal("x", true);
  const fsm::Guard notX = fsm::Guard::literal("x", false);
  EXPECT_FALSE(guardsOverlap(x, notX));
  EXPECT_TRUE(guardsOverlap(x, fsm::Guard::always()));
  EXPECT_TRUE(guardsOverlap(fsm::Guard::allOf({"a", "b"}),
                            fsm::Guard::notAllOf({"b", "c"})));

  std::map<std::string, bool> witness;
  EXPECT_TRUE(termsAreTautology(
      {x.terms()[0], notX.terms()[0]}, nullptr));
  EXPECT_FALSE(termsAreTautology({x.terms()[0]}, &witness));
  EXPECT_EQ(witness.at("x"), false);
}

// ---- model-check mutations ------------------------------------------------

TEST(ModelCheck, BenchmarkControllersAreDeadlockFree) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const fsm::Fsm cent = fsm::buildCentSync(s);
  Report report;
  modelCheckControllers(dcu, s, cent, report);
  EXPECT_FALSE(report.hasErrors()) << renderText(report);
  EXPECT_FALSE(report.has("MDL007")) << renderText(report);
}

TEST(ModelCheck, CircularWaitIsMDL002) {
  const sched::ScheduledDfg s = fig2Scheduled();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // O1 (adder) waits on CCO_O0; O2 (a mult) waits on CCO_O1.  Rewiring the
  // adder to wait on CCO_O2 instead closes the cycle O1 -> O2 -> O1: neither
  // controller can ever complete its iteration.
  const int adder = consumerOf(dcu, "CCO_O0");
  ASSERT_GE(adder, 0);
  ASSERT_TRUE(dcu.producerOf.contains("CCO_O2"));
  ASSERT_NE(dcu.producerOf.at("CCO_O2"), adder);
  rewireWait(dcu, static_cast<std::size_t>(adder), "CCO_O0", "CCO_O2");
  Report report;
  modelCheckDistributed(dcu, s, report);
  EXPECT_TRUE(report.has("MDL002")) << renderText(report);
}

TEST(ModelCheck, DroppedPredecessorWaitIsMDL004) {
  const sched::ScheduledDfg s = fig2Scheduled();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  // Rewire the adder to wait on CCO_O3 (the other first-step mult) instead
  // of its true data predecessor O0: on runs where O3's unit finishes short
  // while O0's runs long, O1 completes before O0 -- a causality violation.
  const int adder = consumerOf(dcu, "CCO_O0");
  ASSERT_GE(adder, 0);
  rewireWait(dcu, static_cast<std::size_t>(adder), "CCO_O0", "CCO_O3");
  Report report;
  modelCheckDistributed(dcu, s, report);
  EXPECT_TRUE(report.has("MDL004")) << renderText(report);
  EXPECT_FALSE(report.has("MDL002")) << renderText(report);
}

TEST(ModelCheck, MismatchedBaselineIsMDL006) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const sched::ScheduledDfg other = sched::scheduleAndBind(
      dfg::fir(3),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  const fsm::Fsm wrongBaseline = fsm::buildCentSync(other);
  Report report;
  modelCheckControllers(dcu, s, wrongBaseline, report);
  EXPECT_TRUE(report.has("MDL006")) << renderText(report);
}

TEST(ModelCheck, ExceededBoundDegradesToMDL007) {
  const sched::ScheduledDfg s = fig2Scheduled();
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  ModelCheckOptions options;
  options.maxStates = 1;
  Report report;
  modelCheckDistributed(dcu, s, report, options);
  EXPECT_TRUE(report.has("MDL007")) << renderText(report);
  EXPECT_FALSE(report.hasErrors()) << renderText(report);
}

// ---- netlist / RTL mutations ----------------------------------------------

TEST(NetlistLint, DeadGateAndUnusedInput) {
  netlist::Netlist net("toy");
  const netlist::NetId a = net.addInput("a");
  const netlist::NetId b = net.addInput("b");
  net.addInput("unused");
  net.addAnd({a, b});  // drives nothing, never marked output
  const netlist::NetId keep = net.addOr({a, b});
  net.markOutput("y", keep);
  Report report;
  lintNetlist(net, report);
  EXPECT_TRUE(report.has("NET006")) << renderText(report);
  EXPECT_TRUE(report.has("NET007")) << renderText(report);
}

TEST(NetlistLint, ControllerNetlistsAreClean) {
  const fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(fig2Scheduled()));
  Report report;
  checkControlLoops(dcu, "fig2", report);
  EXPECT_FALSE(report.has("NET001")) << renderText(report);
}

TEST(RtlLint, UndrivenNetIsNET002) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  output wire y\n"
      ");\n"
      "  wire floating;\n"
      "  assign y = a & floating;\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  ASSERT_TRUE(report.has("NET002")) << renderText(report);
  EXPECT_EQ(report.withCode("NET002")[0].where, "floating");
}

TEST(RtlLint, ShortedNetIsNET003) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  input  wire b,\n"
      "  output wire y\n"
      ");\n"
      "  assign y = a;\n"
      "  assign y = b;\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  ASSERT_TRUE(report.has("NET003")) << renderText(report);
  EXPECT_EQ(report.withCode("NET003")[0].where, "y");
}

TEST(RtlLint, CombinationalCycleIsNET001) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  output wire y\n"
      ");\n"
      "  wire p;\n"
      "  wire q;\n"
      "  assign p = q & a;\n"
      "  assign q = p;\n"
      "  assign y = q;\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  EXPECT_TRUE(report.has("NET001")) << renderText(report);
}

TEST(RtlLint, UnknownModuleIsNET005) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  output wire y\n"
      ");\n"
      "  ghost u_g (\n"
      "    .p(a), .q(y)\n"
      "  );\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  EXPECT_TRUE(report.has("NET005")) << renderText(report);
}

TEST(RtlLint, ConstantTooWideIsNET004) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  output reg  y\n"
      ");\n"
      "  reg [1:0] state;\n"
      "  always @* begin\n"
      "    if (state == 2'd3) y = a;\n"
      "    else y = 1'b0;\n"
      "    state = 2'd1;\n"
      "    if (a == 1'b1) state = 3'd7;\n"
      "  end\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  ASSERT_TRUE(report.has("NET004")) << renderText(report);
  EXPECT_EQ(report.withCode("NET004")[0].where, "state");
}

TEST(RtlLint, MalformedGateIsNET008) {
  const vsim::Design d = vsim::parseDesign(
      "module t (\n"
      "  input  wire a,\n"
      "  output wire y\n"
      ");\n"
      "  and g1 (y, a);\n"
      "endmodule\n");
  Report report;
  lintRtl(d, report);
  EXPECT_TRUE(report.has("NET008")) << renderText(report);
}

TEST(RtlLint, EmittedPackagesAreCleanForAllBenchmarks) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    const sched::ScheduledDfg s = sched::scheduleAndBind(
        b.graph, b.allocation, tau::paperLibrary());
    const fsm::DistributedControlUnit dcu =
        fsm::optimizeSignals(fsm::buildDistributed(s));
    const vsim::Design design = vsim::parseDesign(
        rtl::emitPackage(dcu, "tauhls_" + s.graph.name() + "_ctrl"));
    Report report;
    lintRtl(design, report);
    EXPECT_FALSE(report.hasErrors()) << b.name << ":\n" << renderText(report);
  }
}

}  // namespace
}  // namespace tauhls::verify
