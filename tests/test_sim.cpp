// Simulation-layer tests, including the central integration property of the
// repository: the generated FSMs, interpreted cycle by cycle with completion
// latches, reproduce the abstract makespan model exactly -- for every operand
// class assignment -- and the product machine (CENT-FSM) is behaviourally
// equivalent to the distributed controllers.
#include <gtest/gtest.h>

#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "fsm/cent_sync.hpp"
#include "fsm/distributed.hpp"
#include "fsm/product.hpp"
#include "sim/interp.hpp"
#include "sim/stats.hpp"
#include "testutil.hpp"

namespace tauhls::sim {
namespace {

using dfg::ResourceClass;
using sched::Allocation;
using sched::ScheduledDfg;

ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

TEST(Classes, BuildersAndMask) {
  ScheduledDfg s = scheduledDiffeq();
  EXPECT_EQ(tauOps(s).size(), 6u);  // the six multiplications
  OperandClasses shortAll = allShort(s);
  OperandClasses longAll = allLong(s);
  for (dfg::NodeId v : tauOps(s)) {
    EXPECT_TRUE(shortAll.isShort(v));
    EXPECT_FALSE(longAll.isShort(v));
  }
  OperandClasses m = fromMask(s, 0b000101);
  auto taus = tauOps(s);
  EXPECT_TRUE(m.isShort(taus[0]));
  EXPECT_FALSE(m.isShort(taus[1]));
  EXPECT_TRUE(m.isShort(taus[2]));
  EXPECT_FALSE(m.isShort(taus[5]));
}

TEST(Classes, RandomClassesRespectExtremes) {
  ScheduledDfg s = scheduledDiffeq();
  OperandClasses all1 = randomClasses(s, 1.0, 7);
  OperandClasses all0 = randomClasses(s, 0.0, 7);
  for (dfg::NodeId v : tauOps(s)) {
    EXPECT_TRUE(all1.isShort(v));
    EXPECT_FALSE(all0.isShort(v));
  }
}

TEST(Makespan, ChainIsSerial) {
  dfg::Dfg g = test::mulChain(4);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 1}}, tau::paperLibrary());
  EXPECT_EQ(distributedMakespanCycles(s, allShort(s)), 4);
  EXPECT_EQ(distributedMakespanCycles(s, allLong(s)), 8);
}

TEST(Makespan, ParallelOpsOverlapByAllocation) {
  dfg::Dfg g = test::parallelMuls(4);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 2}}, tau::paperLibrary());
  EXPECT_EQ(distributedMakespanCycles(s, allShort(s)), 2);
  EXPECT_EQ(distributedMakespanCycles(s, allLong(s)), 4);
}

TEST(Makespan, SyncChargesWholeStepForOneSlowOp) {
  // Two independent muls on two units in one step: if only one is LD, sync
  // still spends 2 cycles while distributed lets the other retire in 1.
  dfg::Dfg g = test::parallelMuls(2);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 2}}, tau::paperLibrary());
  OperandClasses oneSlow = allShort(s);
  oneSlow.shortClass[tauOps(s)[0]] = false;
  EXPECT_EQ(syncMakespanCycles(s, oneSlow), 2);
  EXPECT_EQ(distributedMakespanCycles(s, oneSlow), 2);  // the slow one itself
  // ...but with a dependent consumer of the fast op, distributed wins:
  dfg::Dfg g2("mix");
  auto a = g2.addInput("a");
  auto b = g2.addInput("b");
  auto m0 = g2.addOp(dfg::OpKind::Mul, {a, b}, "m0");
  auto m1 = g2.addOp(dfg::OpKind::Mul, {a, b}, "m1");
  auto a0 = g2.addOp(dfg::OpKind::Add, {m0, a}, "a0");
  auto s0 = g2.addOp(dfg::OpKind::Add, {a0, m1}, "s0");
  g2.markOutput(s0);
  ScheduledDfg sg2 = sched::scheduleAndBind(
      g2,
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  OperandClasses m1Slow = allShort(sg2);
  m1Slow.shortClass[g2.findByName("m1")] = false;
  // Distributed: m0 fast (cycle 0), a0 cycle 1, m1 finishes cycle 1,
  // s0 cycle 2 -> 3 cycles.  Sync: step0 takes 2, then a0, then s0 -> 4.
  EXPECT_EQ(distributedMakespanCycles(sg2, m1Slow), 3);
  EXPECT_EQ(syncMakespanCycles(sg2, m1Slow), 4);
}

TEST(Makespan, FinishCyclesRespectDependences) {
  ScheduledDfg s = scheduledDiffeq();
  OperandClasses classes = randomClasses(s, 0.5, 11);
  std::vector<int> finish = distributedFinishCycles(s, classes);
  for (dfg::NodeId v : s.graph.opIds()) {
    for (dfg::NodeId p : s.graph.dataPredecessors(v)) {
      if (s.graph.isOp(p)) {
        EXPECT_GT(finish[v] - s.opCycles(v, classes.isShort(v)) + 1, finish[p]);
      }
    }
  }
}

TEST(Makespan, Fig2RangeMatchesPaper) {
  ScheduledDfg s = sched::scheduleAndBind(
      dfg::paperFig2(),
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  // Fig. 2(c): "a resulting system latency varies between 4 and 6 clock
  // cycles" for the synchronized machine.
  EXPECT_EQ(syncMakespanCycles(s, allShort(s)), 4);
  EXPECT_EQ(syncMakespanCycles(s, allLong(s)), 6);
  EXPECT_EQ(distributedMakespanCycles(s, allShort(s)), 4);
  EXPECT_EQ(distributedMakespanCycles(s, allLong(s)), 6);
}

class MaskProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaskProperty, DistributedNeverSlowerThanSyncOnRandomGraphs) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam();
  spec.numOps = 8 + static_cast<int>(GetParam() % 10);
  dfg::Dfg g = dfg::randomDfg(spec);
  ScheduledDfg s = sched::scheduleAndBind(g,
                                          Allocation{{ResourceClass::Multiplier, 2},
                                                     {ResourceClass::Adder, 1},
                                                     {ResourceClass::Subtractor, 1}},
                                          tau::paperLibrary());
  const int n = static_cast<int>(tauOps(s).size());
  if (n > 12) GTEST_SKIP() << "mask space too large for this sweep";
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    OperandClasses c = fromMask(s, mask);
    EXPECT_LE(distributedMakespanCycles(s, c), syncMakespanCycles(s, c))
        << "mask=" << mask;
  }
}

TEST_P(MaskProperty, MakespanMonotoneInOperandClasses) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 131;
  spec.numOps = 10;
  dfg::Dfg g = dfg::randomDfg(spec);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}},
      tau::paperLibrary());
  const auto taus = tauOps(s);
  const int n = static_cast<int>(taus.size());
  if (n == 0 || n > 10) GTEST_SKIP();
  // Flipping any single op from SD to LD never decreases the makespan.
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    OperandClasses c = fromMask(s, mask);
    const int base = distributedMakespanCycles(s, c);
    for (int i = 0; i < n; ++i) {
      if (!((mask >> i) & 1)) continue;
      OperandClasses slower = fromMask(s, mask & ~(std::uint64_t{1} << i));
      EXPECT_GE(distributedMakespanCycles(s, slower), base);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Interp, DistributedFsmMatchesAbstractMakespanOnDiffeq) {
  ScheduledDfg s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const int n = static_cast<int>(tauOps(s).size());
  ASSERT_LE(n, 12);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    OperandClasses c = fromMask(s, mask);
    SimTrace trace = runDistributed(dcu, s, c);
    EXPECT_EQ(trace.latencyCycles, distributedMakespanCycles(s, c))
        << "mask=" << mask;
  }
}

TEST(Interp, CentSyncFsmMatchesAbstractMakespanOnDiffeq) {
  ScheduledDfg s = scheduledDiffeq();
  fsm::Fsm sync = fsm::buildCentSync(s);
  const int n = static_cast<int>(tauOps(s).size());
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    OperandClasses c = fromMask(s, mask);
    SimTrace trace = runCentSync(sync, s, c);
    EXPECT_EQ(trace.latencyCycles, syncMakespanCycles(s, c)) << "mask=" << mask;
  }
}

TEST(Interp, TraceSignalsAreOrdered) {
  ScheduledDfg s = scheduledDiffeq();
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  SimTrace trace = runDistributed(dcu, s, allShort(s));
  // OF of an op precedes (or coincides with) its RE; RE of a predecessor
  // strictly precedes RE of its consumer.
  for (dfg::NodeId v : s.graph.opIds()) {
    const std::string& name = s.graph.node(v).name;
    const int of = trace.firstCycle("OF_" + name);
    const int re = trace.firstCycle("RE_" + name);
    ASSERT_NE(of, -1) << name;
    ASSERT_NE(re, -1) << name;
    EXPECT_LE(of, re);
    for (dfg::NodeId p : s.graph.dataPredecessors(v)) {
      if (s.graph.isOp(p)) {
        EXPECT_LT(trace.firstCycle("RE_" + s.graph.node(p).name), re);
      }
    }
  }
}

class InterpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InterpProperty, FsmLatencyEqualsAbstractOnRandomGraphsAndClasses) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 7919;
  spec.numOps = 6 + static_cast<int>(GetParam() % 12);
  dfg::Dfg g = dfg::randomDfg(spec);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}},
      tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  fsm::Fsm sync = fsm::buildCentSync(s);
  for (std::uint64_t trial = 0; trial < 12; ++trial) {
    OperandClasses c = randomClasses(s, 0.6, GetParam() * 100 + trial);
    EXPECT_EQ(runDistributed(dcu, s, c).latencyCycles,
              distributedMakespanCycles(s, c));
    EXPECT_EQ(runCentSync(sync, s, c).latencyCycles, syncMakespanCycles(s, c));
  }
}

TEST_P(InterpProperty, ProductBehaviourallyEquivalentToDistributed) {
  dfg::RandomDfgSpec spec;
  spec.seed = GetParam() * 104729;
  spec.numOps = 5 + static_cast<int>(GetParam() % 6);
  dfg::Dfg g = dfg::randomDfg(spec);
  ScheduledDfg s = sched::scheduleAndBind(
      g, Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1},
                    {ResourceClass::Subtractor, 1}},
      tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  fsm::Fsm product = fsm::buildProduct(dcu);
  EXPECT_EQ(compareProductToDistributed(dcu, product, GetParam(), 6, 40), -1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Makespan, EngineMatchesFreeFunctions) {
  ScheduledDfg s = scheduledDiffeq();
  const MakespanEngine engine(s);
  const int n = static_cast<int>(tauOps(s).size());
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    OperandClasses c = fromMask(s, mask);
    EXPECT_EQ(engine.distributedCycles(c), distributedMakespanCycles(s, c));
    EXPECT_EQ(engine.syncCycles(c), syncMakespanCycles(s, c));
  }
}

TEST(Stats, BestAndWorstBracketAverages) {
  ScheduledDfg s = scheduledDiffeq();
  for (ControlStyle style : {ControlStyle::Distributed, ControlStyle::CentSync}) {
    const int best = bestCaseCycles(s, style);
    const int worst = worstCaseCycles(s, style);
    EXPECT_LT(best, worst);
    for (double p : {0.9, 0.7, 0.5, 0.1}) {
      const double avg = averageCyclesExact(s, style, p);
      EXPECT_GE(avg, best);
      EXPECT_LE(avg, worst);
    }
  }
}

TEST(Stats, ExactExtremesMatchMakespan) {
  ScheduledDfg s = scheduledDiffeq();
  EXPECT_DOUBLE_EQ(averageCyclesExact(s, ControlStyle::Distributed, 1.0),
                   bestCaseCycles(s, ControlStyle::Distributed));
  EXPECT_DOUBLE_EQ(averageCyclesExact(s, ControlStyle::Distributed, 0.0),
                   worstCaseCycles(s, ControlStyle::Distributed));
}

TEST(Stats, MonteCarloAgreesWithExact) {
  ScheduledDfg s = scheduledDiffeq();
  for (double p : {0.9, 0.5}) {
    const double exact = averageCyclesExact(s, ControlStyle::Distributed, p);
    const double mc =
        averageCyclesMonteCarlo(s, ControlStyle::Distributed, p, 20000, 42);
    EXPECT_NEAR(mc, exact, 0.05) << "p=" << p;
  }
}

TEST(Stats, AverageMonotoneInP) {
  ScheduledDfg s = scheduledDiffeq();
  double prev = 1e9;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double avg = averageCyclesExact(s, ControlStyle::Distributed, p);
    EXPECT_LT(avg, prev);
    prev = avg;
  }
}

TEST(Stats, ComparisonReportsEnhancement) {
  ScheduledDfg s = scheduledDiffeq();
  LatencyComparison cmp = compareLatencies(s, {0.9, 0.7, 0.5});
  ASSERT_EQ(cmp.enhancementPercent.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(cmp.enhancementPercent[i], 0.0);
    EXPECT_LE(cmp.dist.averageNs[i], cmp.tau.averageNs[i]);
  }
  // ns scaling: multiples of the 15 ns clock at the extremes.
  EXPECT_DOUBLE_EQ(cmp.dist.bestNs,
                   bestCaseCycles(s, ControlStyle::Distributed) * 15.0);
}

}  // namespace
}  // namespace tauhls::sim
