#include <gtest/gtest.h>
#include "common/error.hpp"

#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"

namespace tauhls::dfg {
namespace {

TEST(Benchmarks, FirOpCounts) {
  for (int taps : {1, 3, 5, 8}) {
    Dfg g = fir(taps);
    EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(),
              static_cast<std::size_t>(taps));
    EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(),
              static_cast<std::size_t>(taps - 1));
    EXPECT_NO_THROW(g.validate());
  }
}

TEST(Benchmarks, FirCriticalPath) {
  // Serial adder chain: 1 mult + (taps-1) adds on the longest path.
  Dfg g = fir(5);
  EXPECT_EQ(criticalPathLength(g, unitDurations(g)), 5);
}

TEST(Benchmarks, IirOpCounts) {
  Dfg g2 = iir(2);
  EXPECT_EQ(g2.opsOfClass(ResourceClass::Multiplier).size(), 5u);
  EXPECT_EQ(g2.opsOfClass(ResourceClass::Adder).size(), 4u);
  Dfg g3 = iir(3);
  EXPECT_EQ(g3.opsOfClass(ResourceClass::Multiplier).size(), 7u);
  EXPECT_EQ(g3.opsOfClass(ResourceClass::Adder).size(), 6u);
}

TEST(Benchmarks, DiffeqMatchesHal) {
  Dfg g = diffeq();
  EXPECT_EQ(g.numOps(), 11u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 6u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 2u);
  // 2 subtractions + 1 comparison share the subtractor class.
  EXPECT_EQ(g.opsOfClass(ResourceClass::Subtractor).size(), 3u);
  EXPECT_EQ(g.outputs().size(), 3u);
  // Longest dependency chain: m1/m2 -> m3 -> s1 -> u1 (4 ops).
  EXPECT_EQ(criticalPathLength(g, unitDurations(g)), 4);
}

TEST(Benchmarks, ArLatticeStructure) {
  Dfg g = arLattice();
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 16u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 8u);
  // 4 stages x (mult then add) = 8 ops on the critical path.
  EXPECT_EQ(criticalPathLength(g, unitDurations(g)), 8);
}

TEST(Benchmarks, EwfOpMix) {
  Dfg g = ewf();
  EXPECT_EQ(g.numOps(), 34u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 8u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 26u);
}

TEST(Benchmarks, FftStructure) {
  for (int stages : {1, 2, 3, 4}) {
    Dfg g = fft(stages);
    const int n = 1 << stages;
    const std::size_t butterflies =
        static_cast<std::size_t>(stages) * static_cast<std::size_t>(n) / 2;
    EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), butterflies);
    EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), butterflies);
    EXPECT_EQ(g.opsOfClass(ResourceClass::Subtractor).size(), butterflies);
    EXPECT_EQ(g.outputs().size(), static_cast<std::size_t>(n));
    EXPECT_NO_THROW(g.validate());
    // Critical path: each stage adds mul + add/sub (2 ops).
    EXPECT_EQ(criticalPathLength(g, unitDurations(g)), 2 * stages);
  }
  EXPECT_THROW(fft(0), tauhls::Error);
}

TEST(Benchmarks, Dct8Structure) {
  Dfg g = dct8();
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 11u);
  EXPECT_EQ(g.numOps(), 37u);
  EXPECT_EQ(g.outputs().size(), 8u);
  EXPECT_NO_THROW(g.validate());
  // Every DCT output depends on some input.
  for (NodeId y : g.outputs()) {
    bool reachable = false;
    for (NodeId x : g.inputIds()) reachable |= reaches(g, x, y);
    EXPECT_TRUE(reachable) << g.node(y).name;
  }
}

TEST(Benchmarks, PaperFig2Shape) {
  Dfg g = paperFig2();
  EXPECT_EQ(g.numOps(), 6u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 4u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 2u);
  // O1 depends on O0 but not on O3 (the concurrency the paper discusses).
  NodeId o0 = g.findByName("O0");
  NodeId o1 = g.findByName("O1");
  NodeId o3 = g.findByName("O3");
  EXPECT_TRUE(reaches(g, o0, o1));
  EXPECT_FALSE(reaches(g, o3, o1));
  EXPECT_EQ(criticalPathLength(g, unitDurations(g)), 4);
}

TEST(Benchmarks, PaperFig3Shape) {
  Dfg g = paperFig3();
  EXPECT_EQ(g.numOps(), 9u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Multiplier).size(), 5u);
  EXPECT_EQ(g.opsOfClass(ResourceClass::Adder).size(), 4u);
  // Mult dependency cliques: O0->O1, O6->(O7)->O8, O4 isolated.
  EXPECT_TRUE(reaches(g, g.findByName("O0"), g.findByName("O1")));
  EXPECT_TRUE(reaches(g, g.findByName("O6"), g.findByName("O8")));
  EXPECT_FALSE(reaches(g, g.findByName("O0"), g.findByName("O4")));
  EXPECT_FALSE(reaches(g, g.findByName("O4"), g.findByName("O8")));
}

TEST(Benchmarks, PaperSuiteAllocationsMatchTable2) {
  auto suite = paperTable2Suite();
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].name, "3rd FIR");
  EXPECT_EQ(suite[0].allocation.at(ResourceClass::Multiplier), 2);
  EXPECT_EQ(suite[0].allocation.at(ResourceClass::Adder), 1);
  EXPECT_EQ(suite[3].name, "3rd IIR");
  EXPECT_EQ(suite[3].allocation.at(ResourceClass::Multiplier), 3);
  EXPECT_EQ(suite[3].allocation.at(ResourceClass::Adder), 2);
  EXPECT_EQ(suite[4].allocation.at(ResourceClass::Subtractor), 1);
  EXPECT_EQ(suite[5].allocation.at(ResourceClass::Multiplier), 4);
  for (const auto& b : suite) {
    EXPECT_NO_THROW(b.graph.validate()) << b.name;
    // Every benchmark must actually need its allocation: at least as many ops
    // of each allocated class as units requested.
    for (const auto& [cls, count] : b.allocation) {
      EXPECT_GE(b.graph.opsOfClass(cls).size(), static_cast<std::size_t>(count))
          << b.name;
    }
  }
}

}  // namespace
}  // namespace tauhls::dfg
