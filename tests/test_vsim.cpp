// The in-repo Verilog simulator (vsim) and the RTL co-simulation loop:
// emitted Verilog, parsed back and cycle-simulated, must match the FSM
// interpreter signal-for-signal.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"
#include "netlist/build.hpp"
#include "netlist/emit.hpp"
#include "rtl/verilog.hpp"
#include "sim/interp.hpp"
#include "vsim/lexer.hpp"
#include "vsim/simulate.hpp"

namespace tauhls::vsim {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

TEST(Lexer, TokensAndLiterals) {
  auto toks = tokenize("module m; wire [2:0] x = 3'd5; // comment\nassign y = 1'b1 & 8'hFF;");
  ASSERT_GT(toks.size(), 5u);
  bool saw5 = false;
  bool saw255 = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::Number && t.value == 5) saw5 = true;
    if (t.kind == TokKind::Number && t.value == 255) saw255 = true;
  }
  EXPECT_TRUE(saw5);
  EXPECT_TRUE(saw255);
  EXPECT_THROW(tokenize("wire x = 3'q5;"), Error);
}

TEST(Parser, SmallModule) {
  const std::string src =
      "module toy (\n"
      "  input  wire clk,\n"
      "  input  wire a,\n"
      "  output reg  q\n"
      ");\n"
      "  localparam [0:0] ST = 1'd0;\n"
      "  reg [1:0] s, s_next;\n"
      "  wire w;\n"
      "  assign w = a | q;\n"
      "  always @(posedge clk) begin\n"
      "    s <= s_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    q = 1'b0;\n"
      "    if (a && !w) q = 1'b1; else q = 1'b0;\n"
      "    case (s)\n"
      "      ST: s_next = 2'd1;\n"
      "      default: s_next = 2'd0;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  Design d = parseDesign(src);
  ASSERT_EQ(d.modules.size(), 1u);
  const Module& m = d.modules[0];
  EXPECT_EQ(m.name, "toy");
  EXPECT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.localparams.at("ST"), 0u);
  EXPECT_EQ(m.nets.size(), 3u);
  EXPECT_EQ(m.always.size(), 2u);
  EXPECT_TRUE(m.always[0].sequential);
  EXPECT_FALSE(m.always[1].sequential);
}

TEST(Parser, RejectsOutOfSubset) {
  EXPECT_THROW(parseDesign("module m (; endmodule"), Error);
  EXPECT_THROW(parseDesign("module m (input wire a); frobnicate; endmodule"),
               Error);
}

TEST(Simulate, CounterModule) {
  const std::string src =
      "module counter (\n"
      "  input  wire clk,\n"
      "  input  wire rst,\n"
      "  output reg  tick\n"
      ");\n"
      "  reg [1:0] n, n_next;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) n <= 2'd0; else n <= n_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    tick = 1'b0;\n"
      "    case (n)\n"
      "      2'd3: begin n_next = 2'd0; tick = 1'b1; end\n"
      "      default: n_next = n + 1'b1;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  // NOTE: '+' is outside the subset -- rewrite with explicit cases instead.
  (void)src;
  const std::string src2 =
      "module counter (\n"
      "  input  wire clk,\n"
      "  input  wire rst,\n"
      "  output reg  tick\n"
      ");\n"
      "  reg [1:0] n, n_next;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) n <= 2'd0; else n <= n_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    tick = 1'b0;\n"
      "    case (n)\n"
      "      2'd0: n_next = 2'd1;\n"
      "      2'd1: n_next = 2'd2;\n"
      "      2'd2: n_next = 2'd3;\n"
      "      default: begin n_next = 2'd0; tick = 1'b1; end\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src2, "counter");
  sim.setInput("rst", 1);
  sim.clockEdge();
  sim.setInput("rst", 0);
  std::vector<std::uint64_t> ticks;
  for (int cyc = 0; cyc < 8; ++cyc) {
    sim.settle();
    ticks.push_back(sim.top("tick"));
    sim.clockEdge();
  }
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(Simulate, CompletionLatchModule) {
  Simulator sim(rtl::emitCompletionLatchModule(), "tauhls_completion_latch");
  sim.setInput("rst", 0);
  sim.setInput("restart", 0);
  sim.setInput("pulse", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 0u);
  // Pulse passes through combinationally and is held afterwards.
  sim.setInput("pulse", 1);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 1u);
  sim.clockEdge();
  sim.setInput("pulse", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 1u);  // held
  // Restart clears.
  sim.setInput("restart", 1);
  sim.clockEdge();
  sim.setInput("restart", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 0u);
}

TEST(Simulate, StructuralNetlistMatchesTruth) {
  netlist::Netlist n("xor");
  auto a = n.addInput("a");
  auto b = n.addInput("b");
  auto na = n.addInv(a);
  auto nb = n.addInv(b);
  n.markOutput("y", n.addOr({n.addAnd({a, nb}), n.addAnd({na, b})}));
  Simulator sim(netlist::emitStructuralVerilog(n, "xor2"), "xor2");
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.setInput("a", static_cast<std::uint64_t>(av));
      sim.setInput("b", static_cast<std::uint64_t>(bv));
      sim.settle();
      EXPECT_EQ(sim.top("y"), static_cast<std::uint64_t>(av ^ bv));
    }
  }
}

// --- the headline co-simulation: emitted RTL == FSM interpreter -----------

void cosimCheck(const dfg::Dfg& g, const Allocation& alloc,
                bool allShortClasses) {
  auto s = sched::scheduleAndBind(g, alloc, tau::paperLibrary());
  fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const sim::OperandClasses classes =
      allShortClasses ? sim::allShort(s) : sim::allLong(s);
  const sim::SimTrace trace = sim::runDistributed(dcu, s, classes);

  const std::string pkg = rtl::emitPackage(dcu, "dcu_top");
  Simulator vsim(pkg, "dcu_top");
  vsim.setInput("rst", 1);
  vsim.setInput("restart", 0);
  for (const std::string& in : dcu.externalInputs) vsim.setInput(in, 0);
  vsim.clockEdge();
  vsim.setInput("rst", 0);

  // Visible (non-CCO) controller outputs exposed on the top module.
  std::vector<std::string> visible;
  for (const fsm::UnitController& c : dcu.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (!o.starts_with("CCO_")) visible.push_back(o);
    }
  }

  for (std::size_t cyc = 0; cyc < trace.outputsPerCycle.size(); ++cyc) {
    for (const std::string& in : dcu.externalInputs) {
      const auto& ext = trace.externalsPerCycle[cyc];
      vsim.setInput(in, std::find(ext.begin(), ext.end(), in) != ext.end());
    }
    vsim.settle();
    for (const std::string& sig : visible) {
      const bool expected = trace.asserted(static_cast<int>(cyc), sig);
      EXPECT_EQ(vsim.top(sig), static_cast<std::uint64_t>(expected))
          << sig << " at cycle " << cyc;
    }
    vsim.clockEdge();
  }
}

TEST(Simulate, ConditionalAssign) {
  const std::string src =
      "module mux (\n"
      "  input  wire s,\n"
      "  input  wire a,\n"
      "  input  wire b,\n"
      "  output wire y\n"
      ");\n"
      "  assign y = s ? a : b;\n"
      "endmodule\n";
  Simulator sim(src, "mux");
  for (int mask = 0; mask < 8; ++mask) {
    const std::uint64_t s = mask & 1, a = (mask >> 1) & 1, b = (mask >> 2) & 1;
    sim.setInput("s", s);
    sim.setInput("a", a);
    sim.setInput("b", b);
    sim.settle();
    EXPECT_EQ(sim.top("y"), s ? a : b) << "mask " << mask;
  }
}

TEST(Simulate, NestedTernaryIsRightAssociative) {
  // a ? 1 : b ? 2 : 3 must parse as a ? 1 : (b ? 2 : 3).
  const std::string src =
      "module prio (\n"
      "  input  wire a,\n"
      "  input  wire b,\n"
      "  output reg  y0,\n"
      "  output reg  y1\n"
      ");\n"
      "  reg [1:0] y;\n"
      "  always @* begin\n"
      "    y = a ? 2'd1 : b ? 2'd2 : 2'd3;\n"
      "    y0 = ^y;\n"
      "    y1 = &y;\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src, "prio");
  auto expect = [&](std::uint64_t a, std::uint64_t b, std::uint64_t y) {
    sim.setInput("a", a);
    sim.setInput("b", b);
    sim.settle();
    // y is internal; observe it through its parity and conjunction.
    EXPECT_EQ(sim.top("y0"), static_cast<std::uint64_t>(
                                 __builtin_popcountll(y) & 1))
        << "a=" << a << " b=" << b;
    EXPECT_EQ(sim.top("y1"), static_cast<std::uint64_t>(y == 3))
        << "a=" << a << " b=" << b;
  };
  expect(1, 0, 1);
  expect(1, 1, 1);
  expect(0, 1, 2);
  expect(0, 0, 3);
}

TEST(Simulate, ConcatOrderAndWidths) {
  const std::string src =
      "module cat (\n"
      "  input  wire a,\n"
      "  input  wire b,\n"
      "  input  wire c,\n"
      "  output reg  msb,\n"
      "  output reg  mid,\n"
      "  output reg  lsb\n"
      ");\n"
      "  reg [2:0] v;\n"
      "  always @* begin\n"
      "    v = {a, b, c};\n"
      "    msb = &{a, 1'b1} ? ^{v, 1'b0} : 1'b0;\n"
      "    mid = |{1'b0, b};\n"
      "    lsb = ^{c};\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src, "cat");
  for (int mask = 0; mask < 8; ++mask) {
    const std::uint64_t a = mask & 1, b = (mask >> 1) & 1, c = (mask >> 2) & 1;
    sim.setInput("a", a);
    sim.setInput("b", b);
    sim.setInput("c", c);
    sim.settle();
    // {a,b,c} is MSB-first; ^{v,1'b0} is v's parity; &{a,1'b1} is just a.
    EXPECT_EQ(sim.top("msb"), a ? ((a ^ b ^ c) & 1) : 0) << "mask " << mask;
    EXPECT_EQ(sim.top("mid"), b) << "mask " << mask;
    EXPECT_EQ(sim.top("lsb"), c) << "mask " << mask;
  }
}

TEST(Simulate, ReductionOperators) {
  const std::string src =
      "module red (\n"
      "  input  wire a,\n"
      "  input  wire b,\n"
      "  input  wire c,\n"
      "  output reg  yand,\n"
      "  output reg  yor,\n"
      "  output reg  yxor\n"
      ");\n"
      "  reg [2:0] v;\n"
      "  always @* begin\n"
      "    v = {a, b, c};\n"
      "    yand = &v;\n"
      "    yor = |v;\n"
      "    yxor = ^v;\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src, "red");
  for (int mask = 0; mask < 8; ++mask) {
    const std::uint64_t a = mask & 1, b = (mask >> 1) & 1, c = (mask >> 2) & 1;
    sim.setInput("a", a);
    sim.setInput("b", b);
    sim.setInput("c", c);
    sim.settle();
    EXPECT_EQ(sim.top("yand"), a && b && c ? 1u : 0u) << "mask " << mask;
    EXPECT_EQ(sim.top("yor"), a || b || c ? 1u : 0u) << "mask " << mask;
    EXPECT_EQ(sim.top("yxor"), (a ^ b ^ c) & 1) << "mask " << mask;
  }
}

TEST(Simulate, ReductionOfSingleBitAndConstants) {
  const std::string src =
      "module one (\n"
      "  input  wire a,\n"
      "  output wire id,\n"
      "  output wire hi,\n"
      "  output wire lo\n"
      ");\n"
      "  assign id = ^a;\n"
      "  assign hi = &2'd3;\n"
      "  assign lo = |2'd0;\n"
      "endmodule\n";
  Simulator sim(src, "one");
  for (std::uint64_t a = 0; a <= 1; ++a) {
    sim.setInput("a", a);
    sim.settle();
    EXPECT_EQ(sim.top("id"), a);   // 1-bit reduction is the identity
    EXPECT_EQ(sim.top("hi"), 1u);  // &(2'b11)
    EXPECT_EQ(sim.top("lo"), 0u);  // |(2'b00)
  }
}

TEST(Simulate, TernaryInsideCaseAndSequential) {
  // Conditional assignment feeding sequential state: a 1-bit toggler whose
  // next value comes from a ternary over the current state.
  const std::string src =
      "module tog (\n"
      "  input  wire clk,\n"
      "  input  wire rst,\n"
      "  input  wire en,\n"
      "  output reg  q\n"
      ");\n"
      "  reg q_next;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) q <= 1'b0; else q <= q_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    q_next = en ? (q ? 1'b0 : 1'b1) : q;\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src, "tog");
  sim.setInput("rst", 1);
  sim.setInput("en", 0);
  sim.clockEdge();
  sim.setInput("rst", 0);
  sim.setInput("en", 1);
  std::vector<std::uint64_t> seen;
  for (int cyc = 0; cyc < 4; ++cyc) {
    sim.settle();
    seen.push_back(sim.top("q"));
    sim.clockEdge();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 0, 1}));
  // en low freezes the toggler.
  sim.setInput("en", 0);
  sim.settle();
  const std::uint64_t frozen = sim.top("q");
  sim.clockEdge();
  sim.settle();
  EXPECT_EQ(sim.top("q"), frozen);
}

TEST(Lexer, SizedLiteralWidthsOnTokens) {
  const auto toks = tokenize("assign y = 3'd5 | 8'hAB | 2;");
  int sawWidth3 = 0, sawWidth8 = 0, sawUnsized = 0;
  for (const Token& t : toks) {
    if (t.kind != TokKind::Number) continue;
    if (t.value == 5 && t.width == 3) ++sawWidth3;
    if (t.value == 171 && t.width == 8) ++sawWidth8;
    if (t.value == 2 && t.width == 0) ++sawUnsized;
  }
  EXPECT_EQ(sawWidth3, 1);
  EXPECT_EQ(sawWidth8, 1);
  EXPECT_EQ(sawUnsized, 1);
}

TEST(Parser, RejectsMalformedTernaryAndConcat) {
  EXPECT_THROW(parseDesign("module m (input wire a, output wire y);\n"
                           "  assign y = a ? a;\nendmodule\n"),
               Error);
  EXPECT_THROW(parseDesign("module m (input wire a, output wire y);\n"
                           "  assign y = {a, };\nendmodule\n"),
               Error);
  EXPECT_THROW(parseDesign("module m (input wire a, output wire y);\n"
                           "  assign y = {};\nendmodule\n"),
               Error);
}

TEST(Cosim, DiffeqAllShort) {
  cosimCheck(dfg::diffeq(),
             Allocation{{ResourceClass::Multiplier, 2},
                        {ResourceClass::Adder, 1},
                        {ResourceClass::Subtractor, 1}},
             true);
}

TEST(Cosim, DiffeqAllLong) {
  cosimCheck(dfg::diffeq(),
             Allocation{{ResourceClass::Multiplier, 2},
                        {ResourceClass::Adder, 1},
                        {ResourceClass::Subtractor, 1}},
             false);
}

TEST(Cosim, Fig3AllShort) {
  cosimCheck(dfg::paperFig3(),
             Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 2}},
             true);
}

class RtlEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtlEquivalence, EmittedControllerMatchesFsmOnRandomInputs) {
  // Single-FSM equivalence through the RTL loop: emitFsm -> parse -> vsim,
  // driven with random inputs, must match fsm::step exactly.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f =
      dcu.controllers[GetParam() % dcu.controllers.size()].fsm;

  Simulator sim(rtl::emitFsm(f, "ctrl"), "ctrl");
  sim.setInput("rst", 1);
  sim.clockEdge();
  sim.setInput("rst", 0);

  std::mt19937_64 rng(GetParam() * 1013);
  int state = f.initial();
  for (int cycle = 0; cycle < 60; ++cycle) {
    std::unordered_set<std::string> asserted;
    for (const std::string& in : f.inputs()) {
      const bool on = std::uniform_int_distribution<int>(0, 1)(rng) != 0;
      sim.setInput(in, on);
      if (on) asserted.insert(in);
    }
    sim.settle();
    const auto ref = f.step(state, asserted);
    for (const std::string& out : f.outputs()) {
      const bool expected = std::find(ref.outputs.begin(), ref.outputs.end(),
                                      out) != ref.outputs.end();
      EXPECT_EQ(sim.top(out), static_cast<std::uint64_t>(expected))
          << out << " at cycle " << cycle;
    }
    sim.clockEdge();
    state = ref.nextState;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Cosim, ArLatticeAllLong) {
  cosimCheck(dfg::arLattice(),
             Allocation{{ResourceClass::Multiplier, 4}, {ResourceClass::Adder, 2}},
             false);
}

}  // namespace
}  // namespace tauhls::vsim
