// The in-repo Verilog simulator (vsim) and the RTL co-simulation loop:
// emitted Verilog, parsed back and cycle-simulated, must match the FSM
// interpreter signal-for-signal.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/signal_opt.hpp"
#include "netlist/build.hpp"
#include "netlist/emit.hpp"
#include "rtl/verilog.hpp"
#include "sim/interp.hpp"
#include "vsim/lexer.hpp"
#include "vsim/simulate.hpp"

namespace tauhls::vsim {
namespace {

using dfg::ResourceClass;
using sched::Allocation;

TEST(Lexer, TokensAndLiterals) {
  auto toks = tokenize("module m; wire [2:0] x = 3'd5; // comment\nassign y = 1'b1 & 8'hFF;");
  ASSERT_GT(toks.size(), 5u);
  bool saw5 = false;
  bool saw255 = false;
  for (const Token& t : toks) {
    if (t.kind == TokKind::Number && t.value == 5) saw5 = true;
    if (t.kind == TokKind::Number && t.value == 255) saw255 = true;
  }
  EXPECT_TRUE(saw5);
  EXPECT_TRUE(saw255);
  EXPECT_THROW(tokenize("wire x = 3'q5;"), Error);
}

TEST(Parser, SmallModule) {
  const std::string src =
      "module toy (\n"
      "  input  wire clk,\n"
      "  input  wire a,\n"
      "  output reg  q\n"
      ");\n"
      "  localparam [0:0] ST = 1'd0;\n"
      "  reg [1:0] s, s_next;\n"
      "  wire w;\n"
      "  assign w = a | q;\n"
      "  always @(posedge clk) begin\n"
      "    s <= s_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    q = 1'b0;\n"
      "    if (a && !w) q = 1'b1; else q = 1'b0;\n"
      "    case (s)\n"
      "      ST: s_next = 2'd1;\n"
      "      default: s_next = 2'd0;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  Design d = parseDesign(src);
  ASSERT_EQ(d.modules.size(), 1u);
  const Module& m = d.modules[0];
  EXPECT_EQ(m.name, "toy");
  EXPECT_EQ(m.ports.size(), 3u);
  EXPECT_EQ(m.localparams.at("ST"), 0u);
  EXPECT_EQ(m.nets.size(), 3u);
  EXPECT_EQ(m.always.size(), 2u);
  EXPECT_TRUE(m.always[0].sequential);
  EXPECT_FALSE(m.always[1].sequential);
}

TEST(Parser, RejectsOutOfSubset) {
  EXPECT_THROW(parseDesign("module m (; endmodule"), Error);
  EXPECT_THROW(parseDesign("module m (input wire a); frobnicate; endmodule"),
               Error);
}

TEST(Simulate, CounterModule) {
  const std::string src =
      "module counter (\n"
      "  input  wire clk,\n"
      "  input  wire rst,\n"
      "  output reg  tick\n"
      ");\n"
      "  reg [1:0] n, n_next;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) n <= 2'd0; else n <= n_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    tick = 1'b0;\n"
      "    case (n)\n"
      "      2'd3: begin n_next = 2'd0; tick = 1'b1; end\n"
      "      default: n_next = n + 1'b1;\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  // NOTE: '+' is outside the subset -- rewrite with explicit cases instead.
  (void)src;
  const std::string src2 =
      "module counter (\n"
      "  input  wire clk,\n"
      "  input  wire rst,\n"
      "  output reg  tick\n"
      ");\n"
      "  reg [1:0] n, n_next;\n"
      "  always @(posedge clk) begin\n"
      "    if (rst) n <= 2'd0; else n <= n_next;\n"
      "  end\n"
      "  always @* begin\n"
      "    tick = 1'b0;\n"
      "    case (n)\n"
      "      2'd0: n_next = 2'd1;\n"
      "      2'd1: n_next = 2'd2;\n"
      "      2'd2: n_next = 2'd3;\n"
      "      default: begin n_next = 2'd0; tick = 1'b1; end\n"
      "    endcase\n"
      "  end\n"
      "endmodule\n";
  Simulator sim(src2, "counter");
  sim.setInput("rst", 1);
  sim.clockEdge();
  sim.setInput("rst", 0);
  std::vector<std::uint64_t> ticks;
  for (int cyc = 0; cyc < 8; ++cyc) {
    sim.settle();
    ticks.push_back(sim.top("tick"));
    sim.clockEdge();
  }
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 0, 0, 1, 0, 0, 0, 1}));
}

TEST(Simulate, CompletionLatchModule) {
  Simulator sim(rtl::emitCompletionLatchModule(), "tauhls_completion_latch");
  sim.setInput("rst", 0);
  sim.setInput("restart", 0);
  sim.setInput("pulse", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 0u);
  // Pulse passes through combinationally and is held afterwards.
  sim.setInput("pulse", 1);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 1u);
  sim.clockEdge();
  sim.setInput("pulse", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 1u);  // held
  // Restart clears.
  sim.setInput("restart", 1);
  sim.clockEdge();
  sim.setInput("restart", 0);
  sim.settle();
  EXPECT_EQ(sim.top("level"), 0u);
}

TEST(Simulate, StructuralNetlistMatchesTruth) {
  netlist::Netlist n("xor");
  auto a = n.addInput("a");
  auto b = n.addInput("b");
  auto na = n.addInv(a);
  auto nb = n.addInv(b);
  n.markOutput("y", n.addOr({n.addAnd({a, nb}), n.addAnd({na, b})}));
  Simulator sim(netlist::emitStructuralVerilog(n, "xor2"), "xor2");
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      sim.setInput("a", static_cast<std::uint64_t>(av));
      sim.setInput("b", static_cast<std::uint64_t>(bv));
      sim.settle();
      EXPECT_EQ(sim.top("y"), static_cast<std::uint64_t>(av ^ bv));
    }
  }
}

// --- the headline co-simulation: emitted RTL == FSM interpreter -----------

void cosimCheck(const dfg::Dfg& g, const Allocation& alloc,
                bool allShortClasses) {
  auto s = sched::scheduleAndBind(g, alloc, tau::paperLibrary());
  fsm::DistributedControlUnit dcu =
      fsm::optimizeSignals(fsm::buildDistributed(s));
  const sim::OperandClasses classes =
      allShortClasses ? sim::allShort(s) : sim::allLong(s);
  const sim::SimTrace trace = sim::runDistributed(dcu, s, classes);

  const std::string pkg = rtl::emitPackage(dcu, "dcu_top");
  Simulator vsim(pkg, "dcu_top");
  vsim.setInput("rst", 1);
  vsim.setInput("restart", 0);
  for (const std::string& in : dcu.externalInputs) vsim.setInput(in, 0);
  vsim.clockEdge();
  vsim.setInput("rst", 0);

  // Visible (non-CCO) controller outputs exposed on the top module.
  std::vector<std::string> visible;
  for (const fsm::UnitController& c : dcu.controllers) {
    for (const std::string& o : c.fsm.outputs()) {
      if (!o.starts_with("CCO_")) visible.push_back(o);
    }
  }

  for (std::size_t cyc = 0; cyc < trace.outputsPerCycle.size(); ++cyc) {
    for (const std::string& in : dcu.externalInputs) {
      const auto& ext = trace.externalsPerCycle[cyc];
      vsim.setInput(in, std::find(ext.begin(), ext.end(), in) != ext.end());
    }
    vsim.settle();
    for (const std::string& sig : visible) {
      const bool expected = trace.asserted(static_cast<int>(cyc), sig);
      EXPECT_EQ(vsim.top(sig), static_cast<std::uint64_t>(expected))
          << sig << " at cycle " << cyc;
    }
    vsim.clockEdge();
  }
}

TEST(Cosim, DiffeqAllShort) {
  cosimCheck(dfg::diffeq(),
             Allocation{{ResourceClass::Multiplier, 2},
                        {ResourceClass::Adder, 1},
                        {ResourceClass::Subtractor, 1}},
             true);
}

TEST(Cosim, DiffeqAllLong) {
  cosimCheck(dfg::diffeq(),
             Allocation{{ResourceClass::Multiplier, 2},
                        {ResourceClass::Adder, 1},
                        {ResourceClass::Subtractor, 1}},
             false);
}

TEST(Cosim, Fig3AllShort) {
  cosimCheck(dfg::paperFig3(),
             Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 2}},
             true);
}

class RtlEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtlEquivalence, EmittedControllerMatchesFsmOnRandomInputs) {
  // Single-FSM equivalence through the RTL loop: emitFsm -> parse -> vsim,
  // driven with random inputs, must match fsm::step exactly.
  auto s = sched::scheduleAndBind(dfg::diffeq(),
                                  Allocation{{ResourceClass::Multiplier, 2},
                                             {ResourceClass::Adder, 1},
                                             {ResourceClass::Subtractor, 1}},
                                  tau::paperLibrary());
  fsm::DistributedControlUnit dcu = fsm::buildDistributed(s);
  const fsm::Fsm& f =
      dcu.controllers[GetParam() % dcu.controllers.size()].fsm;

  Simulator sim(rtl::emitFsm(f, "ctrl"), "ctrl");
  sim.setInput("rst", 1);
  sim.clockEdge();
  sim.setInput("rst", 0);

  std::mt19937_64 rng(GetParam() * 1013);
  int state = f.initial();
  for (int cycle = 0; cycle < 60; ++cycle) {
    std::unordered_set<std::string> asserted;
    for (const std::string& in : f.inputs()) {
      const bool on = std::uniform_int_distribution<int>(0, 1)(rng) != 0;
      sim.setInput(in, on);
      if (on) asserted.insert(in);
    }
    sim.settle();
    const auto ref = f.step(state, asserted);
    for (const std::string& out : f.outputs()) {
      const bool expected = std::find(ref.outputs.begin(), ref.outputs.end(),
                                      out) != ref.outputs.end();
      EXPECT_EQ(sim.top(out), static_cast<std::uint64_t>(expected))
          << out << " at cycle " << cycle;
    }
    sim.clockEdge();
    state = ref.nextState;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlEquivalence,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Cosim, ArLatticeAllLong) {
  cosimCheck(dfg::arLattice(),
             Allocation{{ResourceClass::Multiplier, 4}, {ResourceClass::Adder, 2}},
             false);
}

}  // namespace
}  // namespace tauhls::vsim
