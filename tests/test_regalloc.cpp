#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "regalloc/leftedge.hpp"
#include "regalloc/lifetime.hpp"
#include "testutil.hpp"

namespace tauhls::regalloc {
namespace {

using dfg::NodeId;
using dfg::ResourceClass;
using sched::Allocation;

sched::ScheduledDfg scheduledDiffeq() {
  return sched::scheduleAndBind(dfg::diffeq(),
                                Allocation{{ResourceClass::Multiplier, 2},
                                           {ResourceClass::Adder, 1},
                                           {ResourceClass::Subtractor, 1}},
                                tau::paperLibrary());
}

TEST(Lifetime, DiamondIntervals) {
  dfg::Dfg g = test::diamond();
  auto s = sched::scheduleAndBind(
      g,
      Allocation{{ResourceClass::Multiplier, 2}, {ResourceClass::Adder, 1}},
      tau::paperLibrary());
  auto lts = distributedLifetimes(s);
  ASSERT_EQ(lts.size(), g.numNodes());
  // Inputs written at -1; m1/m2 written at their all-SD finish (cycle 0) and
  // read until the add's all-LD finish.
  NodeId m1 = g.findByName("m1");
  NodeId sum = g.findByName("s");
  EXPECT_EQ(lts[g.findByName("a")].writeCycle, -1);
  EXPECT_EQ(lts[m1].writeCycle, 0);
  EXPECT_GE(lts[m1].lastReadCycle, 2);  // add finishes at cycle 2 all-LD
  // The unconsumed sum is held one extra cycle.
  EXPECT_EQ(lts[sum].lastReadCycle, lts[sum].writeCycle + 1);
}

TEST(Lifetime, SyncUsesWorstCaseStepTiming) {
  auto s = scheduledDiffeq();
  auto lts = syncLifetimes(s);
  // Every op's write cycle equals the worst-case end of its step; the last
  // step's ops finish at worstCaseCycles - 1.
  const int total = s.taubm.worstCaseCycles();
  int latest = 0;
  for (NodeId v : s.graph.opIds()) {
    latest = std::max(latest, lts[v].writeCycle);
  }
  EXPECT_EQ(latest, total - 1);
}

TEST(LeftEdge, ChainReusesOneRegister) {
  // A pure chain: each value dies as the next is produced... with TAU
  // conservatism the read extends into the consumer's LD window, so
  // neighbouring values overlap but value i and i+2 can share.
  dfg::Dfg g = test::mulChain(6);
  auto s = sched::scheduleAndBind(g, Allocation{{ResourceClass::Multiplier, 1}},
                                  tau::paperLibrary());
  auto lts = distributedLifetimes(s);
  RegisterAllocation alloc = leftEdgeRegisters(lts, g.numNodes());
  EXPECT_EQ(alloc.numRegisters, maxLiveValues(lts));
  EXPECT_LT(alloc.numRegisters, static_cast<int>(g.numNodes()));
}

TEST(LeftEdge, OptimalOnIntervals) {
  // Left-edge matches the max-live lower bound (optimality on intervals).
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    dfg::RandomDfgSpec spec;
    spec.seed = seed * 97;
    spec.numOps = 8 + static_cast<int>(seed % 10);
    dfg::Dfg g = dfg::randomDfg(spec);
    auto s = sched::scheduleAndBind(g,
                                    Allocation{{ResourceClass::Multiplier, 2},
                                               {ResourceClass::Adder, 1},
                                               {ResourceClass::Subtractor, 1}},
                                    tau::paperLibrary());
    auto lts = distributedLifetimes(s);
    RegisterAllocation alloc = leftEdgeRegisters(lts, g.numNodes());
    EXPECT_EQ(alloc.numRegisters, maxLiveValues(lts)) << "seed=" << seed;
  }
}

TEST(LeftEdge, ValidationCatchesOverlap) {
  std::vector<Lifetime> lts{{0, 0, 5}, {1, 2, 7}};
  RegisterAllocation bad;
  bad.numRegisters = 1;
  bad.registerOf = {0, 0};
  EXPECT_THROW(validateAllocation(lts, bad), Error);
  RegisterAllocation good;
  good.numRegisters = 2;
  good.registerOf = {0, 1};
  EXPECT_NO_THROW(validateAllocation(lts, good));
}

TEST(LeftEdge, TouchingIntervalsShare) {
  // (0,3] and (3,6] may share one register (write edge after last read).
  std::vector<Lifetime> lts{{0, 0, 3}, {1, 3, 6}};
  RegisterAllocation alloc = leftEdgeRegisters(lts, 2);
  EXPECT_EQ(alloc.numRegisters, 1);
}

TEST(LeftEdge, DiffeqRegisterCounts) {
  auto s = scheduledDiffeq();
  auto dist = leftEdgeRegisters(distributedLifetimes(s), s.graph.numNodes());
  auto sync = leftEdgeRegisters(syncLifetimes(s), s.graph.numNodes());
  // Both well below one register per value (11 ops + 6 inputs = 17 values).
  EXPECT_LT(dist.numRegisters, 17);
  EXPECT_LT(sync.numRegisters, 17);
  // The conservative distributed intervals can never need fewer registers
  // than a run with deterministic timing would... they are supersets of the
  // sync intervals only in spirit; assert both satisfy their own lower
  // bounds instead.
  EXPECT_EQ(dist.numRegisters, maxLiveValues(distributedLifetimes(s)));
  EXPECT_EQ(sync.numRegisters, maxLiveValues(syncLifetimes(s)));
}

}  // namespace
}  // namespace tauhls::regalloc
