#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dfg/benchmarks.hpp"
#include "explore/pareto.hpp"
#include "testutil.hpp"

namespace tauhls::explore {
namespace {

using dfg::ResourceClass;

TEST(Explore, SweepsBoundedGrid) {
  // fir(5): 5 muls (chain cover 5, capped at 3 by options) and 4 chained
  // adds (chain cover 1) -> 3 x 1 = 3 points.
  ExploreOptions opt;
  opt.maxUnitsPerClass = 3;
  auto points = explore(dfg::fir(5), opt);
  EXPECT_EQ(points.size(), 3u);
  for (const DesignPoint& p : points) {
    EXPECT_GE(p.allocation.at(ResourceClass::Multiplier), 1);
    EXPECT_LE(p.allocation.at(ResourceClass::Multiplier), 3);
    EXPECT_EQ(p.allocation.at(ResourceClass::Adder), 1);  // chain: cap 1
    EXPECT_GT(p.averageLatencyNs, 0.0);
    EXPECT_GT(p.controllerArea, 0);
    EXPECT_GT(p.datapathRegisters, 0);
  }
}

TEST(Explore, MoreUnitsNeverSlower) {
  ExploreOptions opt;
  opt.maxUnitsPerClass = 3;
  auto points = explore(dfg::fir(5), opt);
  std::map<int, double> latencyByMults;
  for (const DesignPoint& p : points) {
    latencyByMults[p.allocation.at(ResourceClass::Multiplier)] =
        p.averageLatencyNs;
  }
  EXPECT_LE(latencyByMults.at(2), latencyByMults.at(1));
  EXPECT_LE(latencyByMults.at(3), latencyByMults.at(2));
}

TEST(Explore, ParetoFrontIsNonDominated) {
  ExploreOptions opt;
  opt.maxUnitsPerClass = 3;
  auto points = explore(dfg::diffeq(), opt);
  auto front = paretoFront(points, opt.unitWeightArea);
  EXPECT_FALSE(front.empty());
  EXPECT_LE(front.size(), points.size());
  for (const DesignPoint& f : front) {
    for (const DesignPoint& other : points) {
      const bool dominates =
          other.averageLatencyNs < f.averageLatencyNs - 1e-9 &&
          other.cost(opt.unitWeightArea) < f.cost(opt.unitWeightArea);
      EXPECT_FALSE(dominates);
    }
  }
  // Flags match membership.
  int flagged = 0;
  for (const DesignPoint& p : points) flagged += p.paretoOptimal ? 1 : 0;
  EXPECT_EQ(flagged, static_cast<int>(front.size()));
}

TEST(Explore, CheapestAndFastestAlwaysOnFront) {
  // The minimum-cost point and the minimum-latency point can never be
  // dominated (with ties broken by the dominance definition).
  ExploreOptions opt;
  opt.maxUnitsPerClass = 2;
  auto points = explore(dfg::diffeq(), opt);
  auto front = paretoFront(points, opt.unitWeightArea);
  double bestLatency = 1e18;
  int bestCost = 1 << 30;
  for (const DesignPoint& p : points) {
    bestLatency = std::min(bestLatency, p.averageLatencyNs);
    bestCost = std::min(bestCost, p.cost(opt.unitWeightArea));
  }
  bool frontHasBestLatency = false;
  bool frontHasBestCost = false;
  for (const DesignPoint& f : front) {
    frontHasBestLatency |= f.averageLatencyNs <= bestLatency + 1e-9;
    frontHasBestCost |= f.cost(opt.unitWeightArea) <= bestCost;
  }
  EXPECT_TRUE(frontHasBestLatency);
  EXPECT_TRUE(frontHasBestCost);
}

TEST(Explore, SharedCacheMakesRepeatSweepsFreeAndIdentical) {
  ExploreOptions opt;
  opt.maxUnitsPerClass = 2;
  opt.cache = std::make_shared<core::ArtifactCache>();
  const dfg::Dfg g = dfg::fir(3);

  const auto first = explore(g, opt);
  const core::CacheStats afterFirst = opt.cache->stats();
  EXPECT_EQ(afterFirst.hits, 0u);

  const auto second = explore(g, opt);
  const core::CacheStats afterSecond = opt.cache->stats();
  // The repeat sweep re-ran nothing...
  EXPECT_EQ(afterSecond.misses, afterFirst.misses);
  EXPECT_EQ(afterSecond.hits, afterFirst.misses);
  // ...and reproduced every point exactly.
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].allocation, second[i].allocation);
    EXPECT_EQ(first[i].averageLatencyNs, second[i].averageLatencyNs);
    EXPECT_EQ(first[i].controllerArea, second[i].controllerArea);
    EXPECT_EQ(first[i].datapathRegisters, second[i].datapathRegisters);
    EXPECT_EQ(first[i].paretoOptimal, second[i].paretoOptimal);
  }
  // Each distinct allocation was scheduled and verified exactly once.
  EXPECT_EQ(afterSecond.runsPerPass.at("schedule"), first.size());
  EXPECT_EQ(afterSecond.runsPerPass.at("verify"), first.size());
}

TEST(Explore, RejectsDegenerateInputs) {
  dfg::Dfg empty("empty");
  empty.addInput("a");
  EXPECT_THROW(explore(empty), Error);
  ExploreOptions bad;
  bad.maxUnitsPerClass = 0;
  EXPECT_THROW(explore(dfg::fir(3), bad), Error);
}

}  // namespace
}  // namespace tauhls::explore
