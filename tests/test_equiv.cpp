// Symbolic equivalence checking tests (verify/equiv_check.hpp) and the
// pipeline integration of the demand-only `equiv` / `timing` passes.
//
// The acceptance sweep proves every paper benchmark EQV-clean end to end
// (spec = cover = netlist = reparsed RTL) under both binding strategies and
// with signal optimization on and off -- entirely via SAT miters; an EQV005
// (conflict-budget fallback) anywhere fails the suite.
#include "verify/equiv_check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/pipeline.hpp"
#include "dfg/benchmarks.hpp"
#include "fsm/distributed.hpp"
#include "fsm/machine.hpp"
#include "sched/scheduled_dfg.hpp"
#include "verify/timing_check.hpp"

namespace tauhls::verify {
namespace {

int countRule(const Report& report, const std::string& rule) {
  int n = 0;
  for (const auto& d : report.diagnostics()) {
    if (d.code == rule) ++n;
  }
  return n;
}

fsm::Fsm sampleController() {
  fsm::Fsm m("ctrl");
  m.addInput("go");
  m.addOutput("busy");
  const int s0 = m.addState("S0");
  const int s1 = m.addState("S1");
  const int s2 = m.addState("S2");
  m.setInitial(s0);
  m.addTransition(s0, s1, fsm::Guard::literal("go", true), {"busy"});
  m.addTransition(s0, s0, fsm::Guard::literal("go", false), {});
  m.addTransition(s1, s2, fsm::Guard::always(), {"busy"});
  m.addTransition(s2, s0, fsm::Guard::always(), {});
  return m;
}

TEST(Equiv, SingleControllerChainIsClean) {
  Report report;
  const EquivStats stats = checkControllerChain(sampleController(), report);
  EXPECT_FALSE(report.hasErrors());
  EXPECT_EQ(countRule(report, "EQV005"), 0);
  EXPECT_EQ(countRule(report, "EQV006"), 1);
  // 2 state bits -> ns0, ns1, plus the busy output, across 3 comparison
  // stages (spec=cover, cover=netlist, netlist=RTL).
  EXPECT_EQ(stats.functionsCompared, 9);
}

TEST(Equiv, OneHotChainSkipsRtlStage) {
  // emitFsm always emits binary encoding, so the one-hot chain proves
  // spec = cover = netlist only; it must still come out clean.
  EquivOptions options;
  options.style = synth::EncodingStyle::OneHot;
  Report report;
  checkControllerChain(sampleController(), report, options);
  EXPECT_FALSE(report.hasErrors());
  EXPECT_EQ(countRule(report, "EQV006"), 1);
}

TEST(Equiv, AcceptanceSweepAllBenchmarksAllConfigs) {
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (const auto strategy : {sched::BindingStrategy::LeftEdge,
                                sched::BindingStrategy::CliqueCover}) {
      for (const bool signalOpt : {true, false}) {
        core::FlowConfig cfg;
        cfg.allocation = b.allocation;
        cfg.strategy = strategy;
        cfg.optimizeSignals = signalOpt;
        core::FlowPipeline pipeline(b.graph, cfg);
        const auto& eq = pipeline.get<EquivalenceArtifact>(
            core::Artifact::Equivalence);
        const std::string label =
            b.name + (strategy == sched::BindingStrategy::LeftEdge
                          ? " leftedge"
                          : " clique") +
            (signalOpt ? " opt" : " no-opt");
        EXPECT_FALSE(eq.report.hasErrors()) << label;
        // Zero fallbacks: every miter is discharged by SAT (or hashing),
        // never abandoned to the conflict budget.
        EXPECT_EQ(countRule(eq.report, "EQV005"), 0) << label;
        // Every controller gets its EQV006 "proven end to end" stamp.
        EXPECT_EQ(static_cast<std::size_t>(countRule(eq.report, "EQV006")),
                  pipeline
                      .get<fsm::DistributedControlUnit>(
                          core::Artifact::Distributed)
                      .controllers.size())
            << label;
        EXPECT_GT(eq.stats.functionsCompared, 0) << label;

        const auto& timing =
            pipeline.get<Report>(core::Artifact::Timing);
        EXPECT_FALSE(timing.hasErrors()) << label;
        EXPECT_GT(countRule(timing, "TIM003"), 0) << label;
      }
    }
  }
}

/// Order-preserving (code, artifact, where) verdict list -- the engine
/// equality contract: counterexample *messages* may differ between engines
/// (different models), the fired rules may not.
std::vector<std::tuple<std::string, std::string, std::string>> verdictsOf(
    const Report& report) {
  std::vector<std::tuple<std::string, std::string, std::string>> out;
  for (const auto& d : report.diagnostics()) {
    out.emplace_back(d.code, d.artifact, d.where);
  }
  return out;
}

TEST(Equiv, IncrementalEngineVerdictsMatchNaiveOnAllBenchmarks) {
  // The tentpole's bit-identity guarantee on the equivalence side: the
  // sim-prefiltered incremental-SAT engine fires exactly the rules the
  // fresh-solver reference fires, on every benchmark x both binding
  // strategies.
  for (const dfg::NamedBenchmark& b : dfg::paperTable2Suite()) {
    for (const auto strategy : {sched::BindingStrategy::LeftEdge,
                                sched::BindingStrategy::CliqueCover}) {
      core::FlowConfig cfg;
      cfg.allocation = b.allocation;
      cfg.strategy = strategy;
      core::FlowPipeline pipeline(b.graph, cfg);
      const auto& dcu = pipeline.get<fsm::DistributedControlUnit>(
          core::Artifact::Distributed);

      EquivOptions naive;
      naive.engine = EquivEngine::Naive;
      EquivStats naiveStats;
      const Report naiveReport = checkEquivalence(dcu, naive, &naiveStats);

      EquivOptions incremental;
      incremental.engine = EquivEngine::Incremental;
      EquivStats incStats;
      const Report incReport = checkEquivalence(dcu, incremental, &incStats);

      const std::string label =
          b.name + (strategy == sched::BindingStrategy::LeftEdge
                        ? " leftedge"
                        : " clique");
      EXPECT_EQ(verdictsOf(incReport), verdictsOf(naiveReport)) << label;
      EXPECT_EQ(incStats.controllers, naiveStats.controllers) << label;
      EXPECT_EQ(incStats.functionsCompared, naiveStats.functionsCompared)
          << label;
    }
  }
}

TEST(Equiv, EnginesCatchTamperedNetlistIdentically) {
  // A netlist from the wrong controller must raise EQV002 under both
  // engines, with identical (code, artifact, where) verdicts.
  const fsm::Fsm good = sampleController();
  fsm::Fsm other("ctrl");
  other.addInput("go");
  other.addOutput("busy");
  const int s0 = other.addState("S0");
  const int s1 = other.addState("S1");
  const int s2 = other.addState("S2");
  other.setInitial(s0);
  // Inverted guard polarity relative to sampleController.
  other.addTransition(s0, s1, fsm::Guard::literal("go", false), {"busy"});
  other.addTransition(s0, s0, fsm::Guard::literal("go", true), {});
  other.addTransition(s1, s2, fsm::Guard::always(), {});
  other.addTransition(s2, s0, fsm::Guard::always(), {"busy"});
  const netlist::ControllerNetlist tampered =
      netlist::buildControllerNetlist(other, synth::EncodingStyle::Binary);

  EquivOptions naive;
  naive.engine = EquivEngine::Naive;
  Report naiveReport;
  checkControllerNetlist(good, tampered, naiveReport, naive);

  EquivOptions incremental;
  incremental.engine = EquivEngine::Incremental;
  Report incReport;
  checkControllerNetlist(good, tampered, incReport, incremental);

  EXPECT_GT(countRule(naiveReport, "EQV002"), 0);
  EXPECT_EQ(verdictsOf(incReport), verdictsOf(naiveReport));
}

TEST(Equiv, PerRuleCostCoversEveryComparison) {
  // Each compared function is resolved exactly once, by simulation or by a
  // SAT query, and the split is visible per rule; the completion-latch
  // check contributes its own EQV004 bucket.
  const auto suite = dfg::paperTable2Suite();
  core::FlowConfig cfg;
  cfg.allocation = suite.front().allocation;
  core::FlowPipeline pipeline(suite.front().graph, cfg);
  const auto& dcu = pipeline.get<fsm::DistributedControlUnit>(
      core::Artifact::Distributed);
  EquivStats stats;
  checkEquivalence(dcu, {}, &stats);
  std::uint64_t resolved = 0;
  for (const std::string rule : {"EQV001", "EQV002", "EQV003"}) {
    const auto it = stats.ruleCost.find(rule);
    ASSERT_NE(it, stats.ruleCost.end()) << rule;
    resolved += it->second.queries + it->second.simDischarged;
  }
  EXPECT_EQ(resolved, static_cast<std::uint64_t>(stats.functionsCompared));
  const auto latch = stats.ruleCost.find("EQV004");
  ASSERT_NE(latch, stats.ruleCost.end());
  EXPECT_EQ(latch->second.queries, 2u);
}

TEST(Equiv, PipelinePassesAreCached) {
  // Two pipelines over the same (graph, config) sharing one artifact cache:
  // the second run's equiv and timing passes must be cache hits, and the
  // rendered chrome://tracing JSON must say so.
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();
  core::FlowConfig cfg;
  cfg.allocation = b.allocation;
  auto cache = std::make_shared<core::ArtifactCache>();

  core::FlowPipeline first(b.graph, cfg, cache);
  first.require({core::Artifact::Equivalence, core::Artifact::Timing});
  core::FlowPipeline second(b.graph, cfg, cache);
  second.require({core::Artifact::Equivalence, core::Artifact::Timing});

  bool equivHit = false, timingHit = false;
  for (const core::PassTraceEvent& ev : second.traceEvents()) {
    if (ev.pass == "equiv") equivHit = ev.cacheHit;
    if (ev.pass == "timing") timingHit = ev.cacheHit;
  }
  EXPECT_TRUE(equivHit);
  EXPECT_TRUE(timingHit);

  const std::string json = core::traceToChromeJson(
      {{"first", first.traceEvents()}, {"second", second.traceEvents()}});
  EXPECT_NE(json.find("\"name\":\"equiv\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\":\"hit\""), std::string::npos);

  const auto stats = cache->stats();
  EXPECT_EQ(stats.hitsPerPass.at("equiv"), 1u);
  EXPECT_EQ(stats.hitsPerPass.at("timing"), 1u);
}

TEST(Equiv, ConfigChangesInvalidateTheCacheKey) {
  const auto suite = dfg::paperTable2Suite();
  const dfg::NamedBenchmark& b = suite.front();
  core::FlowConfig cfg;
  cfg.allocation = b.allocation;
  core::FlowPipeline base(b.graph, cfg);

  core::FlowConfig margin = cfg;
  margin.timingMarginNs = 5.0;
  core::FlowPipeline tweaked(b.graph, margin);
  // The timing key must move with its declared config field; equivalence
  // ignores the margin and keeps its key.
  EXPECT_NE(base.artifactKey(core::Artifact::Timing),
            tweaked.artifactKey(core::Artifact::Timing));
  EXPECT_EQ(base.artifactKey(core::Artifact::Equivalence),
            tweaked.artifactKey(core::Artifact::Equivalence));

  core::FlowConfig conflicts = cfg;
  conflicts.equivMaxConflicts = 7;
  core::FlowPipeline bounded(b.graph, conflicts);
  EXPECT_NE(base.artifactKey(core::Artifact::Equivalence),
            bounded.artifactKey(core::Artifact::Equivalence));
}

TEST(Equiv, TimingMarginTightensSlack) {
  const fsm::Fsm ctrl = sampleController();
  Report loose, tight;
  TimingOptions lo;
  lo.marginNs = 0.0;
  checkControllerTiming(ctrl, 15.0, loose, lo);
  TimingOptions hi;
  hi.marginNs = 14.0;  // leaves ~1 ns for logic: must at least warn
  checkControllerTiming(ctrl, 15.0, tight, hi);
  EXPECT_FALSE(loose.hasErrors());
  EXPECT_TRUE(tight.hasErrors() || countRule(tight, "TIM002") > 0);
}

TEST(Equiv, ImpossibleClockRaisesTim001) {
  Report report;
  TimingOptions options;
  options.marginNs = 0.0;
  checkControllerTiming(sampleController(), 0.5, report, options);
  EXPECT_TRUE(report.hasErrors());
  EXPECT_GE(countRule(report, "TIM001"), 1);
}

TEST(Equiv, CompletionLatchOfEmittedPackageIsClean) {
  const auto suite = dfg::paperTable2Suite();
  core::FlowConfig cfg;
  cfg.allocation = suite.front().allocation;
  core::FlowPipeline pipeline(suite.front().graph, cfg);
  const auto& eq =
      pipeline.get<EquivalenceArtifact>(core::Artifact::Equivalence);
  EXPECT_EQ(countRule(eq.report, "EQV004"), 0);
}

}  // namespace
}  // namespace tauhls::verify
