#include <gtest/gtest.h>

#include "datapath/value.hpp"
#include "dfg/analysis.hpp"
#include "dfg/benchmarks.hpp"
#include "dfg/random.hpp"
#include "dfg/transform.hpp"
#include "testutil.hpp"

namespace tauhls::dfg {
namespace {

TEST(Cse, MergesDuplicateOps) {
  // The HAL Diff. graph computes u*dx twice (m2 and m6).
  Dfg g = diffeq();
  TransformReport report;
  Dfg opt = commonSubexpressionElimination(g, &report);
  EXPECT_EQ(report.mergedOps, 1);
  EXPECT_EQ(opt.numOps(), g.numOps() - 1);
  EXPECT_EQ(opt.opsOfClass(ResourceClass::Multiplier).size(), 5u);
  EXPECT_NO_THROW(opt.validate());
}

TEST(Cse, CommutativeMatching) {
  Dfg g("comm");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId m1 = g.addOp(OpKind::Mul, {a, b}, "m1");
  NodeId m2 = g.addOp(OpKind::Mul, {b, a}, "m2");  // same product, swapped
  NodeId s1 = g.addOp(OpKind::Sub, {a, b}, "s1");
  NodeId s2 = g.addOp(OpKind::Sub, {b, a}, "s2");  // NOT the same difference
  g.markOutput(g.addOp(OpKind::Add, {m1, m2}, "t1"));
  g.markOutput(g.addOp(OpKind::Add, {s1, s2}, "t2"));
  TransformReport report;
  Dfg opt = commonSubexpressionElimination(g, &report);
  EXPECT_EQ(report.mergedOps, 1);  // only the multiplication pair
  EXPECT_EQ(opt.opsOfClass(ResourceClass::Multiplier).size(), 1u);
  EXPECT_EQ(opt.opsOfClass(ResourceClass::Subtractor).size(), 2u);
}

TEST(Cse, ChainsOfDuplicatesCollapse) {
  // Duplicates of duplicates: c1 = a*b, c2 = a*b, d1 = c1+x, d2 = c2+x.
  Dfg g("chain");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId x = g.addInput("x");
  NodeId c1 = g.addOp(OpKind::Mul, {a, b}, "c1");
  NodeId c2 = g.addOp(OpKind::Mul, {a, b}, "c2");
  NodeId d1 = g.addOp(OpKind::Add, {c1, x}, "d1");
  NodeId d2 = g.addOp(OpKind::Add, {c2, x}, "d2");
  g.markOutput(g.addOp(OpKind::Add, {d1, d2}, "out"));
  TransformReport report;
  Dfg opt = commonSubexpressionElimination(g, &report);
  EXPECT_EQ(report.mergedOps, 2);  // c2 merges, then d2 matches d1
  EXPECT_EQ(opt.numOps(), 3u);
}

TEST(Dce, RemovesUnreachableOps) {
  Dfg g("dead");
  NodeId a = g.addInput("a");
  NodeId b = g.addInput("b");
  NodeId used = g.addOp(OpKind::Mul, {a, b}, "used");
  g.addOp(OpKind::Add, {a, b}, "dead1");
  NodeId dead2 = g.addOp(OpKind::Sub, {a, b}, "dead2");
  g.addOp(OpKind::Mul, {dead2, b}, "dead3");  // dead chain
  g.markOutput(used);
  TransformReport report;
  Dfg opt = eliminateDeadOps(g, &report);
  EXPECT_EQ(report.removedDead, 3);
  EXPECT_EQ(opt.numOps(), 1u);
  EXPECT_EQ(opt.findByName("dead3"), kNoNode);
}

TEST(Dce, NoOutputsMeansEverythingLive) {
  Dfg g = test::parallelMuls(3);
  Dfg stripped("no_out");
  NodeId a = stripped.addInput("a");
  NodeId b = stripped.addInput("b");
  stripped.addOp(OpKind::Mul, {a, b}, "m");
  Dfg opt = eliminateDeadOps(stripped);
  EXPECT_EQ(opt.numOps(), 1u);
  (void)g;
}

TEST(Tidy, FunctionalEquivalenceOnDiffeq) {
  Dfg g = diffeq();
  TransformReport report;
  Dfg opt = tidy(g, &report);
  EXPECT_GE(report.mergedOps, 1);
  // The optimized graph must compute the same output values.
  std::vector<datapath::Value> in(g.numNodes(), 0);
  std::vector<datapath::Value> inOpt(opt.numNodes(), 0);
  for (NodeId v : g.inputIds()) {
    const datapath::Value value = 7 * static_cast<datapath::Value>(v) + 3;
    in[v] = value & 0xFFFF;
    const NodeId w = opt.findByName(g.node(v).name);
    ASSERT_NE(w, kNoNode);
    inOpt[w] = in[v];
  }
  const auto golden = datapath::evaluateDfg(g, in, 16);
  const auto values = datapath::evaluateDfg(opt, inOpt, 16);
  for (NodeId o : g.outputs()) {
    const NodeId mapped = opt.findByName(g.node(o).name);
    if (mapped != kNoNode) {
      EXPECT_EQ(values[mapped], golden[o]) << g.node(o).name;
    }
  }
}

class TransformProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformProperty, TidyPreservesOutputsOnRandomGraphs) {
  RandomDfgSpec spec;
  spec.seed = GetParam() * 449;
  spec.numOps = 10 + static_cast<int>(GetParam() % 15);
  Dfg g = randomDfg(spec);
  TransformReport report;
  Dfg opt = tidy(g, &report);
  EXPECT_LE(opt.numOps(), g.numOps());
  EXPECT_NO_THROW(opt.validate());
  // Same output values under a fixed input assignment.
  std::vector<datapath::Value> in(g.numNodes(), 0);
  std::vector<datapath::Value> inOpt(opt.numNodes(), 0);
  for (NodeId v : g.inputIds()) {
    const datapath::Value value = (0x9E37 * (v + 1)) & 0xFFFF;
    in[v] = value;
    const NodeId w = opt.findByName(g.node(v).name);
    ASSERT_NE(w, kNoNode);
    inOpt[w] = value;
  }
  const auto golden = datapath::evaluateDfg(g, in, 16);
  const auto values = datapath::evaluateDfg(opt, inOpt, 16);
  for (NodeId o : g.outputs()) {
    const NodeId mapped = opt.findByName(g.node(o).name);
    // An output merged into its duplicate keeps the surviving node's name;
    // in that case compare through the survivor.
    if (mapped != kNoNode) {
      EXPECT_EQ(values[mapped], golden[o]);
    }
  }
  // Every output id in the optimized graph is valid and value-defined.
  EXPECT_FALSE(opt.outputs().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace tauhls::dfg
